#!/usr/bin/env python3
"""Bring your own kernel: write SCL, inspect the instrumentation, tune knobs.

Shows the compiler-facing surface of the library on a custom FIR-filter
kernel:

* compile SCL and print the SSA IR before and after protection, so the
  duplicated producer chains (marked ``;dup``) and inserted guard
  instructions are visible;
* compare the instrumentation and estimated overhead across
  :class:`ProtectionConfig` settings (the paper's Optimizations 1 and 2
  toggled on/off) — a miniature ablation.

Run:  python examples/custom_kernel.py
"""

from repro import Interpreter, ProtectionConfig, compile_source, protect
from repro.ir import function_to_str
from repro.sim import TimingModel

FIR_KERNEL = """
input int signal[200];
input int taps[8];
input int params[1];
output int filtered[200];

void main() {
    int n = params[0];
    int energy = 0;                      // running output energy (state)
    for (int i = 8; i < n; i++) {
        int acc = 0;
        for (int t = 0; t < 8; t++) {
            acc += signal[i - t] * taps[t];
        }
        int y = acc >> 8;
        energy += (y * y) >> 8;
        filtered[i] = y;
    }
    filtered[0] = energy;
}
"""


def measure(module, inputs) -> float:
    timing = TimingModel()
    Interpreter(module, guard_mode="count", timing=timing).run(inputs=inputs)
    return timing.cycles


def main() -> None:
    inputs = {
        "signal": [((i * 97) % 512) - 256 for i in range(200)],
        "taps": [3, -9, 21, 113, 113, 21, -9, 3],
        "params": [200],
    }

    baseline = compile_source(FIR_KERNEL, "fir")
    base_cycles = measure(baseline, inputs)
    print(f"baseline: {baseline.num_instructions()} static IR instructions, "
          f"{base_cycles:.0f} estimated cycles\n")

    configs = {
        "defaults (Opt1+Opt2)": ProtectionConfig(),
        "no Opt1 (all checks kept)": ProtectionConfig(optimization1=False),
        "no Opt2 (dup through amenable)": ProtectionConfig(optimization2=False),
        "tight ranges (pad 0.1x)": ProtectionConfig(
            range_pad_factor=0.1, magnitude_slack=0.1, range_pad_min=1.0
        ),
    }

    print(f"{'configuration':32s} {'dup':>5s} {'checks':>7s} {'overhead':>9s} {'fp':>4s}")
    print("-" * 62)
    for label, config in configs.items():
        module = compile_source(FIR_KERNEL, "fir")
        stats = protect(module, train_inputs=inputs, config=config)
        interp = Interpreter(module, guard_mode="count")
        timing = TimingModel()
        interp.timing = timing
        result = interp.run(inputs=inputs)
        overhead = timing.cycles / base_cycles - 1.0
        print(f"{label:32s} {stats.num_duplicated:5d} {stats.num_value_checks:7d} "
              f"{overhead:9.1%} {result.guard_stats.total_failures:4d}")

    # Show the instrumented inner loop for the default configuration.
    module = compile_source(FIR_KERNEL, "fir")
    protect(module, train_inputs=inputs)
    print("\ninstrumented IR (duplicated instructions marked ';dup'):\n")
    print(function_to_str(module.function("main")))


if __name__ == "__main__":
    main()
