#!/usr/bin/env python3
"""Quickstart: compile a kernel, protect it, and watch a fault get caught.

This walks the full pipeline of the paper in ~60 lines:

1. write a soft-computing kernel in SCL (a small C-like language);
2. compile it to SSA IR — loop-carried *state variables* become phi nodes;
3. protect it: duplicate state-variable producer chains (hard checks) and
   insert profiled expected-value checks (soft checks);
4. run it on the simulator, then inject a register bit flip and observe the
   software detection fire.

Run:  python examples/quickstart.py
"""

from repro import Interpreter, compile_source, protect
from repro.analysis import find_state_variables
from repro.ir import module_to_str
from repro.sim import GuardTrap, InjectionPlan, SimTrap

KERNEL = """
input int samples[256];
input int params[1];
output int envelope[256];

void main() {
    int n = params[0];
    int peak = 0;
    int state = 0;
    for (int i = 0; i < n; i++) {
        int v = abs(samples[i]);
        state = (state * 7 + v) / 8;      // smoothed envelope (state variable)
        if (v > peak) { peak = v; }       // running peak (state variable)
        envelope[i] = state * 100 / (peak + 1);
    }
}
"""


def main() -> None:
    inputs = {
        "samples": [((i * 73) % 400) - 200 for i in range(256)],
        "params": [256],
    }

    # -- 1+2. compile ------------------------------------------------------------
    module = compile_source(KERNEL, "envelope")
    state_vars = find_state_variables(module.function("main"))
    print(f"compiled: {module.num_instructions()} IR instructions, "
          f"{len(state_vars)} state variables: "
          f"{[sv.phi.name for sv in state_vars]}")

    # -- 3. protect (profile on the same input here, for brevity) ------------------
    stats = protect(module, scheme="dup_valchk", train_inputs=inputs)
    print(f"protected: +{stats.num_duplicated} duplicated instructions, "
          f"{stats.num_eq_guards} duplication checks, "
          f"{stats.num_value_checks} expected-value checks "
          f"({stats.checks_by_kind})")

    # -- 4. golden run ---------------------------------------------------------------
    interp = Interpreter(module, guard_mode="count")
    result = interp.run(inputs=inputs)
    golden = interp.read_global("envelope")
    print(f"golden run: {result.instructions} instructions, "
          f"{result.guard_stats.evaluations} checks evaluated, "
          f"{result.guard_stats.total_failures} false positives")

    # -- 5. inject faults until one is caught -------------------------------------------
    outcomes = {"masked": 0, "detected": 0, "symptom": 0, "sdc": 0}
    for seed in range(60):
        trial = Interpreter(module, guard_mode="detect")
        plan = InjectionPlan(cycle=500 + seed * 37, bit=seed % 31, seed=seed)
        try:
            trial.run(inputs=inputs, injection=plan)
        except GuardTrap as trap:
            outcomes["detected"] += 1
            if outcomes["detected"] == 1:
                print(f"first detection: {trap} "
                      f"(injected at cycle {plan.cycle}, bit {plan.bit})")
            continue
        except SimTrap:
            outcomes["symptom"] += 1
            continue
        if trial.read_global("envelope") == golden:
            outcomes["masked"] += 1
        else:
            outcomes["sdc"] += 1

    print(f"60 injections: {outcomes}")
    print("the protected binary converts silent corruptions into detections.")

    # For the curious: dump the instrumented IR.
    # print(module_to_str(module))


if __name__ == "__main__":
    main()
