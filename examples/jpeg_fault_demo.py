#!/usr/bin/env python3
"""Figure 1 reproduction: a decoded image under three fault scenarios.

The paper's Figure 1 shows a JPEG-decoded image (a) fault-free, (b) with a
numerically-incorrect-but-imperceptible fault (an acceptable SDC), and (c)
with a perceptible corruption (an unacceptable SDC).  This script runs the
jpegdec workload, sweeps injections until it finds examples of both SDC
classes, and writes the three images as PGM files you can open with any
viewer.

Run:  python examples/jpeg_fault_demo.py [output-dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro.fidelity import psnr
from repro.sim import Interpreter, InjectionPlan, SimTrap
from repro.workloads import get_workload
from repro.workloads.jpeg import TEST_SIZE


def write_pgm(path: Path, pixels: np.ndarray, size: int) -> None:
    """Write an 8-bit binary PGM (readable by virtually every image viewer)."""
    img = np.clip(np.asarray(pixels[: size * size]).reshape(size, size), 0, 255)
    with open(path, "wb") as fh:
        fh.write(f"P5\n{size} {size}\n255\n".encode())
        fh.write(img.astype(np.uint8).tobytes())


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("figure1_out")
    out_dir.mkdir(exist_ok=True)

    workload = get_workload("jpegdec")
    module = workload.build_module()
    inputs = workload.test_inputs()

    golden_interp = Interpreter(module)
    golden_interp.run(inputs=inputs)
    golden = np.asarray(golden_interp.read_global("image"))
    write_pgm(out_dir / "a_fault_free.pgm", golden, TEST_SIZE)
    print(f"(a) fault-free decode -> {out_dir / 'a_fault_free.pgm'}")

    found_asdc = found_usdc = False
    for seed in range(400):
        if found_asdc and found_usdc:
            break
        interp = Interpreter(module)
        plan = InjectionPlan(cycle=1000 + seed * 211, bit=seed % 31, seed=seed)
        try:
            interp.run(inputs=inputs, injection=plan)
        except SimTrap:
            continue
        image = np.asarray(interp.read_global("image"))
        if np.array_equal(image, golden):
            continue
        quality = psnr(golden, image, peak=255)
        if quality >= workload.fidelity_threshold and not found_asdc:
            found_asdc = True
            write_pgm(out_dir / "b_acceptable_sdc.pgm", image, TEST_SIZE)
            print(f"(b) acceptable SDC at PSNR {quality:.1f} dB "
                  f"(cycle {plan.cycle}, bit {plan.bit}) -> b_acceptable_sdc.pgm")
        elif quality < workload.fidelity_threshold and not found_usdc:
            found_usdc = True
            write_pgm(out_dir / "c_unacceptable_sdc.pgm", image, TEST_SIZE)
            print(f"(c) UNACCEPTABLE SDC at PSNR {quality:.1f} dB "
                  f"(cycle {plan.cycle}, bit {plan.bit}) -> c_unacceptable_sdc.pgm")

    if not found_asdc:
        print("no acceptable SDC found in this sweep (most faults were masked)")
    if not found_usdc:
        print("no unacceptable SDC found in this sweep — try more seeds")


if __name__ == "__main__":
    main()
