#!/usr/bin/env python3
"""Protecting a machine-learning workload: scheme comparison on kmeans.

Runs small fault-injection campaigns against the kmeans benchmark under all
four protection levels and prints the outcome classification plus the
estimated runtime overhead of each — a miniature of the paper's Figures 11
and 12 on a single benchmark.

Run:  python examples/ml_protection.py [trials]
"""

import sys

from repro.faultinjection import CampaignConfig, prepare, run_campaign
from repro.sim import Interpreter, TimingModel
from repro.workloads import get_workload

SCHEMES = ("original", "dup", "dup_valchk", "full_dup")
LABELS = {
    "original": "Original",
    "dup": "Dup only",
    "dup_valchk": "Dup + val chks",
    "full_dup": "Full duplication",
}


def runtime_cycles(prepared) -> float:
    timing = TimingModel()
    interp = Interpreter(prepared.module, guard_mode="count", timing=timing)
    prepared.workload.run(prepared.module, prepared.inputs, interpreter=interp)
    return timing.cycles


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    workload = get_workload("kmeans")
    config = CampaignConfig(trials=trials)

    print(f"kmeans: {trials} injection trials per scheme "
          f"(fidelity: classification error <= "
          f"{workload.fidelity_threshold:.0%} vs. golden labels)\n")
    header = (f"{'scheme':18s} {'masked':>7s} {'swdet':>6s} {'hwdet':>6s} "
              f"{'fail':>5s} {'USDC':>5s} {'overhead':>9s}")
    print(header)
    print("-" * len(header))

    base_cycles = None
    for scheme in SCHEMES:
        prepared = prepare(workload, scheme, config)
        campaign = run_campaign(workload, scheme, config, prepared=prepared)
        cycles = runtime_cycles(prepared)
        if base_cycles is None:
            base_cycles = cycles
        overhead = cycles / base_cycles - 1.0
        print(f"{LABELS[scheme]:18s} "
              f"{campaign.masked:7.1%} {campaign.swdetect:6.1%} "
              f"{campaign.hwdetect:6.1%} {campaign.failure:5.1%} "
              f"{campaign.usdc:5.1%} {overhead:9.1%}")

    print("\nthe paper's claim in miniature: selective duplication plus value")
    print("checks removes unacceptable corruptions at a fraction of full")
    print("duplication's cost.")


if __name__ == "__main__":
    main()
