#!/usr/bin/env python3
"""The full stack, composed: data + control-flow protection + recovery.

The paper's system is detection for data faults; it defers branch-target
faults to signature schemes and recovery to checkpointing.  This example
wires all three together on one benchmark, then attacks the result with both
fault models and reports how each layer earns its keep:

* register bit flips  → caught by duplication + value checks;
* branch-target corruption → caught by CFCSS signatures;
* every detection → rolled back and replayed to a fully correct output.

Run:  python examples/full_protection.py [trials-per-model]
"""

import sys

import numpy as np

from repro.faultinjection import run_with_recovery
from repro.profiling import collect_profiles
from repro.sim import InjectionPlan, Interpreter
from repro.transforms import apply_scheme, protect_control_flow
from repro.workloads import get_workload


def build_fortress(workload):
    """dup + val chks for data faults, CFCSS for control faults."""
    module = workload.build_module()
    profiles = collect_profiles(module, inputs=workload.train_inputs())
    stats = apply_scheme(module, "dup_valchk", profiles=profiles)
    cfcss = protect_control_flow(module, next_guard_id=10_000)
    print(f"protection: {stats.num_duplicated} duplicated instrs, "
          f"{stats.num_value_checks} value checks, "
          f"{cfcss.num_guards} control-flow signatures")
    return module


def attack(module, workload, kind, trials, golden, golden_instructions, noisy):
    outcomes = {"corrected": 0, "clean": 0, "sdc": 0, "trapped": 0}
    for seed in range(trials):
        plan = InjectionPlan(
            cycle=1 + (seed * 6151) % golden_instructions,
            bit=seed % 31,
            seed=seed,
            kind=kind,
        )
        result = run_with_recovery(
            module, workload.test_inputs(), plan,
            checkpoint_interval=50_000,
            disabled_guards=noisy,
            max_instructions=golden_instructions * 10 + 10_000,
        )
        if result.trapped:
            outcomes["trapped"] += 1
            continue
        identical = all(
            np.array_equal(golden[k], result.outputs[k]) for k in golden
        )
        if result.recovered:
            outcomes["corrected" if identical else "sdc"] += 1
        else:
            outcomes["clean" if identical else "sdc"] += 1
    return outcomes


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    workload = get_workload("g721dec")
    module = build_fortress(workload)

    golden_interp = Interpreter(module, guard_mode="count")
    _, golden_run = workload.run(
        module, workload.test_inputs(), interpreter=golden_interp
    )
    golden = {
        name: np.asarray(golden_interp.read_global(name))
        for name in workload.output_names(module)
    }
    noisy = set(golden_run.guard_stats.failures_by_guard)
    print(f"golden run: {golden_run.instructions} instructions, "
          f"{golden_run.guard_stats.evaluations} checks, "
          f"{len(noisy)} noisy checks disabled\n")

    print(f"{'fault model':22s} {'corrected':>9s} {'clean':>6s} "
          f"{'SDC':>4s} {'trapped':>8s}")
    for kind, label in (("register", "register bit flips"),
                        ("control", "branch-target faults")):
        o = attack(module, workload, kind, trials, golden,
                   golden_run.instructions, noisy)
        print(f"{label:22s} {o['corrected']:9d} {o['clean']:6d} "
              f"{o['sdc']:4d} {o['trapped']:8d}")

    print("\nevery detection above was rolled back and replayed to a")
    print("bit-identical output — detection-only becomes correction once")
    print("checkpointing is attached (paper Section IV-D).")


if __name__ == "__main__":
    main()
