"""Generic (protection-agnostic) IR optimizations: dead-code elimination,
CFG simplification, and constant folding.

Only DCE runs in the default frontend pipeline; the others are opt-in (the
evaluated binaries keep codegen's layout, as an -O0-plus-protection build
would), available for experiments and tests.
"""

from .constfold import fold_constants, fold_constants_module
from .dce import eliminate_dead_code, eliminate_dead_code_module
from .simplifycfg import simplify_cfg, simplify_cfg_module

__all__ = [
    "fold_constants", "fold_constants_module",
    "eliminate_dead_code", "eliminate_dead_code_module",
    "simplify_cfg", "simplify_cfg_module",
]
