"""Constant folding over SSA.

Optional cleanup pass: evaluates instructions whose operands are all
constants and replaces their uses with the folded constant.  Iterates to a
fixpoint so chains of constants collapse.  Arithmetic semantics match the
interpreter exactly (two's-complement wrap, C-style division); operations
that would trap at run time (division by zero) are left in place.
"""

from __future__ import annotations

import math
from typing import Optional

from ..ir.function import Function
from ..ir.instructions import BinaryOp, Cast, FCmp, ICmp, Instruction, Select
from ..ir.module import Module
from ..ir.types import F32, I1, FloatType, IntType
from ..ir.values import Constant
from ..sim.interpreter import _FCMP, _FLOAT_BINOPS, _ICMP, _INT_BINOPS


def fold_constants_module(module: Module) -> int:
    """Fold every function; returns the number of instructions folded."""
    return sum(fold_constants(fn) for fn in module.functions.values())


def fold_constants(fn: Function) -> int:
    folded = 0
    changed = True
    while changed:
        changed = False
        for block in fn.blocks:
            for instr in list(block.instructions):
                constant = _try_fold(instr)
                if constant is None:
                    continue
                instr.replace_all_uses_with(constant)
                instr.drop_all_references()
                block.remove(instr)
                folded += 1
                changed = True
    return folded


def _try_fold(instr: Instruction) -> Optional[Constant]:
    if not all(isinstance(op, Constant) for op in instr.operands):
        return None

    if isinstance(instr, BinaryOp):
        a = instr.lhs.value  # type: ignore[union-attr]
        b = instr.rhs.value  # type: ignore[union-attr]
        op = instr.opcode
        int_fn = _INT_BINOPS.get(op)
        try:
            if int_fn is not None:
                return Constant(instr.type, int_fn(a, b, instr.type))
            return Constant(instr.type, _FLOAT_BINOPS[op](a, b))
        except ZeroDivisionError:
            return None  # leave the trapping division in place

    if isinstance(instr, ICmp):
        a, b = (op.value for op in instr.operands)  # type: ignore[union-attr]
        return Constant(I1, 1 if _ICMP[instr.predicate](a, b, instr.operands[0].type) else 0)

    if isinstance(instr, FCmp):
        a, b = (op.value for op in instr.operands)  # type: ignore[union-attr]
        return Constant(I1, 1 if _FCMP[instr.predicate](a, b) else 0)

    if isinstance(instr, Select):
        cond, tval, fval = (op.value for op in instr.operands)  # type: ignore[union-attr]
        return Constant(instr.type, tval if cond & 1 else fval)

    if isinstance(instr, Cast):
        value = instr.value.value  # type: ignore[union-attr]
        op = instr.opcode
        to = instr.type
        if op in ("trunc", "sext"):
            return Constant(to, to.wrap(value))  # type: ignore[union-attr]
        if op == "zext":
            return Constant(to, to.wrap(value & instr.value.type.mask))  # type: ignore[union-attr]
        if op == "sitofp":
            return Constant(to, float(value))
        if op == "fptosi":
            if math.isnan(value):
                return Constant(to, 0)
            assert isinstance(to, IntType)
            clipped = max(min(value, to.max_signed), to.min_signed)
            return Constant(to, int(clipped))
        if op in ("fpext", "fptrunc"):
            return Constant(to, float(value))
    return None
