"""CFG simplification: merge trivial block chains, fold constant branches.

Optional cleanup (not part of the default frontend pipeline — the evaluated
binaries keep the layout the code generator produced, as a real -O0-with-
protection build would).  Used by tests and available for experiments that
want tighter CFGs:

* a block ending in an unconditional branch to a block with exactly one
  predecessor is merged with it;
* a conditional branch on a constant condition becomes an unconditional
  branch (the dead edge's phi incomings are removed);
* unreachable blocks are deleted.
"""

from __future__ import annotations

from typing import List, Set

from ..analysis.cfg import predecessors_map, reachable_blocks
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Br, CondBr, Phi
from ..ir.module import Module
from ..ir.values import Constant


def simplify_cfg_module(module: Module) -> int:
    """Run CFG simplification on every function; returns blocks removed."""
    return sum(simplify_cfg(fn) for fn in module.functions.values())


def simplify_cfg(fn: Function) -> int:
    """Iterate folding + merging + unreachable removal to a fixpoint."""
    removed = 0
    changed = True
    while changed:
        changed = False
        changed |= _fold_constant_branches(fn)
        n = _remove_unreachable(fn)
        removed += n
        changed |= bool(n)
        n = _merge_chains(fn)
        removed += n
        changed |= bool(n)
    return removed


def _fold_constant_branches(fn: Function) -> bool:
    changed = False
    for block in fn.blocks:
        term = block.terminator
        if not isinstance(term, CondBr):
            continue
        cond = term.cond
        if not isinstance(cond, Constant):
            continue
        taken = term.if_true if cond.value & 1 else term.if_false
        dead = term.if_false if cond.value & 1 else term.if_true
        if dead is not taken:
            for phi in dead.phis():
                phi.remove_incoming(block)
        term.drop_all_references()
        block.remove(term)
        block.append(Br(taken))
        changed = True
    return changed


def _remove_unreachable(fn: Function) -> int:
    reachable = reachable_blocks(fn)
    dead = [b for b in fn.blocks if id(b) not in reachable]
    if not dead:
        return 0
    dead_ids: Set[int] = {id(b) for b in dead}
    # strip phi incomings that came from dead blocks
    for block in fn.blocks:
        if id(block) in dead_ids:
            continue
        for phi in list(block.phis()):
            for pred in [p for p in phi.incoming_blocks if id(p) in dead_ids]:
                phi.remove_incoming(pred)
    for block in dead:
        for instr in list(block.instructions):
            instr.drop_all_references()
            block.remove(instr)
        fn.blocks.remove(block)
    return len(dead)


def _merge_chains(fn: Function) -> int:
    """Merge ``A -> br B`` where B has exactly one predecessor (A)."""
    merged = 0
    preds = predecessors_map(fn)
    for block in list(fn.blocks):
        while True:
            term = block.terminator
            if not isinstance(term, Br):
                break
            succ = term.target
            if succ is block or len(preds.get(succ, ())) != 1:
                break
            if succ not in fn.blocks:  # already merged elsewhere
                break
            # replace single-incoming phis in succ by their value
            for phi in list(succ.phis()):
                value = phi.incoming_for(block)
                phi.replace_all_uses_with(value)
                phi.drop_all_references()
                succ.remove(phi)
            term.drop_all_references()
            block.remove(term)
            for instr in list(succ.instructions):
                succ.remove(instr)
                instr.parent = block
                block.instructions.append(instr)
            # successors of succ now flow from `block`: fix their phi labels
            for nxt in block.successors:
                for phi in nxt.phis():
                    for idx, pred in enumerate(phi.incoming_blocks):
                        if pred is succ:
                            phi.incoming_blocks[idx] = block
            fn.blocks.remove(succ)
            preds = predecessors_map(fn)
            merged += 1
    return merged
