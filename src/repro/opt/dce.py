"""Dead-code elimination (mark and sweep over SSA).

Roots are the instructions with observable effects: stores, calls (callees
may store), terminators, and guards.  Everything not transitively reachable
from a root through operand edges is removed — including dead loop-carried
recurrences (a phi + update cycle nothing reads), which mem2reg's local
pruning cannot see.

Loads are treated as pure and removable: the memory model has no volatile
accesses, and DCE runs at compile time, before any fault is injected.
"""

from __future__ import annotations

from typing import List, Set

from ..ir.function import Function
from ..ir.instructions import Call, GuardBase, Instruction, Store
from ..ir.module import Module
from ..ir.values import Value


def eliminate_dead_code_module(module: Module) -> int:
    """Run DCE on every function; returns total instructions removed."""
    return sum(eliminate_dead_code(fn) for fn in module.functions.values())


def eliminate_dead_code(fn: Function) -> int:
    """Remove instructions whose results are never observed."""
    live: Set[int] = set()
    worklist: List[Instruction] = []

    def mark(value: Value) -> None:
        if isinstance(value, Instruction) and id(value) not in live:
            live.add(id(value))
            worklist.append(value)

    for block in fn.blocks:
        for instr in block.instructions:
            if (
                instr.is_terminator
                or isinstance(instr, (Store, Call, GuardBase))
            ):
                mark(instr)

    while worklist:
        instr = worklist.pop()
        for op in instr.operands:
            mark(op)

    removed = 0
    for block in fn.blocks:
        for instr in list(block.instructions):
            if id(instr) in live:
                continue
            instr.drop_all_references()
            block.remove(instr)
            removed += 1
    return removed
