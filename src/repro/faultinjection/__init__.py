"""Statistical fault injection: campaigns, outcome taxonomy, significance."""

from .campaign import (
    CampaignConfig,
    PreparedWorkload,
    draw_plans,
    prepare,
    run_campaign,
    run_trial,
)
from .diskcache import CACHE_SCHEMA_VERSION, CampaignCache, campaign_key
from .parallel import default_jobs, resolve_jobs, run_trials_parallel
from .progress import ProgressPrinter
from .recovery import RecoveryResult, run_with_recovery
from .resilience import (
    Checkpoint,
    Checkpointer,
    HarnessTimeout,
    ResilienceLogger,
    ResiliencePolicy,
    default_policy,
    load_checkpoint,
    save_checkpoint,
)
from .outcomes import CampaignResult, Outcome, TrialResult
from .stats import Z_95, confidence_interval, margin_of_error, trials_for_margin

__all__ = [
    "CampaignConfig", "PreparedWorkload", "draw_plans", "prepare",
    "run_campaign", "run_trial",
    "CampaignResult", "Outcome", "TrialResult",
    "CACHE_SCHEMA_VERSION", "CampaignCache", "campaign_key",
    "default_jobs", "resolve_jobs", "run_trials_parallel",
    "ProgressPrinter",
    "RecoveryResult", "run_with_recovery",
    "Checkpoint", "Checkpointer", "HarnessTimeout", "ResilienceLogger",
    "ResiliencePolicy", "default_policy", "load_checkpoint", "save_checkpoint",
    "Z_95", "confidence_interval", "margin_of_error", "trials_for_margin",
]
