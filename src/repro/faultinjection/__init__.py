"""Statistical fault injection: campaigns, outcome taxonomy, significance."""

from .campaign import (
    CampaignConfig,
    PreparedWorkload,
    prepare,
    run_campaign,
    run_trial,
)
from .recovery import RecoveryResult, run_with_recovery
from .outcomes import CampaignResult, Outcome, TrialResult
from .stats import Z_95, confidence_interval, margin_of_error, trials_for_margin

__all__ = [
    "CampaignConfig", "PreparedWorkload", "prepare", "run_campaign", "run_trial",
    "CampaignResult", "Outcome", "TrialResult",
    "RecoveryResult", "run_with_recovery",
    "Z_95", "confidence_interval", "margin_of_error", "trials_for_margin",
]
