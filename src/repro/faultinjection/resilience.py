"""Campaign resilience layer: checkpoint/resume, recovery policy, watchdogs.

The paper's evaluation rests on large statistical fault-injection campaigns
(thousands of trials per benchmark x scheme).  At that scale the injection
harness is itself a long-running system that must survive partial failures:
a crashed worker, a runaway trial, or a corrupt on-disk artifact must not
abort the whole campaign and discard every completed trial.  This module
provides the pieces; :mod:`.campaign` and :mod:`.parallel` integrate them.

* :class:`ResiliencePolicy` — the recovery knobs (worker-failure policy,
  retry budget and backoff, per-trial wall-clock deadline, checkpoint
  cadence), resolved once in the campaign parent from ``REPRO_RESILIENCE``
  and friends so workers inherit the exact same decision.

* **Checkpointing** (:class:`Checkpointer`, :func:`save_checkpoint`,
  :func:`load_checkpoint`) — periodically persists completed plan-indexed
  trial records to an atomically-replaced JSON file carrying a sha256 of its
  payload.  An interrupted campaign (``KeyboardInterrupt``, OOM-killed
  worker, machine reboot) resumes from the last checkpoint; because trial
  plans are pre-drawn and trial records round-trip bit-exactly, the resumed
  campaign produces byte-identical results and event logs.  A checkpoint
  whose checksum does not verify is quarantined and ignored, never trusted.

* **Trial watchdog** (:func:`trial_deadline`, :func:`run_trial_guarded`) —
  a *real-time* deadline per trial, distinct from the simulated-cycle
  ``timeout_factor``: the simulator already bounds simulated work, so a
  trial that exceeds wall-clock expectations is a harness anomaly (e.g. a
  pathological host, a runaway allocation), not a program outcome.  A trial
  that overruns is retried once and then quarantined as a
  ``harness_timeout`` failure instead of hanging the pool.  Off by default
  (``trial_deadline_seconds=0``): wall-clock classification is inherently
  nondeterministic, so the determinism guarantee only covers campaigns where
  the watchdog never fires (or is disabled).

* **Quarantine** (:func:`quarantine_file`) — corrupt artifacts (cache
  entries, checkpoints) are moved into a ``quarantine/`` subdirectory next
  to where they lived, preserving the evidence for diagnosis instead of
  silently deleting or — worse — silently *using* it.

* :class:`ResilienceLogger` — every recovery action (checkpoint write/load,
  chunk retry, serial fallback, quarantine) emits a structured event to a
  sidecar JSONL (``<obs_log>.resilience`` — kept out of the main trial log
  so the byte-identity guarantee of :mod:`repro.obs.events` is untouched)
  and a ``resilience.*`` counter in the metrics registry, so resilience
  behaviour is auditable via ``python -m repro.obs report``.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import tempfile
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..obs import events as obs_events
from ..obs import trace as trace_mod
from ..obs.metrics import global_registry
from .outcomes import Outcome, TrialResult, trial_from_record, trial_to_record

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "Checkpoint",
    "Checkpointer",
    "HarnessTimeout",
    "ResiliencePolicy",
    "ResilienceLogger",
    "default_policy",
    "jittered_backoff",
    "load_checkpoint",
    "quarantine_file",
    "resilience_enabled",
    "run_trial_guarded",
    "save_checkpoint",
    "trial_deadline",
]

#: bump on any change to the checkpoint file layout
CHECKPOINT_SCHEMA_VERSION = 1

_FALSEY = ("", "0", "off", "false", "no")

#: accepted ``on_worker_failure`` policies
WORKER_FAILURE_POLICIES = ("retry", "serial", "fail")


# ---------------------------------------------------------------------------
# policy
# ---------------------------------------------------------------------------


@dataclass
class ResiliencePolicy:
    """Recovery behaviour of one campaign (resolved once, in the parent)."""

    #: master switch; when False every failure propagates as before
    enabled: bool = True
    #: reaction to a lost worker/chunk: 'retry' (backoff, then serial),
    #: 'serial' (immediate in-process fallback), or 'fail' (propagate)
    on_worker_failure: str = "retry"
    #: pool re-creation attempts before degrading to serial execution
    max_retries: int = 2
    #: base delay before the first retry; doubles per attempt
    backoff_seconds: float = 0.5
    #: per-trial wall-clock deadline in seconds (0 = watchdog off).  A trial
    #: exceeding it is requeued once, then quarantined as harness_timeout.
    trial_deadline_seconds: float = 0.0
    #: completed trials between checkpoint writes (when checkpointing is on)
    checkpoint_every: int = 25

    def __post_init__(self) -> None:
        if self.on_worker_failure not in WORKER_FAILURE_POLICIES:
            raise ValueError(
                f"on_worker_failure must be one of {WORKER_FAILURE_POLICIES},"
                f" got {self.on_worker_failure!r}"
            )


def resilience_enabled() -> bool:
    """False when ``REPRO_RESILIENCE`` is set to 0/off/false/no."""
    return os.environ.get("REPRO_RESILIENCE", "1").strip().lower() not in _FALSEY


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, ""))
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, ""))
    except ValueError:
        return default


def default_policy() -> ResiliencePolicy:
    """Policy from the environment.

    * ``REPRO_RESILIENCE`` — falsey disables recovery entirely; ``retry``,
      ``serial`` or ``fail`` select the worker-failure policy; any other
      truthy value means enabled with defaults.
    * ``REPRO_MAX_RETRIES`` — pool re-creation budget (default 2).
    * ``REPRO_TRIAL_DEADLINE`` — per-trial wall-clock deadline, seconds
      (default 0 = off).
    * ``REPRO_CHECKPOINT_EVERY`` — trials between checkpoint writes
      (default 25).
    """
    value = os.environ.get("REPRO_RESILIENCE", "1").strip().lower()
    policy = ResiliencePolicy(enabled=value not in _FALSEY)
    if value in WORKER_FAILURE_POLICIES:
        policy.on_worker_failure = value
    policy.max_retries = max(0, _env_int("REPRO_MAX_RETRIES", policy.max_retries))
    policy.trial_deadline_seconds = max(
        0.0, _env_float("REPRO_TRIAL_DEADLINE", policy.trial_deadline_seconds)
    )
    policy.checkpoint_every = max(
        1, _env_int("REPRO_CHECKPOINT_EVERY", policy.checkpoint_every)
    )
    return policy


def checkpoint_path_env() -> Optional[str]:
    """Checkpoint file path from ``REPRO_CHECKPOINT`` (single-campaign CLI)."""
    value = os.environ.get("REPRO_CHECKPOINT", "").strip()
    return value or None


def checkpoint_dir_env() -> Optional[str]:
    """Checkpoint directory from ``REPRO_CHECKPOINT_DIR`` (experiment sweeps:
    one checkpoint file per campaign, keyed like the disk cache)."""
    value = os.environ.get("REPRO_CHECKPOINT_DIR", "").strip()
    return value or None


# ---------------------------------------------------------------------------
# quarantine
# ---------------------------------------------------------------------------


def quarantine_file(path) -> Optional[str]:
    """Move a corrupt artifact into ``quarantine/`` next to it.

    Returns the destination path, or None when the move failed (the caller
    must still treat the artifact as unusable).  Existing quarantined files
    with the same name are suffixed ``.1``, ``.2``, ... rather than
    overwritten, so repeated corruption keeps all the evidence.
    """
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    qdir = os.path.join(directory, "quarantine")
    name = os.path.basename(path)
    try:
        os.makedirs(qdir, exist_ok=True)
        dest = os.path.join(qdir, name)
        suffix = 0
        while os.path.exists(dest):
            suffix += 1
            dest = os.path.join(qdir, f"{name}.{suffix}")
        os.replace(path, dest)
        return dest
    except OSError:
        return None


# ---------------------------------------------------------------------------
# resilience event log (sidecar) + metrics
# ---------------------------------------------------------------------------


class ResilienceLogger:
    """Audit trail for recovery actions: sidecar JSONL + registry counters.

    The sidecar (``<obs_log>.resilience``) is separate from the main trial
    log on purpose: recovery actions only happen on failures, so folding
    them into the trial log would break its byte-identity guarantee.  Lines
    are appended with ``O_APPEND`` semantics, so parent and (worker) writers
    never interleave within a line.  ``echo`` is an optional callable given
    a short human-readable description of each action (the CLIs wire it to
    the progress printer).
    """

    def __init__(self, obs_log: Optional[str] = None,
                 echo: Optional[Callable[[str], None]] = None) -> None:
        self.path = (
            obs_events.resilience_log_path(obs_log) if obs_log else None
        )
        self.echo = echo

    @classmethod
    def from_env(cls) -> "ResilienceLogger":
        """Logger bound to the ``REPRO_OBS`` sidecar (library-level callers
        with no campaign context, e.g. the disk cache)."""
        from ..obs.config import obs_log_path

        return cls(obs_log_path())

    def emit(self, kind: str, note: str = "", **fields) -> None:
        global_registry().counter(f"resilience.{kind}").inc()
        if self.path is not None:
            event = obs_events.resilience_event(kind, **fields)
            try:
                parent = os.path.dirname(os.path.abspath(self.path))
                os.makedirs(parent, exist_ok=True)
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(obs_events.encode_event(event))
            except OSError:  # pragma: no cover - audit log is best effort
                pass
        if self.echo is not None and note:
            self.echo(note)


# ---------------------------------------------------------------------------
# checkpoint files
# ---------------------------------------------------------------------------


@dataclass
class Checkpoint:
    """In-memory view of a campaign checkpoint."""

    key: str
    workload: str
    scheme: str
    trials: int
    completed: Dict[int, TrialResult]
    obs_log: Optional[str] = None
    obs_log_offset: int = 0


def _checkpoint_document(checkpoint: Checkpoint) -> Dict:
    payload = {
        "v": CHECKPOINT_SCHEMA_VERSION,
        "key": checkpoint.key,
        "workload": checkpoint.workload,
        "scheme": checkpoint.scheme,
        "trials": checkpoint.trials,
        "obs_log": checkpoint.obs_log,
        "obs_log_offset": checkpoint.obs_log_offset,
        "completed": {
            str(i): trial_to_record(t)
            for i, t in sorted(checkpoint.completed.items())
        },
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()
    payload["sha256"] = digest
    return payload


def save_checkpoint(path, checkpoint: Checkpoint) -> None:
    """Atomically persist ``checkpoint`` (temp file + ``os.replace``).

    A crash mid-write can therefore never leave a half-written checkpoint
    under ``path`` — resume sees either the previous complete checkpoint or
    the new one.
    """
    path = os.fspath(path)
    with trace_mod.current().span(
        "checkpoint.save", cat="resilience",
        completed=len(checkpoint.completed),
    ):
        document = _checkpoint_document(checkpoint)
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=".checkpoint-", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(document, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def load_checkpoint(
    path, key: str, trials: int,
    logger: Optional[ResilienceLogger] = None,
) -> Optional[Checkpoint]:
    """Load and verify a checkpoint; corrupt or mismatched files quarantine.

    Returns None when there is nothing usable: no file, a checksum mismatch
    (quarantined), or a checkpoint for a *different* campaign (key or trial
    count mismatch — left in place: it likely belongs to another run and
    will be overwritten only by an explicit save).
    """
    path = os.fspath(path)
    logger = logger or ResilienceLogger()
    load_span = trace_mod.current().span("checkpoint.load", cat="resilience")
    try:
        with load_span, open(path, encoding="utf-8") as fh:
            document = json.load(fh)
        stored = document.pop("sha256")
        digest = hashlib.sha256(
            json.dumps(document, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()
        if digest != stored:
            raise ValueError("checkpoint checksum mismatch")
        if document.get("v") != CHECKPOINT_SCHEMA_VERSION:
            raise ValueError("unknown checkpoint schema")
        completed = {
            int(i): trial_from_record(rec)
            for i, rec in document["completed"].items()
        }
    except FileNotFoundError:
        return None
    except (OSError, ValueError, KeyError, TypeError) as err:
        dest = quarantine_file(path)
        logger.emit(
            "checkpoint_corrupt",
            note=f"corrupt checkpoint quarantined: {path}",
            path=path, quarantined_to=dest, reason=str(err),
        )
        return None
    if document.get("key") != key or document.get("trials") != trials:
        return None
    return Checkpoint(
        key=key,
        workload=document.get("workload", ""),
        scheme=document.get("scheme", ""),
        trials=trials,
        completed=completed,
        obs_log=document.get("obs_log"),
        obs_log_offset=int(document.get("obs_log_offset", 0)),
    )


class Checkpointer:
    """Accumulates completed (index, trial) pairs and flushes periodically.

    ``record`` is called for every finished trial (restored ones are
    prefilled); every ``every`` *new* records — and on ``flush(force=True)``
    from the campaign's interrupt handler — the full completed map is
    written atomically.  ``clear`` removes the file once the campaign
    finished and its results were returned.
    """

    def __init__(self, path, checkpoint: Checkpoint, every: int,
                 logger: Optional[ResilienceLogger] = None) -> None:
        self.path = os.fspath(path)
        self.checkpoint = checkpoint
        self.every = max(1, every)
        self.logger = logger or ResilienceLogger()
        self._unflushed = 0

    @property
    def completed(self) -> Dict[int, TrialResult]:
        return self.checkpoint.completed

    def record(self, index: int, trial: TrialResult) -> None:
        if index in self.checkpoint.completed:
            return
        self.checkpoint.completed[index] = trial
        self._unflushed += 1
        if self._unflushed >= self.every:
            self.flush()

    def flush(self, force: bool = False) -> None:
        if self._unflushed == 0 and not force:
            return
        try:
            save_checkpoint(self.path, self.checkpoint)
        except OSError:  # pragma: no cover - checkpointing is best effort
            return
        self._unflushed = 0
        self.logger.emit(
            "checkpoint_write",
            path=self.path,
            completed=len(self.checkpoint.completed),
            trials=self.checkpoint.trials,
        )

    def clear(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            return
        self.logger.emit(
            "checkpoint_clear", path=self.path,
            trials=self.checkpoint.trials,
        )


# ---------------------------------------------------------------------------
# per-trial wall-clock watchdog
# ---------------------------------------------------------------------------


class HarnessTimeout(BaseException):
    """A trial exceeded its real-time deadline (harness anomaly, not a
    simulated outcome — the simulated-cycle budget is ``timeout_factor``).

    Deliberately a ``BaseException``: the crash-containment boundary in the
    interpreter converts any post-injection ``Exception`` into a classified
    trap, and the watchdog's verdict must punch through that boundary — a
    hung trial is a harness anomaly, never a simulated fault effect.
    """


def _watchdog_available() -> bool:
    """SIGALRM-based deadlines need a main thread on a POSIX host."""
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


#: one-time flag for the watchdog-unavailable degradation warning
_WARNED_WATCHDOG_UNAVAILABLE = False


@contextmanager
def trial_deadline(seconds: float):
    """Raise :class:`HarnessTimeout` in the body after ``seconds`` of wall
    time.  Yields True when the watchdog is armed, False when unavailable
    (non-POSIX host or non-main thread) or ``seconds`` <= 0.

    The unavailable case degrades gracefully rather than raising at setup
    (``signal.setitimer`` outside the main thread is a ``ValueError``): it
    warns once, bumps the ``resilience.watchdog_unavailable`` counter, and
    leaves runaway-trial protection to the simulated-cycle budget
    (``timeout_factor``), which bounds every trial regardless of host.
    """
    global _WARNED_WATCHDOG_UNAVAILABLE
    if seconds <= 0:
        yield False
        return
    if not _watchdog_available():
        global_registry().counter("resilience.watchdog_unavailable").inc()
        if not _WARNED_WATCHDOG_UNAVAILABLE:
            _WARNED_WATCHDOG_UNAVAILABLE = True
            warnings.warn(
                "per-trial wall-clock watchdog needs SIGALRM on the main "
                "thread; falling back to the simulated-cycle budget "
                "(timeout_factor)",
                RuntimeWarning,
                stacklevel=3,
            )
        yield False
        return

    def _on_alarm(signum, frame):
        raise HarnessTimeout(f"trial exceeded {seconds:g}s wall-clock deadline")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield True
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _quarantined_trial(
    cycle: int, bit: int, model: str = "single_bit"
) -> TrialResult:
    """Placeholder result for a trial the watchdog gave up on."""
    return TrialResult(
        outcome=Outcome.FAILURE,
        injection_cycle=cycle,
        bit=bit,
        trap_kind="harness_timeout",
        fault_model=model,
    )


def run_trial_guarded(
    prepared, index: int, cycle: int, bit: int, seed: int, config,
    stats: Optional[Dict[str, int]] = None, model: str = "single_bit",
) -> Tuple[TrialResult, List[Dict]]:
    """Run one trial under the policy's wall-clock watchdog.

    Returns ``(trial, anomalies)`` where ``anomalies`` is a list of
    resilience event dicts (kind + fields) describing what happened:
    ``trial_timeout`` for an overrun that was requeued, ``trial_quarantined``
    when the retry also overran and the trial was recorded as a
    ``harness_timeout`` failure.  With the watchdog off (the default) this
    is a zero-allocation passthrough to :func:`~.campaign.run_trial`.
    ``stats`` is forwarded to ``run_trial`` for shared-prefix accounting;
    ``model`` names the trial's fault model (passed through only when
    non-default, so historical ``run_trial`` stand-ins keep working).
    """
    from .campaign import run_trial

    kwargs = {"stats": stats}
    if model != "single_bit":
        kwargs["model"] = model
    policy = getattr(config, "resilience", None)
    deadline = policy.trial_deadline_seconds if policy is not None else 0.0
    if not policy or not policy.enabled or deadline <= 0:
        return run_trial(prepared, cycle, bit, seed, config, **kwargs), []

    anomalies: List[Dict] = []
    for attempt in (1, 2):  # a runaway trial is requeued exactly once
        try:
            with trial_deadline(deadline):
                return (
                    run_trial(prepared, cycle, bit, seed, config, **kwargs),
                    anomalies,
                )
        except HarnessTimeout:
            trace_mod.current().instant(
                "trial_timeout", cat="resilience", i=index, attempt=attempt
            )
            anomalies.append({
                "kind": "trial_timeout",
                "i": index, "cycle": cycle, "bit": bit,
                "deadline_seconds": deadline, "attempt": attempt,
            })
    trace_mod.current().instant(
        "trial_quarantined", cat="resilience", i=index
    )
    anomalies.append({
        "kind": "trial_quarantined",
        "i": index, "cycle": cycle, "bit": bit,
        "deadline_seconds": deadline,
    })
    return _quarantined_trial(cycle, bit, model), anomalies


# ---------------------------------------------------------------------------
# obs-log resume support
# ---------------------------------------------------------------------------


def obs_log_size(path: Optional[str]) -> int:
    """Current byte length of the (append-mode) obs log; 0 when absent."""
    if not path:
        return 0
    try:
        return os.path.getsize(path)
    except OSError:
        return 0


def truncate_obs_log(path: str, offset: int) -> None:
    """Drop the partial campaign a crashed run appended after ``offset``.

    The resuming campaign rewrites its events from the first byte it owns,
    which is what makes a resumed log byte-identical to an uninterrupted
    one.  A log shorter than ``offset`` is left alone (someone rotated or
    deleted it — the resumed campaign simply appends a complete log).
    """
    try:
        if os.path.getsize(path) <= offset:
            return
        with open(path, "r+", encoding="utf-8") as fh:
            fh.truncate(offset)
    except OSError:  # pragma: no cover - resume degrades to plain append
        pass


def backoff_delay(base: float, attempt: int) -> float:
    """Exponential backoff: ``base * 2**(attempt-1)`` seconds, capped at 30."""
    return min(base * (2 ** max(0, attempt - 1)), 30.0)


def jittered_backoff(base: float, attempt: int, key: str = "") -> float:
    """Exponential backoff with *deterministic* jitter in ``[0.5x, 1.0x]``.

    Under the service's worker pools many campaigns can lose workers at the
    same instant (one bad host, one OOM sweep); pure exponential backoff
    would have them all retry in lockstep, re-creating the overload that
    killed them — a synchronized retry storm.  Random jitter breaks the
    storm but breaks reproducibility with it.  This jitter is seeded from
    ``key`` (the campaign/job content key) and the attempt number, so
    retries de-synchronize *across* campaigns while any single campaign's
    retry schedule is a pure function of what it is — re-running the same
    failure replays the same delays.

    An empty ``key`` degrades to the un-jittered :func:`backoff_delay`.
    """
    delay = backoff_delay(base, attempt)
    if not key or delay <= 0:
        return delay
    digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
    fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return delay * (0.5 + 0.5 * fraction)


def sleep(seconds: float) -> None:  # patch point for tests
    if seconds > 0:
        time.sleep(seconds)
