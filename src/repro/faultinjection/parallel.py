"""Parallel trial execution for fault-injection campaigns.

Design (see ``docs/PERFORMANCE.md``):

* **Determinism.** All randomness is consumed *before* fan-out:
  :func:`~repro.faultinjection.campaign.draw_plans` draws every trial's
  (cycle, bit, seed) serially from the hash-seeded campaign RNG, and each
  trial runs under its own private :class:`random.Random` seeded from the
  plan.  Workers therefore share no RNG state, and a ``jobs=N`` campaign is
  bit-identical to ``jobs=1``.

* **Per-worker prepared workloads.** A :class:`PreparedWorkload` holds a live
  IR module, memoised liveness/compiled-code caches, and numpy goldens —
  objects whose pickled round-trip would break identity-based caches (IR
  types are interned singletons).  Workers instead *rebuild* it from the
  (workload name, scheme, config) key, memoised per process so the cost is
  paid once per worker, not once per trial.  ``prepare`` is deterministic, so
  the rebuilt workload is equivalent to the parent's.  On ``fork`` platforms
  the parent additionally publishes its prepared workload in a module global
  before creating the pool; inheriting children detect the matching key and
  skip the rebuild entirely.

* **Chunked dispatch.** Trials are submitted as index-tagged chunks (a few
  dozen trials each) to amortise task-dispatch overhead; completed chunks
  stream back for progress callbacks, and results are re-ordered by the
  original plan index before returning.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, List, Optional, Sequence, Tuple

from ..sim.faults import InjectionPlan
from .campaign import CampaignConfig, PreparedWorkload, prepare, run_trial
from .outcomes import TrialResult

__all__ = ["default_jobs", "resolve_jobs", "run_trials_parallel"]


def default_jobs() -> int:
    """Worker count from the ``REPRO_JOBS`` environment variable (min 1)."""
    value = os.environ.get("REPRO_JOBS", "")
    try:
        return max(1, int(value))
    except ValueError:
        return 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """CLI helper: explicit ``--jobs`` wins, else ``REPRO_JOBS``, else 1."""
    if jobs is not None:
        return max(1, jobs)
    return default_jobs()


def _prepared_key(name: str, scheme: str, config: CampaignConfig) -> Tuple:
    """Memoisation key for a worker-side prepared workload.

    ``repr`` of the (nested) config dataclasses is deterministic and covers
    every field that influences preparation; ``jobs`` cannot affect the
    prepared module, but including it is harmless for a per-process memo.
    """
    return (name, scheme, repr(config))


#: (key, PreparedWorkload) published by the parent just before pool creation;
#: inherited by fork-started workers, ignored (None) under spawn.
_FORK_PREPARED: Optional[Tuple[Tuple, PreparedWorkload]] = None

#: per-process rebuilt workloads (spawn start method, or key mismatch)
_PREPARED_MEMO = {}


def _worker_prepared(
    name: str, scheme: str, config: CampaignConfig
) -> PreparedWorkload:
    key = _prepared_key(name, scheme, config)
    if _FORK_PREPARED is not None and _FORK_PREPARED[0] == key:
        return _FORK_PREPARED[1]
    found = _PREPARED_MEMO.get(key)
    if found is None:
        from ..workloads.registry import get_workload

        found = prepare(get_workload(name), scheme, config)
        _PREPARED_MEMO[key] = found
    return found


#: (name, scheme, config) for the campaign this worker serves — shipped once
#: per worker via the pool initializer instead of once per chunk, so chunk
#: submissions pickle only the bare (index, cycle, bit, seed) tuples.
_WORKER_CAMPAIGN: Optional[Tuple[str, str, CampaignConfig]] = None


def _init_worker(name: str, scheme: str, config: CampaignConfig) -> None:
    global _WORKER_CAMPAIGN
    _WORKER_CAMPAIGN = (name, scheme, config)


def _run_chunk(
    chunk: Sequence[Tuple[int, int, int, int]],
) -> List[Tuple[int, TrialResult]]:
    """Worker entry: run one chunk of (index, cycle, bit, seed) trials.

    When the campaign has an observability log configured, the worker also
    writes this chunk's trial events to a shard file next to the log (named
    by the chunk's first plan index); the parent concatenates shards in plan
    order after the pool drains, making the merged log byte-identical to a
    serial run's (see :mod:`repro.obs.events`).
    """
    name, scheme, config = _WORKER_CAMPAIGN  # type: ignore[misc]
    prepared = _worker_prepared(name, scheme, config)
    if not config.obs_log:
        return [
            (index, run_trial(prepared, cycle, bit, seed, config))
            for index, cycle, bit, seed in chunk
        ]
    import time

    from ..obs import events as obs_events

    results = []
    events = []
    for index, cycle, bit, seed in chunk:
        t0 = time.perf_counter() if config.obs_timing else 0.0
        trial = run_trial(prepared, cycle, bit, seed, config)
        wall_ms = (
            (time.perf_counter() - t0) * 1e3 if config.obs_timing else None
        )
        results.append((index, trial))
        events.append(
            obs_events.trial_event(
                index, InjectionPlan(cycle=cycle, bit=bit, seed=seed), trial,
                wall_ms=wall_ms,
            )
        )
    obs_events.write_shard(config.obs_log, chunk[0][0], events)
    return results


def _chunk_size(n_trials: int, jobs: int) -> int:
    """About three chunks per worker: keeps dispatch/IPC overhead low while
    letting faster workers steal from slower ones."""
    return max(1, min(32, -(-n_trials // (jobs * 3))))


def run_trials_parallel(
    prepared: PreparedWorkload,
    plans: Sequence[InjectionPlan],
    config: CampaignConfig,
    on_trial: Optional[Callable[[TrialResult], None]] = None,
    jobs: Optional[int] = None,
) -> List[TrialResult]:
    """Execute pre-drawn trial plans across worker processes.

    Returns results in plan order; ``on_trial`` fires in completion order.
    With ``config.obs_log`` set, workers leave per-chunk event shard files
    next to the log; :func:`~repro.faultinjection.campaign.run_campaign`
    merges them — direct callers must merge (or discard) shards themselves.
    """
    global _FORK_PREPARED
    jobs = max(1, jobs if jobs is not None else config.jobs)
    tagged = [
        (i, plan.cycle, plan.bit, plan.seed) for i, plan in enumerate(plans)
    ]
    size = _chunk_size(len(tagged), jobs)
    chunks = [tagged[i:i + size] for i in range(0, len(tagged), size)]
    name, scheme = prepared.workload.name, prepared.scheme

    results: List[Optional[TrialResult]] = [None] * len(plans)
    _FORK_PREPARED = (_prepared_key(name, scheme, config), prepared)
    try:
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker,
            initargs=(name, scheme, config),
        ) as pool:
            futures = [pool.submit(_run_chunk, chunk) for chunk in chunks]
            for future in as_completed(futures):
                for index, trial in future.result():
                    results[index] = trial
                    if on_trial is not None:
                        on_trial(trial)
    finally:
        _FORK_PREPARED = None
    assert all(t is not None for t in results)
    return results  # type: ignore[return-value]
