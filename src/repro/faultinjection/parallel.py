"""Parallel trial execution for fault-injection campaigns.

Design (see ``docs/PERFORMANCE.md``):

* **Determinism.** All randomness is consumed *before* fan-out:
  :func:`~repro.faultinjection.campaign.draw_plans` draws every trial's
  (cycle, bit, seed) serially from the hash-seeded campaign RNG, and each
  trial runs under its own private :class:`random.Random` seeded from the
  plan.  Workers therefore share no RNG state, and a ``jobs=N`` campaign is
  bit-identical to ``jobs=1``.

* **Per-worker prepared workloads.** A :class:`PreparedWorkload` holds a live
  IR module, memoised liveness/compiled-code caches, and numpy goldens —
  objects whose pickled round-trip would break identity-based caches (IR
  types are interned singletons).  Workers instead *rebuild* it from the
  (workload name, scheme, config) key, memoised per process so the cost is
  paid once per worker, not once per trial.  ``prepare`` is deterministic, so
  the rebuilt workload is equivalent to the parent's.  On ``fork`` platforms
  the parent additionally publishes its prepared workload in a module global
  before creating the pool; inheriting children detect the matching key and
  skip the rebuild entirely.

* **Chunked dispatch.** Trials are submitted as index-tagged chunks (a few
  dozen trials each) to amortise task-dispatch overhead; completed chunks
  stream back for progress callbacks, and results are re-ordered by the
  original plan index before returning.

* **Worker-failure recovery** (see ``docs/RESILIENCE.md``).  A SIGKILLed or
  OOM-killed worker breaks the whole :class:`ProcessPoolExecutor`; instead
  of aborting the campaign, the chunks that never reported back are
  resubmitted to a fresh pool with exponential backoff (deterministically
  jittered per campaign, so fleets of campaigns under ``repro.serve`` never
  retry in lockstep), and once the retry
  budget is exhausted (or immediately, under the ``serial`` policy) the
  residual trials degrade to in-process serial execution.  Trial plans are
  pre-drawn, so a retried or serially-executed chunk computes bit-identical
  results — recovery is invisible in the campaign outcome and visible only
  in the resilience audit log.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import trace as trace_mod
from ..obs.metrics import global_registry
from ..sim.faults import InjectionPlan
from . import resilience as resilience_mod
from .campaign import CampaignConfig, PreparedWorkload, prepare
from .outcomes import TrialResult

__all__ = ["default_jobs", "resolve_jobs", "run_trials_parallel"]

#: one-time flag for the REPRO_JOBS misparse warning
_WARNED_JOBS_MISPARSE = False


def default_jobs() -> int:
    """Worker count from the ``REPRO_JOBS`` environment variable (min 1).

    ``REPRO_JOBS=0`` means "auto": one worker per available CPU
    (``os.cpu_count()``).  An unparsable value (``"4.0"``, ``"four"``)
    falls back to 1 — but not silently: it raises a one-time
    :class:`RuntimeWarning` and increments the ``config.jobs_misparse``
    counter, so a campaign that was meant to run on 32 cores cannot
    quietly run serially for hours.
    """
    global _WARNED_JOBS_MISPARSE
    value = os.environ.get("REPRO_JOBS", "")
    if not value:
        return 1
    try:
        jobs = int(value)
        if jobs == 0:
            return os.cpu_count() or 1
        return max(1, jobs)
    except ValueError:
        global_registry().counter("config.jobs_misparse").inc()
        if not _WARNED_JOBS_MISPARSE:
            _WARNED_JOBS_MISPARSE = True
            warnings.warn(
                f"REPRO_JOBS={value!r} is not an integer; "
                f"falling back to 1 worker (serial execution)",
                RuntimeWarning,
                stacklevel=2,
            )
        return 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """CLI helper: explicit ``--jobs`` wins, else ``REPRO_JOBS``, else 1.

    ``0`` (from either source) resolves to ``os.cpu_count()``.
    """
    if jobs is not None:
        if jobs == 0:
            return os.cpu_count() or 1
        return max(1, jobs)
    return default_jobs()


def _prepared_key(name: str, scheme: str, config: CampaignConfig) -> Tuple:
    """Memoisation key for a worker-side prepared workload.

    ``repr`` of the (nested) config dataclasses is deterministic and covers
    every field that influences preparation; ``jobs`` cannot affect the
    prepared module, but including it is harmless for a per-process memo.
    """
    return (name, scheme, repr(config))


#: (key, PreparedWorkload) published by the parent just before pool creation;
#: inherited by fork-started workers, ignored (None) under spawn.
_FORK_PREPARED: Optional[Tuple[Tuple, PreparedWorkload]] = None

#: per-process rebuilt workloads (spawn start method, or key mismatch)
_PREPARED_MEMO = {}


def _worker_prepared(
    name: str, scheme: str, config: CampaignConfig
) -> PreparedWorkload:
    key = _prepared_key(name, scheme, config)
    if _FORK_PREPARED is not None and _FORK_PREPARED[0] == key:
        return _FORK_PREPARED[1]
    found = _PREPARED_MEMO.get(key)
    if found is None:
        from ..workloads.registry import get_workload

        found = prepare(get_workload(name), scheme, config)
        _PREPARED_MEMO[key] = found
    return found


#: (name, scheme, config) for the campaign this worker serves — shipped once
#: per worker via the pool initializer instead of once per chunk, so chunk
#: submissions pickle only the bare (index, cycle, bit, seed) tuples.
_WORKER_CAMPAIGN: Optional[Tuple[str, str, CampaignConfig]] = None


def _init_worker(name: str, scheme: str, config: CampaignConfig) -> None:
    global _WORKER_CAMPAIGN
    _WORKER_CAMPAIGN = (name, scheme, config)


def _execute_chunk(
    prepared: PreparedWorkload,
    config: CampaignConfig,
    chunk: Sequence[Tuple[int, int, int, int, str]],
) -> Tuple[List[Tuple[int, TrialResult]], List[Dict], Dict[str, int]]:
    """Run one chunk of (index, cycle, bit, seed, model) trials.

    Returns ``(results, anomalies, stats)`` — anomalies are watchdog events
    (trial timeout / quarantine) collected by
    :func:`~.resilience.run_trial_guarded` for the parent to log, and stats
    are the chunk's shared-prefix counters (snapshot restores, replay cycles
    saved, triaged-masked trials) for the parent to fold into the campaign
    totals.  When the campaign has an observability log configured, the
    chunk's trial events are also written to a shard file next to the log
    (named by the chunk's first plan index); the parent concatenates shards
    in plan order after the pool drains, making the merged log
    byte-identical to a serial run's (see :mod:`repro.obs.events`).

    Shared between the worker entry point (:func:`_run_chunk`) and the
    parent's serial-fallback path, so degraded execution behaves exactly
    like a worker would have.

    When the campaign is traced, the chunk runs under a ``chunk`` span and
    its buffered spans are flushed to this process's ``<trace>.spans-<pid>``
    sidecar afterwards — the parent folds every sidecar into the exported
    trace, so Perfetto shows one track per worker process.
    """
    tracer = trace_mod.activate(config.trace)
    try:
        with tracer.span(
            "chunk", cat="chunk", first=chunk[0][0], size=len(chunk)
        ):
            return _execute_chunk_trials(prepared, config, chunk)
    finally:
        tracer.flush_sidecar()


def _execute_chunk_trials(
    prepared: PreparedWorkload,
    config: CampaignConfig,
    chunk: Sequence[Tuple[int, int, int, int, str]],
) -> Tuple[List[Tuple[int, TrialResult]], List[Dict], Dict[str, int]]:
    from .campaign import batched_enabled

    if batched_enabled(config) and len(chunk) > 1:
        return _execute_chunk_batched(prepared, config, chunk)
    anomalies: List[Dict] = []
    stats: Dict[str, int] = {}
    if not config.obs_log:
        results = []
        for index, cycle, bit, seed, model in chunk:
            trial, notes = resilience_mod.run_trial_guarded(
                prepared, index, cycle, bit, seed, config, stats=stats,
                model=model,
            )
            results.append((index, trial))
            anomalies.extend(notes)
        return results, anomalies, stats
    import time

    from ..obs import events as obs_events

    results = []
    events = []
    for index, cycle, bit, seed, model in chunk:
        t0 = time.perf_counter() if config.obs_timing else 0.0
        trial, notes = resilience_mod.run_trial_guarded(
            prepared, index, cycle, bit, seed, config, stats=stats,
            model=model,
        )
        wall_ms = (
            (time.perf_counter() - t0) * 1e3 if config.obs_timing else None
        )
        results.append((index, trial))
        anomalies.extend(notes)
        events.append(
            obs_events.trial_event(
                index,
                InjectionPlan(cycle=cycle, bit=bit, seed=seed, model=model),
                trial, wall_ms=wall_ms,
            )
        )
    obs_events.write_shard(config.obs_log, chunk[0][0], events)
    return results, anomalies, stats


def _execute_chunk_batched(
    prepared: PreparedWorkload,
    config: CampaignConfig,
    chunk: Sequence[Tuple[int, int, int, int, str]],
) -> Tuple[List[Tuple[int, TrialResult]], List[Dict], Dict[str, int]]:
    """Batched-lane execution of one chunk (``config.batch`` lanes/sweep).

    A lane's verdict never depends on which lanes share its sweep, so
    sub-batching a chunk produces trials byte-identical to the serial
    batched portion's (and the scalar paths').  Trial events are sorted
    back into plan order before the shard write — shards must concatenate
    into the serial log byte for byte.  Batched mode never records
    ``wall_ms`` (see ``_run_serial_batched_portion``).
    """
    from .campaign import run_batch_trials

    anomalies: List[Dict] = []
    stats: Dict[str, int] = {}
    items = [
        (index, InjectionPlan(cycle=cycle, bit=bit, seed=seed, model=model))
        for index, cycle, bit, seed, model in chunk
    ]
    results: List[Tuple[int, TrialResult]] = []
    size = config.batch
    for at in range(0, len(items), size):
        for index, trial, notes in run_batch_trials(
            prepared, items[at:at + size], config, stats=stats
        ):
            results.append((index, trial))
            anomalies.extend(notes)
    results.sort(key=lambda item: item[0])
    if config.obs_log:
        from ..obs import events as obs_events

        plan_by_index = dict(items)
        obs_events.write_shard(
            config.obs_log,
            chunk[0][0],
            [
                obs_events.trial_event(index, plan_by_index[index], trial)
                for index, trial in results
            ],
        )
    return results, anomalies, stats


def _run_chunk(
    chunk: Sequence[Tuple[int, int, int, int, str]],
) -> Tuple[List[Tuple[int, TrialResult]], List[Dict], Dict[str, int]]:
    """Worker entry: resolve the per-process prepared workload and run."""
    name, scheme, config = _WORKER_CAMPAIGN  # type: ignore[misc]
    prepared = _worker_prepared(name, scheme, config)
    return _execute_chunk(prepared, config, chunk)


def _chunk_size(n_trials: int, jobs: int) -> int:
    """About three chunks per worker: keeps dispatch/IPC overhead low while
    letting faster workers steal from slower ones."""
    return max(1, min(32, -(-n_trials // (jobs * 3))))


def run_trials_parallel(
    prepared: PreparedWorkload,
    plans: Sequence[InjectionPlan],
    config: CampaignConfig,
    on_trial: Optional[Callable[[TrialResult], None]] = None,
    jobs: Optional[int] = None,
    indices: Optional[Sequence[int]] = None,
    on_result: Optional[Callable[[int, TrialResult], None]] = None,
    rlog: Optional[resilience_mod.ResilienceLogger] = None,
    stats: Optional[Dict[str, int]] = None,
) -> List[TrialResult]:
    """Execute pre-drawn trial plans across worker processes.

    Returns results in plan order; ``on_trial`` fires in completion order,
    ``on_result`` fires alongside it with the original plan index (the
    campaign layer uses it to checkpoint completed trials).  ``indices``
    lets a resumed campaign run a subset of its plans under their original
    plan indices.  With ``config.obs_log`` set, workers leave per-chunk
    event shard files next to the log;
    :func:`~repro.faultinjection.campaign.run_campaign` merges them —
    direct callers must merge (or discard) shards themselves.

    A broken pool (killed worker) is handled per ``config.resilience``:
    lost chunks are resubmitted to a fresh pool with exponential backoff,
    then degrade to in-process serial execution once the retry budget is
    spent.  With resilience disabled the :class:`BrokenProcessPool` error
    propagates, as it did before the resilience layer existed.
    """
    global _FORK_PREPARED
    jobs = jobs if jobs is not None else config.jobs
    jobs = (os.cpu_count() or 1) if jobs == 0 else max(1, jobs)
    if indices is None:
        indices = range(len(plans))
    tagged = [
        (index, plan.cycle, plan.bit, plan.seed, plan.model)
        for index, plan in zip(indices, plans)
    ]
    size = _chunk_size(len(tagged), jobs)
    pending: Dict[int, List[Tuple[int, int, int, int, str]]] = {
        ordinal: tagged[i:i + size]
        for ordinal, i in enumerate(range(0, len(tagged), size))
    }
    name, scheme = prepared.workload.name, prepared.scheme
    policy = config.resilience or resilience_mod.ResiliencePolicy(enabled=False)
    rlog = rlog or resilience_mod.ResilienceLogger(config.obs_log)

    results: Dict[int, TrialResult] = {}

    def consume(chunk_results, anomalies, chunk_stats) -> None:
        for anomaly in anomalies:
            kind = anomaly.pop("kind")
            rlog.emit(kind, note=f"{kind}: trial {anomaly.get('i')}", **anomaly)
        if stats is not None:
            for key, value in chunk_stats.items():
                stats[key] = stats.get(key, 0) + value
        for index, trial in chunk_results:
            results[index] = trial
            if on_result is not None:
                on_result(index, trial)
            if on_trial is not None:
                on_trial(trial)

    def run_serial_fallback() -> None:
        trace_mod.current().instant(
            "serial_fallback", cat="resilience", chunks=len(pending)
        )
        rlog.emit(
            "serial_fallback",
            note=(f"worker pool lost; running "
                  f"{sum(len(c) for c in pending.values())} residual "
                  f"trials in-process"),
            chunks=len(pending),
            trials=sum(len(c) for c in pending.values()),
        )
        for ordinal in sorted(pending):
            consume(*_execute_chunk(prepared, config, pending[ordinal]))
        pending.clear()

    attempt = 0
    last_error: Optional[BaseException] = None
    _FORK_PREPARED = (_prepared_key(name, scheme, config), prepared)
    try:
        while pending:
            if attempt > 0:
                if not policy.enabled or policy.on_worker_failure == "fail":
                    raise last_error
                if (
                    policy.on_worker_failure == "serial"
                    or attempt > policy.max_retries
                ):
                    run_serial_fallback()
                    break
                # Jitter is seeded from the campaign's identity so many
                # campaigns losing workers together (one bad host under the
                # service's pools) retry de-synchronized, while any single
                # campaign's retry schedule stays reproducible.
                delay = resilience_mod.jittered_backoff(
                    policy.backoff_seconds, attempt,
                    key=f"{name}/{scheme}/{config.seed}/{config.trials}",
                )
                trace_mod.current().instant(
                    "chunk_retry", cat="resilience", attempt=attempt
                )
                rlog.emit(
                    "chunk_retry",
                    note=(f"retrying {len(pending)} lost chunk(s), "
                          f"attempt {attempt}/{policy.max_retries} "
                          f"after {delay:.1f}s backoff"),
                    attempt=attempt,
                    chunks=len(pending),
                    delay_seconds=delay,
                )
                resilience_mod.sleep(delay)
            try:
                with ProcessPoolExecutor(
                    max_workers=min(jobs, len(pending)),
                    initializer=_init_worker,
                    initargs=(name, scheme, config),
                ) as pool:
                    futures = {
                        pool.submit(_run_chunk, chunk): ordinal
                        for ordinal, chunk in pending.items()
                    }
                    for future in as_completed(futures):
                        ordinal = futures[future]
                        try:
                            chunk_results, anomalies, chunk_stats = (
                                future.result()
                            )
                        except BrokenProcessPool as err:
                            last_error = err
                            continue
                        del pending[ordinal]
                        consume(chunk_results, anomalies, chunk_stats)
            except BrokenProcessPool as err:
                last_error = err
            if pending:
                attempt += 1
                trace_mod.current().instant(
                    "worker_failure", cat="resilience",
                    lost_chunks=len(pending),
                )
                rlog.emit(
                    "worker_failure",
                    note=(f"worker pool broke with {len(pending)} chunk(s) "
                          f"outstanding: {last_error}"),
                    attempt=attempt,
                    lost_chunks=len(pending),
                    error=str(last_error),
                )
    finally:
        _FORK_PREPARED = None
    ordered = [results[index] for index in indices]
    return ordered
