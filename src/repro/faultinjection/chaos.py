"""Chaos-fuzz harness: hammer the simulator with randomized corruptions.

The fault-model hierarchy (:mod:`repro.sim.faults`) and the containment
boundary (:class:`~repro.sim.events.HarnessContainedTrap`) promise that *any*
injected corruption — whatever model, whatever state it lands in — ends in a
classified :class:`~repro.faultinjection.outcomes.Outcome`.  This module is
the enforcement arm of that promise: it sweeps thousands of randomized
corruptions across workloads × schemes × fault models and asserts the
campaign-level invariants that unit tests cannot economically cover:

* **every trial terminates with a classified outcome** — exactly one of the
  five paper categories, with the plan's fault model stamped on the trial;
* **zero escaped exceptions** — ``run_campaign`` never raises out of a
  trial, no matter how exotically the corrupted program dies;
* **zero worker deaths** — the ``resilience.worker_failure`` /
  ``resilience.serial_fallback`` counters stay flat, i.e. no corruption
  manages to take a worker process down with it;
* **zero watchdog quarantines** — the cycle-budget guard (not the wall-clock
  watchdog) catches every runaway corrupted loop.

Violations are collected (not raised) into a :class:`ChaosReport` so one bad
configuration does not hide the others; ``scripts/chaos_fuzz.py`` is the CLI
wrapper and the CI ``chaos-smoke`` job runs it on every push.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..obs.metrics import enable_global, global_registry
from ..sim.faults import CHAOS_FAULT_MODEL, CONCRETE_FAULT_MODELS
from ..workloads.registry import get_workload
from .campaign import CampaignConfig, prepare, run_campaign
from .outcomes import Outcome

__all__ = [
    "DEFAULT_MODELS",
    "ChaosReport",
    "ChaosViolation",
    "run_chaos_sweep",
]

#: every concrete model plus the per-trial 'chaos' mix
DEFAULT_MODELS = CONCRETE_FAULT_MODELS + (CHAOS_FAULT_MODEL,)

#: growth in any of these during a campaign means a corruption broke the
#: execution machinery instead of being contained inside its trial
_RESILIENCE_COUNTERS = (
    "resilience.worker_failure",
    "resilience.serial_fallback",
    "resilience.trial_quarantined",
)

_OUTCOME_NAMES = tuple(o.value for o in Outcome)


@dataclass
class ChaosViolation:
    """One broken invariant, pinned to the campaign that broke it."""

    kind: str  # escaped_exception | worker_death | watchdog_quarantine |
    #          # trial_count | unclassified | model_mismatch
    workload: str
    scheme: str
    model: str
    detail: str

    def __str__(self) -> str:
        return (f"[{self.kind}] {self.workload}/{self.scheme} "
                f"model={self.model}: {self.detail}")


@dataclass
class ChaosReport:
    """Aggregated evidence of one chaos sweep."""

    trials: int = 0
    campaigns: int = 0
    #: concrete model -> outcome name -> count (chaos campaigns contribute
    #: to the concrete model each trial actually drew)
    outcome_by_model: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: run-terminating event classes observed (trap_kind values)
    trap_kinds: Dict[str, int] = field(default_factory=dict)
    #: trials ending in a contained harness exception (``contained:*``)
    contained: int = 0
    violations: List[ChaosViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def tally(self, trial) -> None:
        self.trials += 1
        row = self.outcome_by_model.setdefault(
            trial.fault_model, {name: 0 for name in _OUTCOME_NAMES}
        )
        row[trial.outcome.value] = row.get(trial.outcome.value, 0) + 1
        if trial.trap_kind:
            self.trap_kinds[trial.trap_kind] = (
                self.trap_kinds.get(trial.trap_kind, 0) + 1
            )
            if trial.trap_kind.startswith("contained:"):
                self.contained += 1

    def to_json(self) -> Dict:
        return {
            "trials": self.trials,
            "campaigns": self.campaigns,
            "contained": self.contained,
            "ok": self.ok,
            "outcome_by_model": {
                model: dict(row)
                for model, row in sorted(self.outcome_by_model.items())
            },
            "trap_kinds": dict(sorted(self.trap_kinds.items())),
            "violations": [
                {
                    "kind": v.kind,
                    "workload": v.workload,
                    "scheme": v.scheme,
                    "model": v.model,
                    "detail": v.detail,
                }
                for v in self.violations
            ],
        }

    def render_text(self) -> str:
        lines = [
            "== chaos-fuzz report ==",
            f"campaigns: {self.campaigns}  trials: {self.trials}  "
            f"contained harness exceptions: {self.contained}",
            "",
            "outcomes by fault model:",
        ]
        header = " ".join(f"{name:>9s}" for name in _OUTCOME_NAMES)
        lines.append(f"  {'':12s} {header} {'total':>9s}")
        for model, row in sorted(self.outcome_by_model.items()):
            cells = " ".join(
                f"{row.get(name, 0):9d}" for name in _OUTCOME_NAMES
            )
            lines.append(f"  {model:12s} {cells} {sum(row.values()):9d}")
        if self.trap_kinds:
            lines.append("")
            lines.append("run-terminating events (trap kinds):")
            for kind, count in sorted(self.trap_kinds.items()):
                lines.append(f"  {kind:28s} {count:8d}")
        lines.append("")
        if self.ok:
            lines.append("all invariants held: every trial classified, no "
                         "escaped exceptions, no worker deaths, no watchdog "
                         "quarantines")
        else:
            lines.append(f"VIOLATIONS ({len(self.violations)}):")
            for violation in self.violations:
                lines.append(f"  {violation}")
        return "\n".join(lines)


def _counter_values() -> Dict[str, int]:
    registry = global_registry()
    return {name: registry.counter(name).value for name in _RESILIENCE_COUNTERS}


def _campaign_trials(trials_per_model: int, campaigns_per_model: int) -> int:
    """Trials per campaign so each model totals >= ``trials_per_model``."""
    return -(-trials_per_model // max(1, campaigns_per_model))


def run_chaos_sweep(
    workloads: Sequence[str],
    schemes: Sequence[str],
    trials_per_model: int = 1000,
    seed: int = 2014,
    jobs: int = 1,
    models: Optional[Sequence[str]] = None,
    on_progress: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """Sweep every fault model over ``workloads`` × ``schemes``.

    ``trials_per_model`` is a floor: it is split evenly (rounding up) across
    the workload × scheme campaigns of each model.  Entirely deterministic —
    each campaign's seed is a pure function of ``seed`` and its position in
    the sweep, so a violating configuration can be rerun in isolation with
    ``python -m repro.faultinjection <workload> <scheme> --fault-model
    <model> --seed <campaign seed>``.

    Violations never raise; they are recorded on the returned
    :class:`ChaosReport` so a single bad configuration cannot mask the rest
    of the sweep.
    """
    models = tuple(models) if models is not None else DEFAULT_MODELS
    report = ChaosReport()
    enable_global()
    campaigns_per_model = len(workloads) * len(schemes)
    per_campaign = _campaign_trials(trials_per_model, campaigns_per_model)
    position = 0
    for workload_name in workloads:
        workload = get_workload(workload_name)
        for scheme in schemes:
            prepared = None
            for model in models:
                position += 1
                config = CampaignConfig(
                    trials=per_campaign,
                    # distinct prime stride per campaign: no two campaigns
                    # replay each other's plan stream
                    seed=seed + 7919 * position,
                    jobs=jobs,
                    fault_model=model,
                )
                if on_progress is not None:
                    on_progress(
                        f"{workload_name}/{scheme} model={model} "
                        f"trials={config.trials} seed={config.seed} jobs={jobs}"
                    )
                if prepared is None:
                    # Preparation (compile + protect + golden run) is
                    # model-independent; share it across the model loop.
                    prepared = prepare(workload, scheme, config)
                before = _counter_values()
                report.campaigns += 1
                try:
                    result = run_campaign(
                        workload, scheme, config, prepared=prepared
                    )
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as err:  # noqa: BLE001 - the invariant
                    report.violations.append(ChaosViolation(
                        "escaped_exception", workload_name, scheme, model,
                        f"run_campaign raised {type(err).__name__}: {err}",
                    ))
                    continue
                _audit_campaign(
                    report, result, config, before, workload_name, scheme,
                    model,
                )
    return report


def _audit_campaign(
    report: ChaosReport, result, config: CampaignConfig,
    counters_before: Dict[str, int], workload: str, scheme: str, model: str,
) -> None:
    """Check one finished campaign against the sweep invariants."""
    if len(result.trials) != config.trials:
        report.violations.append(ChaosViolation(
            "trial_count", workload, scheme, model,
            f"expected {config.trials} trials, got {len(result.trials)}",
        ))
    for name, before in counters_before.items():
        grew = global_registry().counter(name).value - before
        if grew:
            report.violations.append(ChaosViolation(
                "worker_death", workload, scheme, model,
                f"{name} grew by {grew} during the campaign",
            ))
    for index, trial in enumerate(result.trials):
        report.tally(trial)
        if not isinstance(trial.outcome, Outcome):
            report.violations.append(ChaosViolation(
                "unclassified", workload, scheme, model,
                f"trial {index} outcome {trial.outcome!r} is not an Outcome",
            ))
        if trial.trap_kind == "harness_timeout":
            report.violations.append(ChaosViolation(
                "watchdog_quarantine", workload, scheme, model,
                f"trial {index} was quarantined by the wall-clock watchdog",
            ))
        expected = (
            CONCRETE_FAULT_MODELS if model == CHAOS_FAULT_MODEL else (model,)
        )
        if trial.fault_model not in expected:
            report.violations.append(ChaosViolation(
                "model_mismatch", workload, scheme, model,
                f"trial {index} carries fault model "
                f"{trial.fault_model!r}",
            ))
