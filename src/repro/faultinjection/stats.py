"""Statistical significance of fault-injection results.

The paper (citing Leveugle et al.) reports a 3.1% margin of error at 95%
confidence for its 1000-trials-per-benchmark setup.  These helpers compute
the same normal-approximation bounds for whatever trial count a campaign ran,
so every report can state its own confidence interval.
"""

from __future__ import annotations

import math
from typing import Tuple

#: z-score for a 95% two-sided confidence interval
Z_95 = 1.959963984540054


def margin_of_error(n: int, p: float = 0.5, z: float = Z_95) -> float:
    """Half-width of the confidence interval for a proportion.

    ``p = 0.5`` gives the worst case, which is what the paper quotes
    (±3.1% at n=1000).
    """
    if n <= 0:
        return 1.0
    p = min(max(p, 0.0), 1.0)
    return z * math.sqrt(p * (1.0 - p) / n)


def confidence_interval(p: float, n: int, z: float = Z_95) -> Tuple[float, float]:
    """(lower, upper) bounds of the proportion's confidence interval, clipped
    to [0, 1]."""
    e = margin_of_error(n, p, z)
    return max(0.0, p - e), min(1.0, p + e)


def trials_for_margin(target: float, p: float = 0.5, z: float = Z_95) -> int:
    """Trials needed for a given margin of error (inverse of the above)."""
    if target <= 0:
        raise ValueError("target margin must be positive")
    p = min(max(p, 0.0), 1.0)
    return math.ceil(z * z * p * (1.0 - p) / (target * target))
