"""Recovery integration (paper Section IV-D).

The paper's technique is detection-only and defers to an external recovery
mechanism (Encore, or checkpoint-based schemes restoring ~1000 instructions
of state).  This module models that integration so the repository can
demonstrate end-to-end *correction*, not just detection:

* faults are transient (a single bit flip), so re-execution from any
  checkpoint taken before the fault yields the fault-free result;
* a checkpoint is taken every ``checkpoint_interval`` dynamic instructions;
* on a software detection at cycle ``C``, execution rolls back to the last
  checkpoint at ``floor(C / interval) * interval`` and replays — the
  replayed instructions are the recovery overhead;
* per the paper's once-per-check policy, a guard that fires again after its
  recovery (a false positive) stops triggering recoveries; the campaign layer
  already feeds such guards in via ``disabled_guards``.

The simulator cannot resume mid-run from a snapshot, but it does not need
to: with the fault removed, the replay is exactly the fault-free execution,
so the model runs the prefix (to detection) plus a clean full run and charges
``full_run - checkpoint`` replayed instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..ir.module import Module
from ..sim.config import SimConfig
from ..sim.events import GuardTrap, SimTrap
from ..sim.faults import InjectionPlan
from ..sim.interpreter import Interpreter


@dataclass
class RecoveryResult:
    """Outcome of one run under detection + checkpoint recovery."""

    outputs: Dict[str, np.ndarray]
    #: a software check fired and triggered a rollback
    recovered: bool
    #: dynamic cycle of the detection (None when nothing fired)
    detection_cycle: Optional[int]
    #: instructions executed in total, including the discarded prefix and replay
    total_instructions: int
    #: instructions that had to be re-executed after rollback
    replayed_instructions: int
    #: the run ended in an unrecoverable trap (symptom outside software reach)
    trapped: bool = False

    @property
    def overhead_fraction(self) -> float:
        """Replayed work relative to the non-replayed work of this run."""
        useful = max(self.total_instructions - self.replayed_instructions, 1)
        return self.replayed_instructions / useful


def run_with_recovery(
    module: Module,
    inputs: Optional[Dict[str, Sequence]] = None,
    injection: Optional[InjectionPlan] = None,
    entry: str = "main",
    checkpoint_interval: int = 100_000,
    disabled_guards: Optional[set] = None,
    config: Optional[SimConfig] = None,
    max_instructions: int = 50_000_000,
) -> RecoveryResult:
    """Execute with detection; on a software detection, roll back and replay.

    Returns the (recovered) outputs and the instruction-cost accounting.
    Hardware traps (memory symptoms) are reported via ``trapped=True`` — a
    real system would recover those through the same checkpoints, but the
    paper classifies them separately (HWDetect), so we surface them.
    """
    if checkpoint_interval <= 0:
        raise ValueError("checkpoint_interval must be positive")

    interp = Interpreter(
        module, config=config, guard_mode="detect",
        disabled_guards=disabled_guards or set(),
    )
    try:
        interp.run(
            entry=entry, inputs=inputs, injection=injection,
            max_instructions=max_instructions,
        )
        outputs = _read_outputs(interp, module)
        return RecoveryResult(
            outputs=outputs,
            recovered=False,
            detection_cycle=None,
            total_instructions=interp.cycle,
            replayed_instructions=0,
        )
    except GuardTrap as trap:
        detection_cycle = trap.cycle
    except SimTrap:
        return RecoveryResult(
            outputs={},
            recovered=False,
            detection_cycle=None,
            total_instructions=interp.cycle,
            replayed_instructions=0,
            trapped=True,
        )

    # Roll back to the last checkpoint before the detection and replay.
    # The fault was transient, so the replay is the fault-free execution.
    checkpoint = (detection_cycle // checkpoint_interval) * checkpoint_interval
    clean = Interpreter(module, config=config, guard_mode="count")
    clean.run(entry=entry, inputs=inputs, max_instructions=max_instructions)
    outputs = _read_outputs(clean, module)
    replayed = max(clean.cycle - checkpoint, 0)
    total = detection_cycle + replayed
    return RecoveryResult(
        outputs=outputs,
        recovered=True,
        detection_cycle=detection_cycle,
        total_instructions=total,
        replayed_instructions=replayed,
    )


def _read_outputs(interp: Interpreter, module: Module) -> Dict[str, np.ndarray]:
    return {
        g.name: np.asarray(interp.read_global(g.name))
        for g in module.output_globals()
    }
