"""Statistical fault-injection campaigns (paper Section IV).

One campaign = one (workload, protection scheme) pair:

1. build a fresh module and apply the scheme (profiling on the *train* input
   first when the scheme needs value checks);
2. run the golden (fault-free) run on the *test* input, in guard-counting
   mode — its guard failures are the false positives of Section V;
3. run N injection trials: each picks a uniformly random dynamic cycle within
   the golden run length, a random bit, and a random occupied physical
   register (chosen at injection time), then classifies the outcome per
   Section IV-C.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..profiling.profiler import collect_profiles
from ..sim.config import SimConfig
from ..sim.events import (
    ArithmeticTrap,
    GuardTrap,
    MemoryTrap,
    SimTrap,
    StackOverflowTrap,
    TimeoutTrap,
)
from ..sim.faults import LARGE_CHANGE_THRESHOLD, InjectionPlan
from ..sim.interpreter import Interpreter
from ..transforms.checkconfig import ProtectionConfig
from ..transforms.pipeline import SchemeStats, apply_scheme
from ..workloads.base import Workload
from .outcomes import CampaignResult, Outcome, TrialResult


@dataclass
class CampaignConfig:
    """Tunables of a fault-injection campaign."""

    trials: int = 100
    seed: int = 2014
    #: trap within this many cycles of injection = HWDetect, later = Failure
    symptom_window: int = 1000
    #: injection runs are aborted (Failure: infinite loop) after this multiple
    #: of the golden instruction count
    timeout_factor: float = 10.0
    sim: SimConfig = field(default_factory=SimConfig)
    protection: ProtectionConfig = field(default_factory=ProtectionConfig)
    #: use the test input for profiling instead of the train input (the
    #: paper's 2-fold cross-validation experiment swaps them)
    swap_train_test: bool = False
    #: worker processes for trial execution; 1 = in-process serial.  Results
    #: are bit-identical for any value (trial plans are pre-drawn serially),
    #: so ``jobs`` is deliberately excluded from campaign cache keys.
    jobs: int = 1


@dataclass
class PreparedWorkload:
    """A workload compiled + protected + golden-run, ready for trials."""

    workload: Workload
    scheme: str
    module: object
    scheme_stats: SchemeStats
    inputs: Dict[str, Sequence]
    golden_outputs: Dict[str, np.ndarray]
    golden_instructions: int
    golden_guard_failures: int
    golden_guard_evaluations: int
    #: guards that fired in the fault-free run (false positives); disabled in
    #: trials, modelling the recover-once-then-ignore policy of Section III-C
    noisy_guards: frozenset = frozenset()


def prepare(
    workload: Workload, scheme: str, config: Optional[CampaignConfig] = None
) -> PreparedWorkload:
    """Compile, protect, and golden-run a workload under one scheme."""
    config = config or CampaignConfig()
    module = workload.build_module()

    profile_inputs = workload.train_inputs()
    run_inputs = workload.test_inputs()
    if config.swap_train_test:
        profile_inputs, run_inputs = run_inputs, profile_inputs

    profiles = None
    if scheme == "dup_valchk":
        profiles = collect_profiles(
            module,
            inputs=profile_inputs,
            entry=workload.entry,
            num_bins=config.protection.histogram_bins,
            top_capacity=config.protection.top_value_capacity,
            config=config.sim,
        )
    stats = apply_scheme(module, scheme, profiles=profiles, config=config.protection)

    golden_interp = Interpreter(module, config=config.sim, guard_mode="count")
    golden_outputs, golden_result = workload.run(
        module, run_inputs, interpreter=golden_interp
    )
    return PreparedWorkload(
        workload=workload,
        scheme=scheme,
        module=module,
        scheme_stats=stats,
        inputs=run_inputs,
        golden_outputs=golden_outputs,
        golden_instructions=golden_result.instructions,
        golden_guard_failures=golden_result.guard_stats.total_failures,
        golden_guard_evaluations=golden_result.guard_stats.evaluations,
        noisy_guards=frozenset(golden_result.guard_stats.failures_by_guard),
    )


def run_trial(
    prepared: PreparedWorkload,
    cycle: int,
    bit: int,
    seed: int,
    config: CampaignConfig,
) -> TrialResult:
    """Inject one fault and classify the outcome per Section IV-C."""
    workload = prepared.workload
    plan = InjectionPlan(cycle=cycle, bit=bit, seed=seed)
    interp = Interpreter(
        prepared.module,
        config=config.sim,
        guard_mode="detect",
        disabled_guards=set(prepared.noisy_guards),
    )
    limit = int(prepared.golden_instructions * config.timeout_factor) + 10_000

    try:
        outputs, result = workload.run(
            prepared.module,
            prepared.inputs,
            interpreter=interp,
            injection=plan,
            max_instructions=limit,
        )
    except GuardTrap as trap:
        return _trial_from_trap(interp, plan, Outcome.SWDETECT, trap.cycle)
    except TimeoutTrap as trap:
        return _trial_from_trap(interp, plan, Outcome.FAILURE, trap.cycle)
    except (MemoryTrap, ArithmeticTrap, StackOverflowTrap) as trap:
        within = (trap.cycle - cycle) <= config.symptom_window
        outcome = Outcome.HWDETECT if within else Outcome.FAILURE
        return _trial_from_trap(interp, plan, outcome, trap.cycle)

    trial = _base_trial(interp, plan)
    identical = all(
        np.array_equal(prepared.golden_outputs[k], outputs[k])
        for k in prepared.golden_outputs
    )
    if identical:
        trial.outcome = Outcome.MASKED
        return trial

    fid = workload.fidelity(prepared.golden_outputs, outputs)
    trial.is_sdc = True
    trial.fidelity_score = fid.score
    if fid.acceptable:
        # Acceptable corruption: ASDC — the paper counts these as Masked in
        # the coverage view and separates them in the SDC view.
        trial.outcome = Outcome.MASKED
        trial.is_asdc = True
    else:
        trial.outcome = Outcome.USDC
    return trial


def _base_trial(interp: Interpreter, plan: InjectionPlan) -> TrialResult:
    record = interp.injection_record
    trial = TrialResult(outcome=Outcome.MASKED, injection_cycle=plan.cycle, bit=plan.bit)
    if record is not None:
        trial.landed = record.landed
        trial.was_live = record.was_live
        trial.value_name = record.value_name
        if record.was_live:
            trial.change_magnitude = record.change_magnitude
    return trial


def _trial_from_trap(
    interp: Interpreter, plan: InjectionPlan, outcome: Outcome, event_cycle: int
) -> TrialResult:
    trial = _base_trial(interp, plan)
    trial.outcome = outcome
    trial.event_cycle = event_cycle
    return trial


def draw_plans(
    config: CampaignConfig, prepared: PreparedWorkload
) -> List[InjectionPlan]:
    """Pre-draw every trial's (cycle, bit, seed) plan, serially.

    The single source of truth for campaign randomness: both the serial and
    the parallel execution paths consume this list, which is what makes a
    ``jobs=N`` campaign bit-identical to ``jobs=1``.  The RNG is seeded from
    a sha256 of (seed, workload, scheme) — deterministic across processes
    (Python's str hash is salted, so a tuple hash would make campaigns
    irreproducible between runs) — and each trial draws cycle, bit, and
    per-trial seed in that exact order, matching the historical interleaved
    loop draw-for-draw.
    """
    key = f"{config.seed}:{prepared.workload.name}:{prepared.scheme}".encode()
    rng = random.Random(int.from_bytes(hashlib.sha256(key).digest()[:8], "big"))
    plans = []
    for _ in range(config.trials):
        cycle = rng.randrange(1, prepared.golden_instructions + 1)
        bit = rng.randrange(config.sim.register_flip_bits)
        seed = rng.randrange(1 << 30)
        plans.append(InjectionPlan(cycle=cycle, bit=bit, seed=seed))
    return plans


def run_campaign(
    workload: Workload,
    scheme: str,
    config: Optional[CampaignConfig] = None,
    prepared: Optional[PreparedWorkload] = None,
    on_trial: Optional[Callable[[TrialResult], None]] = None,
) -> CampaignResult:
    """Run a full statistical fault-injection campaign.

    ``on_trial`` is invoked once per finished trial (in completion order,
    which under ``config.jobs > 1`` may differ from plan order) — intended
    for progress reporting; the returned result is always in plan order.
    """
    config = config or CampaignConfig()
    prepared = prepared or prepare(workload, scheme, config)
    plans = draw_plans(config, prepared)

    result = CampaignResult(
        workload=workload.name,
        scheme=scheme,
        golden_instructions=prepared.golden_instructions,
        golden_guard_failures=prepared.golden_guard_failures,
        golden_guard_evaluations=prepared.golden_guard_evaluations,
    )
    if config.jobs > 1 and len(plans) > 1:
        from .parallel import run_trials_parallel

        result.trials.extend(
            run_trials_parallel(prepared, plans, config, on_trial=on_trial)
        )
        return result
    for plan in plans:
        trial = run_trial(prepared, plan.cycle, plan.bit, plan.seed, config)
        result.trials.append(trial)
        if on_trial is not None:
            on_trial(trial)
    return result
