"""Statistical fault-injection campaigns (paper Section IV).

One campaign = one (workload, protection scheme) pair:

1. build a fresh module and apply the scheme (profiling on the *train* input
   first when the scheme needs value checks);
2. run the golden (fault-free) run on the *test* input, in guard-counting
   mode — its guard failures are the false positives of Section V;
3. run N injection trials: each picks a uniformly random dynamic cycle within
   the golden run length, a random bit, and a random occupied physical
   register (chosen at injection time), then classifies the outcome per
   Section IV-C.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..obs import config as obs_config
from ..obs import events as obs_events
from ..obs import heartbeat as heartbeat_mod
from ..obs import trace as trace_mod
from ..obs.metrics import global_registry
from ..profiling.profiler import collect_profiles
from ..sim.config import SimConfig
from ..sim.events import (
    ArithmeticTrap,
    GuardTrap,
    HarnessContainedTrap,
    MemoryTrap,
    SimTrap,
    StackOverflowTrap,
    TimeoutTrap,
)
from ..sim.faults import (
    CHAOS_FAULT_MODEL,
    CONCRETE_FAULT_MODELS,
    FAULT_MODELS,
    LARGE_CHANGE_THRESHOLD,
    TRIAGEABLE_FAULT_MODELS,
    InjectionPlan,
)
from ..sim.interpreter import Interpreter
from ..sim import memfaults as memfaults_mod
from ..sim import snapshot as snapshot_mod
from ..transforms.checkconfig import ProtectionConfig
from ..transforms.pipeline import SchemeStats, apply_scheme
from ..workloads.base import Workload
from . import resilience as resilience_mod
from .outcomes import CampaignResult, Outcome, TrialResult
from .resilience import ResiliencePolicy


@dataclass
class CampaignConfig:
    """Tunables of a fault-injection campaign."""

    trials: int = 100
    seed: int = 2014
    #: trap within this many cycles of injection = HWDetect, later = Failure
    symptom_window: int = 1000
    #: injection runs are aborted (Failure: infinite loop) after this multiple
    #: of the golden instruction count
    timeout_factor: float = 10.0
    sim: SimConfig = field(default_factory=SimConfig)
    protection: ProtectionConfig = field(default_factory=ProtectionConfig)
    #: use the test input for profiling instead of the train input (the
    #: paper's 2-fold cross-validation experiment swaps them)
    swap_train_test: bool = False
    #: worker processes for trial execution; 1 = in-process serial.  Results
    #: are bit-identical for any value (trial plans are pre-drawn serially),
    #: so ``jobs`` is deliberately excluded from campaign cache keys.
    jobs: int = 1
    #: structured JSONL trial event log path (None = observability off; the
    #: ``REPRO_OBS`` environment variable supplies a default).  Like ``jobs``,
    #: excluded from campaign cache keys — logging cannot affect results.
    obs_log: Optional[str] = None
    #: record per-trial wall-clock time in trial events (``REPRO_OBS_TIMING``
    #: supplies a default).  Off by default: wall-times are nondeterministic,
    #: and with timing off a ``jobs=N`` log is byte-identical to serial.
    obs_timing: bool = False
    #: checkpoint file for crash-resumable campaigns (None = no
    #: checkpointing; ``REPRO_CHECKPOINT`` supplies a default).  Excluded
    #: from cache keys — checkpointing cannot affect results.
    checkpoint: Optional[str] = None
    #: recovery policy (worker-failure handling, retry budget, per-trial
    #: wall-clock watchdog, checkpoint cadence).  None = resolve from the
    #: ``REPRO_RESILIENCE`` family of environment variables; resolution
    #: happens once in the parent so workers inherit the same decision.
    #: Also excluded from cache keys: recovery changes *how* trials get
    #: executed, never what they compute.
    resilience: Optional[ResiliencePolicy] = None
    #: golden-run snapshot cadence for shared-prefix trial execution
    #: (``docs/PERFORMANCE.md``): None = resolve from ``REPRO_SNAPSHOT`` /
    #: ``REPRO_SNAPSHOT_EVERY`` (default: auto heuristic), 0 = disabled,
    #: -1 = auto, N > 0 = snapshot every N golden cycles.  Excluded from
    #: cache keys — restore is bit-invisible by construction (differential
    #: tests enforce it).
    snapshot_every: Optional[int] = None
    #: dead-flip triage: short-circuit provably-dead register flips straight
    #: to Masked, skipping the post-injection run and output comparison.
    #: None = resolve from ``REPRO_TRIAGE`` (default on).  Excluded from
    #: cache keys — a triaged trial records exactly what a full run would.
    triage: Optional[bool] = None
    #: fault model drawn for every trial: one of
    #: :data:`~repro.sim.faults.CONCRETE_FAULT_MODELS` or ``"chaos"`` (each
    #: trial draws a concrete model from the campaign RNG).  None = resolve
    #: from ``REPRO_FAULT_MODEL`` (default ``"single_bit"``, the paper's
    #: model).  *Included* in cache/checkpoint keys — different models
    #: produce different results — but only when it resolves to a
    #: non-default model, so historical single-bit keys stay valid.
    fault_model: Optional[str] = None
    #: Chrome trace-event JSON output path for hierarchical wall-clock spans
    #: (None = tracing off; ``REPRO_TRACE`` supplies a default).  Excluded
    #: from cache keys: spans are wall-clock data and live in the trace file
    #: only — results, obs logs, and checkpoints are byte-identical with
    #: tracing on or off.
    trace: Optional[str] = None
    #: live status/heartbeat JSON path, atomically replaced at a rate-limited
    #: cadence while the campaign runs (None = off; ``REPRO_HEARTBEAT``
    #: supplies a default).  Watch it with ``python -m repro.obs top``.
    #: Excluded from cache keys for the same reason as ``trace``.
    heartbeat: Optional[str] = None
    #: batched lane-parallel trial execution (:mod:`repro.sim.batched`):
    #: lanes per sweep.  None = resolve from ``REPRO_BATCH``; 0/1 = off
    #: (scalar fastpath).  Requires triage on — with triage off the backend
    #: silently falls back to scalar.  Excluded from cache keys: batched
    #: results are byte-identical to scalar for any batch size (differential
    #: tests enforce it).
    batch: Optional[int] = None


@dataclass
class PreparedWorkload:
    """A workload compiled + protected + golden-run, ready for trials."""

    workload: Workload
    scheme: str
    module: object
    scheme_stats: SchemeStats
    inputs: Dict[str, Sequence]
    golden_outputs: Dict[str, np.ndarray]
    golden_instructions: int
    golden_guard_failures: int
    golden_guard_evaluations: int
    #: guards that fired in the fault-free run (false positives); disabled in
    #: trials, modelling the recover-once-then-ignore policy of Section III-C
    noisy_guards: frozenset = frozenset()
    #: golden-run snapshots for fast-forward trial restore (None when
    #: snapshotting is disabled or did not pay off).  Never pickled: workers
    #: rebuild their PreparedWorkload (or inherit it over fork).
    snapshots: Optional[snapshot_mod.SnapshotStore] = None
    #: golden-run occupancy map for the memory-hierarchy fault models (None
    #: unless the campaign's model consumes it).  Like ``snapshots``, never
    #: pickled: workers recompute it deterministically.
    occupancy: Optional[memfaults_mod.OccupancyMap] = None


def prepare(
    workload: Workload, scheme: str, config: Optional[CampaignConfig] = None
) -> PreparedWorkload:
    """Compile, protect, and golden-run a workload under one scheme."""
    config = config or CampaignConfig()
    tracer = trace_mod.activate(trace_mod.resolve_trace(config.trace))
    with tracer.span(
        "prepare", cat="prepare", workload=workload.name, scheme=scheme
    ):
        with tracer.span("build_module", cat="prepare"):
            module = workload.build_module()

        profile_inputs = workload.train_inputs()
        run_inputs = workload.test_inputs()
        if config.swap_train_test:
            profile_inputs, run_inputs = run_inputs, profile_inputs

        profiles = None
        if scheme == "dup_valchk":
            with tracer.span("profile", cat="prepare"):
                profiles = collect_profiles(
                    module,
                    inputs=profile_inputs,
                    entry=workload.entry,
                    num_bins=config.protection.histogram_bins,
                    top_capacity=config.protection.top_value_capacity,
                    config=config.sim,
                )
        with tracer.span("apply_scheme", cat="prepare"):
            stats = apply_scheme(
                module, scheme, profiles=profiles, config=config.protection
            )

        with tracer.span("golden_run", cat="prepare"):
            golden_interp = Interpreter(
                module, config=config.sim, guard_mode="count"
            )
            golden_outputs, golden_result = workload.run(
                module, run_inputs, interpreter=golden_interp
            )
        snapshots, occupancy = _capture_golden_state(
            workload, module, run_inputs, golden_result, config
        )
    return PreparedWorkload(
        workload=workload,
        scheme=scheme,
        module=module,
        scheme_stats=stats,
        inputs=run_inputs,
        golden_outputs=golden_outputs,
        golden_instructions=golden_result.instructions,
        golden_guard_failures=golden_result.guard_stats.total_failures,
        golden_guard_evaluations=golden_result.guard_stats.evaluations,
        noisy_guards=frozenset(golden_result.guard_stats.failures_by_guard),
        snapshots=snapshots,
        occupancy=occupancy,
    )


def _capture_golden_state(
    workload: Workload,
    module,
    run_inputs,
    golden_result,
    config: CampaignConfig,
):
    """Second, instrumented golden run: restore snapshots and/or occupancy.

    Returns ``(snapshots, occupancy)``.  Snapshot capture is skipped when
    snapshotting is disabled (``snapshot_every=0`` / ``REPRO_SNAPSHOT=0``)
    or the auto heuristic deems the golden run too short to pay for the
    extra capture run; occupancy capture is skipped unless the campaign's
    resolved fault model consumes occupancy data (or ``REPRO_OCCUPANCY=1``
    forces it).  When both are wanted they share ONE instrumented pass via
    :class:`~repro.sim.memfaults.FusedCapture`, so a memory-model prepare
    pays only the load/store wrapper overhead on top of the snapshot run —
    not a whole extra execution.  Both are fast-path features.  The capture
    run is verified to retire exactly the golden instruction count — any
    mismatch (it cannot happen; this is a tripwire) drops the captured
    state rather than risking divergent trials.
    """
    snap_recorder = None
    every = snapshot_mod.resolve_snapshot_every(config.snapshot_every)
    if every != 0:
        cadence = (
            every if every > 0
            else snapshot_mod.auto_cadence(golden_result.instructions)
        )
        if cadence is not None and cadence < golden_result.instructions:
            snap_recorder = snapshot_mod.SnapshotRecorder(cadence)

    occ_recorder = None
    model = resolve_fault_model(config.fault_model)
    if memfaults_mod.occupancy_enabled(model):
        occ_recorder = memfaults_mod.OccupancyRecorder(
            memfaults_mod.boundary_cadence(golden_result.instructions),
            config.sim.l1d,
        )

    if snap_recorder is None and occ_recorder is None:
        return None, None
    capture_interp = Interpreter(module, config=config.sim, guard_mode="count")
    if not capture_interp.fastpath:
        return None, None
    if snap_recorder is not None and occ_recorder is not None:
        capture = memfaults_mod.FusedCapture(snap_recorder, occ_recorder)
        span = "golden_capture"
    elif snap_recorder is not None:
        capture = snap_recorder
        span = "snapshot_capture"
    else:
        capture = occ_recorder
        span = "occupancy_capture"
    with trace_mod.current().span(span, cat="prepare"):
        _, capture_result = workload.run(
            module, run_inputs, interpreter=capture_interp, capture=capture
        )
    if capture_result.instructions != golden_result.instructions:
        return None, None  # pragma: no cover - determinism tripwire
    snapshots = None
    if snap_recorder is not None and len(snap_recorder.store):
        snapshots = snap_recorder.store
    occupancy = None
    if occ_recorder is not None:
        occupancy = occ_recorder.finalize(
            workload.output_names(module), golden_result.instructions
        )
    return snapshots, occupancy


def _capture_occupancy(
    workload: Workload,
    module,
    run_inputs,
    golden_result,
    config: CampaignConfig,
) -> Optional[memfaults_mod.OccupancyMap]:
    """Dedicated occupancy-only golden pass (the ``_ensure_occupancy`` path).

    ``prepare()`` itself fuses occupancy capture into the snapshot run (see
    :func:`_capture_golden_state`); this standalone pass serves callers that
    attach a map to an already-prepared workload.  Runs only when the
    campaign's resolved fault model consumes occupancy data (or
    ``REPRO_OCCUPANCY=1`` forces it) and the fast path is on — the wrappers
    hook the compiled load/store address translation.  The boundary cadence
    is a pure function of the golden instruction count (never of snapshot
    or other config knobs), so the map — and every memory-model verdict
    derived from it — is bit-identical across processes, config variations,
    and the fused-vs-dedicated capture paths.
    """
    model = resolve_fault_model(config.fault_model)
    if not memfaults_mod.occupancy_enabled(model):
        return None
    capture_interp = Interpreter(module, config=config.sim, guard_mode="count")
    if not capture_interp.fastpath:
        return None
    cadence = memfaults_mod.boundary_cadence(golden_result.instructions)
    recorder = memfaults_mod.OccupancyRecorder(cadence, config.sim.l1d)
    with trace_mod.current().span(
        "occupancy_capture", cat="prepare", cadence=cadence
    ):
        _, capture_result = workload.run(
            module, run_inputs, interpreter=capture_interp, capture=recorder
        )
    if capture_result.instructions != golden_result.instructions:
        return None  # pragma: no cover - determinism tripwire
    return recorder.finalize(
        workload.output_names(module), golden_result.instructions
    )


def _ensure_occupancy(
    prepared: PreparedWorkload, config: CampaignConfig
) -> None:
    """Attach an occupancy map to an already-prepared workload on demand.

    Covers callers that prepared once and reuse the workload across models
    (the chaos harness, shared test fixtures): when the resolved model needs
    the map but ``prepare()`` ran without it, recompute it here — before any
    worker pool is created, so forked workers inherit the exact same map.
    """
    if prepared.occupancy is not None:
        return
    model = resolve_fault_model(config.fault_model)
    if not memfaults_mod.occupancy_enabled(model):
        return
    golden = _GoldenShim(prepared.golden_instructions)
    prepared.occupancy = _capture_occupancy(
        prepared.workload, prepared.module, prepared.inputs, golden, config
    )


class _GoldenShim:
    """Minimal golden-result stand-in for :func:`_capture_occupancy`."""

    __slots__ = ("instructions",)

    def __init__(self, instructions: int) -> None:
        self.instructions = instructions


def run_trial(
    prepared: PreparedWorkload,
    cycle: int,
    bit: int,
    seed: int,
    config: CampaignConfig,
    stats: Optional[Dict[str, int]] = None,
    model: str = "single_bit",
) -> TrialResult:
    """Inject one fault and classify the outcome per Section IV-C.

    When the prepared workload carries golden-run snapshots (and the config
    does not disable them), the trial fast-forwards from the nearest snapshot
    before its injection cycle instead of simulating the shared prefix; with
    triage on, a flip proven dead at injection time short-circuits straight
    to Masked.  Both are bit-invisible: the returned TrialResult is identical
    to a from-scratch run's.  ``stats``, when given, accumulates
    ``restores`` / ``replay_cycles_saved`` / ``triaged_masked`` /
    ``triaged_dead_memory`` counts.

    ``model`` names the :class:`~repro.sim.faults.FaultModel` to inject
    (always a concrete model — the campaign resolves ``chaos`` per plan).
    Every trial terminates with a classified outcome: the interpreter
    contains post-injection Python exceptions as
    :class:`HarnessContainedTrap`, and a last-resort boundary here does the
    same for harness code outside the interpreter (output comparison,
    fidelity scoring) so corrupted outputs can never kill a worker.
    """
    plan = InjectionPlan(cycle=cycle, bit=bit, seed=seed, model=model)
    interp = Interpreter(
        prepared.module,
        config=config.sim,
        guard_mode="detect",
        disabled_guards=set(prepared.noisy_guards),
    )
    # Memory-hierarchy models draw their targets from the golden-run
    # occupancy map when one was captured (None degrades to probing).
    interp._occupancy = prepared.occupancy
    return _drive_trial(prepared, plan, interp, config, stats)


def _drive_trial(
    prepared: PreparedWorkload,
    plan: InjectionPlan,
    interp: Interpreter,
    config: CampaignConfig,
    stats: Optional[Dict[str, int]],
) -> TrialResult:
    """Run + classify one trial on a ready interpreter (the scalar driver).

    Shared by :func:`run_trial` (fresh scalar interpreter) and the batched
    backend, which hands in a :class:`~repro.sim.batched.BatchedSweep` whose
    final lane *is* this trial — the sweep's earlier lanes strike and roll
    back inside ``workload.run``, invisible to the classification here.
    """
    limit = int(prepared.golden_instructions * config.timeout_factor) + 10_000
    with trace_mod.current().span(
        "trial", cat="trial", cycle=plan.cycle, bit=plan.bit, model=plan.model
    ):
        try:
            return _classify_trial(
                prepared, plan, interp, limit, config, stats
            )
        except Exception as err:
            # Last-resort containment (the interpreter's own boundary
            # converts in-simulation exceptions before they get here).
            # Pre-injection exceptions are harness bugs and must surface.
            if interp.injection_record is None:
                raise
            trap = HarnessContainedTrap(
                type(err).__name__, str(err), interp.cycle
            )
            return _trial_from_trap(
                interp, plan, _symptom_outcome(trap, plan, config), trap
            )


def _symptom_outcome(
    trap: SimTrap, plan: InjectionPlan, config: CampaignConfig
) -> Outcome:
    """HWDetect within the symptom window after injection, Failure beyond —
    the paper's Section IV-C policy for hardware-visible symptoms."""
    within = (trap.cycle - plan.cycle) <= config.symptom_window
    return Outcome.HWDETECT if within else Outcome.FAILURE


def _classify_trial(
    prepared: PreparedWorkload,
    plan: InjectionPlan,
    interp: Interpreter,
    limit: int,
    config: CampaignConfig,
    stats: Optional[Dict[str, int]],
) -> TrialResult:
    workload = prepared.workload
    restore = None
    if (
        prepared.snapshots is not None
        and interp.fastpath
        and snapshot_mod.resolve_snapshot_every(config.snapshot_every) != 0
    ):
        restore = prepared.snapshots.nearest(plan.cycle)
        if restore is not None and stats is not None:
            stats["restores"] = stats.get("restores", 0) + 1
            stats["replay_cycles_saved"] = (
                stats.get("replay_cycles_saved", 0) + restore.cycle
            )

    # Dead-flip triage is sound for single-site models with a deadness
    # proof: register liveness for ``single_bit``, the occupancy map for the
    # memory-hierarchy models.  Multi-site and register-persistent models
    # (double_bit, burst, stuck_at) keep the full run.
    triage = (
        snapshot_mod.resolve_triage(config.triage)
        and plan.model in TRIAGEABLE_FAULT_MODELS
    )
    tracer = trace_mod.current()
    try:
        run_start = time.perf_counter_ns() if tracer.enabled else 0
        try:
            outputs, result = workload.run(
                prepared.module,
                prepared.inputs,
                interpreter=interp,
                injection=plan,
                max_instructions=limit,
                restore_from=restore,
                triage=triage,
            )
        finally:
            if tracer.enabled:
                # Split the run at the injection instant: "replay" is the
                # golden prefix up to the flip, "detect" is post-injection
                # execution until the verdict (trap, timeout, or clean end).
                run_end = time.perf_counter_ns()
                inject_ns = getattr(interp, "trace_inject_ns", None)
                if inject_ns is not None and run_start <= inject_ns <= run_end:
                    tracer.add_complete("replay", "trial", run_start, inject_ns)
                    tracer.add_complete("detect", "trial", inject_ns, run_end)
                else:
                    tracer.add_complete("replay", "trial", run_start, run_end)
    except snapshot_mod.TriageMasked as masked:
        # The flip was proven dead at injection time: execution from here is
        # identical to the golden run, which completed with identical
        # outputs, so the full run would have classified this trial Masked
        # with the exact same injection record.
        if stats is not None:
            key = (
                "triaged_dead_memory"
                if getattr(masked, "reason", "") == "dead_memory"
                else "triaged_masked"
            )
            stats[key] = stats.get(key, 0) + 1
        return _base_trial(interp, plan)
    except GuardTrap as trap:
        trial = _trial_from_trap(interp, plan, Outcome.SWDETECT, trap)
        trial.detector_guard = trap.guard_id
        trial.detector_kind = trap.guard_kind
        return trial
    except TimeoutTrap as trap:
        return _trial_from_trap(interp, plan, Outcome.FAILURE, trap)
    except (
        MemoryTrap, ArithmeticTrap, StackOverflowTrap, HarnessContainedTrap
    ) as trap:
        outcome = _symptom_outcome(trap, plan, config)
        return _trial_from_trap(interp, plan, outcome, trap)

    with tracer.span("classify", cat="trial"):
        trial = _base_trial(interp, plan)
        identical = all(
            np.array_equal(prepared.golden_outputs[k], outputs[k])
            for k in prepared.golden_outputs
        )
        if identical:
            trial.outcome = Outcome.MASKED
            return trial

        fid = workload.fidelity(prepared.golden_outputs, outputs)
        trial.is_sdc = True
        trial.fidelity_score = fid.score
        if fid.acceptable:
            # Acceptable corruption: ASDC — the paper counts these as Masked
            # in the coverage view and separates them in the SDC view.
            trial.outcome = Outcome.MASKED
            trial.is_asdc = True
        else:
            trial.outcome = Outcome.USDC
        return trial


#: trap class → event-log trap kind
_TRAP_KINDS = {
    GuardTrap: "guard",
    MemoryTrap: "memory",
    ArithmeticTrap: "arithmetic",
    StackOverflowTrap: "stack_overflow",
    TimeoutTrap: "timeout",
}


def _trial_from_record(record, plan: InjectionPlan) -> TrialResult:
    """Masked-outcome TrialResult from an injection record.

    Shared by the scalar path (which reads the record off the interpreter)
    and the batched lane sweep (which carries the record on the lane), so
    both produce byte-identical trials for the same strike.
    """
    trial = TrialResult(
        outcome=Outcome.MASKED, injection_cycle=plan.cycle, bit=plan.bit,
        fault_model=plan.model,
    )
    if record is not None:
        trial.landed = record.landed
        trial.was_live = record.was_live
        trial.value_name = record.value_name
        trial.function = record.function
        if record.was_live:
            trial.change_magnitude = record.change_magnitude
    return trial


def _base_trial(interp: Interpreter, plan: InjectionPlan) -> TrialResult:
    return _trial_from_record(interp.injection_record, plan)


def _trial_from_trap(
    interp: Interpreter, plan: InjectionPlan, outcome: Outcome, trap: SimTrap
) -> TrialResult:
    trial = _base_trial(interp, plan)
    trial.outcome = outcome
    trial.event_cycle = trap.cycle
    kind = _TRAP_KINDS.get(trap.__class__)
    if kind is None:
        # e.g. HarnessContainedTrap names its own kind ("contained:<Exc>").
        kind = getattr(trap, "trap_kind", trap.__class__.__name__)
    trial.trap_kind = kind
    return trial


def run_batch_trials(
    prepared: PreparedWorkload,
    items: Sequence,
    config: CampaignConfig,
    stats: Optional[Dict[str, int]] = None,
) -> List:
    """Execute ``(index, plan)`` trials through one batched lane sweep.

    Returns ``(index, trial, anomalies)`` triples in completion order:
    masked lanes first (their verdict was decided in-sweep from the exact
    injection record a scalar run would produce), then each window's final
    lane (whose scalar trial the sweep itself became), then diverged lanes
    via the scalar fastpath.  Each :class:`TrialResult` is byte-identical to
    :func:`run_trial`'s for the same plan — batch composition only affects
    wall-clock, never outcomes.  Shared by the serial batched portion and
    the parallel workers' chunk execution.
    """
    from ..sim import batched as batched_mod

    def classify(plan, sweep):
        return _drive_trial(prepared, plan, sweep, config, stats)

    masked, peeled, continued, info = batched_mod.sweep_batch(
        prepared, items, config, classify
    )
    if stats is not None:
        stats["batched_batches"] = stats.get("batched_batches", 0) + 1
        stats["batched_lanes"] = stats.get("batched_lanes", 0) + info.lanes
        stats["batched_masked"] = stats.get("batched_masked", 0) + info.masked
        stats["batched_diverged"] = (
            stats.get("batched_diverged", 0) + sum(info.divergence.values())
        )
        stats["batched_vector_cycles"] = (
            stats.get("batched_vector_cycles", 0) + info.vector_cycles
        )
        if info.fallback:
            stats["batched_fallbacks"] = stats.get("batched_fallbacks", 0) + 1
        for reason, count in info.divergence.items():
            key = f"batched_div_{reason}"
            stats[key] = stats.get(key, 0) + count
    out = []
    for lane in masked:
        if stats is not None:
            key = (
                "triaged_dead_memory" if lane.reason == "dead_memory"
                else "triaged_masked"
            )
            stats[key] = stats.get(key, 0) + 1
        out.append(
            (lane.index, _trial_from_record(lane.record, lane.plan), [])
        )
    for index, trial in continued:
        out.append((index, trial, []))
    for index, plan, _reason in peeled:
        trial, anomalies = resilience_mod.run_trial_guarded(
            prepared, index, plan.cycle, plan.bit, plan.seed, config,
            stats=stats, model=plan.model,
        )
        out.append((index, trial, anomalies))
    return out


def draw_plans(
    config: CampaignConfig, prepared: PreparedWorkload
) -> List[InjectionPlan]:
    """Pre-draw every trial's (cycle, bit, seed) plan, serially.

    The single source of truth for campaign randomness: both the serial and
    the parallel execution paths consume this list, which is what makes a
    ``jobs=N`` campaign bit-identical to ``jobs=1``.  The RNG is seeded from
    a sha256 of (seed, workload, scheme) — deterministic across processes
    (Python's str hash is salted, so a tuple hash would make campaigns
    irreproducible between runs) — and each trial draws cycle, bit, and
    per-trial seed in that exact order, matching the historical interleaved
    loop draw-for-draw.

    Fault models add **no** plan draws for any concrete model — extra
    model randomness (burst width, stuck polarity, memory word, second bit)
    comes from the trial's private seed at injection time — so single-bit
    plans are byte-identical to the historical ones.  The ``chaos``
    pseudo-model draws exactly one extra value per trial, *after* the seed:
    the concrete model, uniform over
    :data:`~repro.sim.faults.CONCRETE_FAULT_MODELS`.
    """
    model = resolve_fault_model(config.fault_model)
    chaos = model == CHAOS_FAULT_MODEL
    key = f"{config.seed}:{prepared.workload.name}:{prepared.scheme}".encode()
    rng = random.Random(int.from_bytes(hashlib.sha256(key).digest()[:8], "big"))
    plans = []
    for _ in range(config.trials):
        cycle = rng.randrange(1, prepared.golden_instructions + 1)
        bit = rng.randrange(config.sim.register_flip_bits)
        seed = rng.randrange(1 << 30)
        plan_model = model
        if chaos:
            plan_model = CONCRETE_FAULT_MODELS[
                rng.randrange(len(CONCRETE_FAULT_MODELS))
            ]
        plans.append(
            InjectionPlan(cycle=cycle, bit=bit, seed=seed, model=plan_model)
        )
    return plans


def resolve_fault_model(value: Optional[str]) -> str:
    """Resolve a fault-model name: explicit value wins, then the
    ``REPRO_FAULT_MODEL`` environment variable, then ``"single_bit"``.

    Accepts every concrete model plus ``"chaos"``; anything else raises
    ``ValueError`` (a typo must never silently fall back to the default
    model).
    """
    if value is None:
        value = os.environ.get("REPRO_FAULT_MODEL", "").strip() or None
    if value is None:
        return "single_bit"
    if value != CHAOS_FAULT_MODEL and value not in FAULT_MODELS:
        known = ", ".join(CONCRETE_FAULT_MODELS + (CHAOS_FAULT_MODEL,))
        raise ValueError(f"unknown fault model {value!r} (known: {known})")
    return value


def resolve_fault_model_config(config: CampaignConfig) -> CampaignConfig:
    """Fold the ``REPRO_FAULT_MODEL`` default into the config.

    Same contract as :func:`resolve_obs_config`: explicit fields win, the
    environment only fills gaps, and resolution happens once in the parent
    so every worker injects under the same model.
    """
    model = resolve_fault_model(config.fault_model)
    if model == config.fault_model:
        return config
    return replace(config, fault_model=model)


def resolve_batch(value: Optional[int]) -> int:
    """Resolve the batched-lane batch size: explicit config wins, then
    ``REPRO_BATCH``, then 0 (off).  Unparsable environment values resolve
    to 0 — the scalar path is the safe default."""
    if value is not None:
        return max(0, value)
    raw = os.environ.get("REPRO_BATCH", "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            return 0
    return 0


def resolve_batch_config(config: CampaignConfig) -> CampaignConfig:
    """Fold the ``REPRO_BATCH`` default into the config (parent-side, so
    workers inherit the same batching decision through the pool
    initializer)."""
    batch = resolve_batch(config.batch)
    if batch == config.batch:
        return config
    return replace(config, batch=batch)


def batched_enabled(config: CampaignConfig) -> bool:
    """Is the batched lane-sweep backend on for this campaign?

    Requires a batch size > 1 and triage on: the sweep's Masked-in-place
    verdicts *are* strike-time triage decisions, so with triage off (where
    the scalar path runs every trial to completion) the backend has nothing
    sound to decide in place and falls back to scalar.
    """
    return bool(
        config.batch and config.batch > 1
        and snapshot_mod.resolve_triage(config.triage)
    )


def resolve_telemetry_config(config: CampaignConfig) -> CampaignConfig:
    """Fold the ``REPRO_TRACE``/``REPRO_HEARTBEAT`` defaults into the config.

    Same contract as :func:`resolve_obs_config`: explicit fields win, the
    environment only fills gaps, and resolution happens once in the parent
    so workers (which receive the config through the pool initializer) make
    the same tracing decision.
    """
    trace = trace_mod.resolve_trace(config.trace)
    heartbeat = heartbeat_mod.resolve_heartbeat(config.heartbeat)
    if trace == config.trace and heartbeat == config.heartbeat:
        return config
    return replace(config, trace=trace, heartbeat=heartbeat)


def _chain_heartbeat(heart, on_trial, on_recovery):
    """Wrap the user callbacks so the heartbeat counts trials/incidents.

    The wrapper is itself batch-aware (``heartbeat_trial.batch``): a burst
    from a batched lane sweep folds into the heartbeat in one bulk call —
    so its effective-trials/sec EMA sees batch completions × lanes — and is
    then forwarded whole to a batch-aware inner callback, or per-trial
    otherwise.
    """
    inner_batch = (
        getattr(on_trial, "batch", None) if on_trial is not None else None
    )

    def heartbeat_trial(trial: TrialResult) -> None:
        heart.trial(trial.outcome.value)
        if on_trial is not None:
            on_trial(trial)

    def heartbeat_batch(trials) -> None:
        heart.trials([trial.outcome.value for trial in trials])
        if inner_batch is not None:
            inner_batch(trials)
        elif on_trial is not None:
            for trial in trials:
                on_trial(trial)

    heartbeat_trial.batch = heartbeat_batch

    def heartbeat_recovery(line: str) -> None:
        heart.incident()
        if on_recovery is not None:
            on_recovery(line)

    return heartbeat_trial, heartbeat_recovery


def resolve_obs_config(config: CampaignConfig) -> CampaignConfig:
    """Fold the ``REPRO_OBS``/``REPRO_OBS_TIMING`` defaults into the config.

    Explicit config fields win; the environment only fills gaps.  Resolution
    happens once, in the parent, so workers (which receive the config through
    the pool initializer) see the exact same observability decision.
    """
    obs_log = config.obs_log if config.obs_log else obs_config.obs_log_path()
    obs_timing = config.obs_timing or obs_config.obs_timing_enabled()
    if obs_log == config.obs_log and obs_timing == config.obs_timing:
        return config
    return replace(config, obs_log=obs_log, obs_timing=obs_timing)


def resolve_resilience_config(config: CampaignConfig) -> CampaignConfig:
    """Fold the ``REPRO_RESILIENCE``/``REPRO_CHECKPOINT`` defaults in.

    Like :func:`resolve_obs_config`: explicit config fields win, the
    environment only fills gaps, and resolution happens once in the parent
    so every worker sees the same recovery policy.
    """
    policy = config.resilience or resilience_mod.default_policy()
    checkpoint = config.checkpoint or resilience_mod.checkpoint_path_env()
    if policy is config.resilience and checkpoint == config.checkpoint:
        return config
    return replace(config, resilience=policy, checkpoint=checkpoint)


def resolve_prefix_config(config: CampaignConfig) -> CampaignConfig:
    """Fold the ``REPRO_SNAPSHOT*``/``REPRO_TRIAGE`` defaults into the config.

    Same contract as :func:`resolve_obs_config`: explicit fields win, the
    environment only fills gaps, and resolution happens once in the parent
    so every worker makes the same snapshot/triage decision.
    """
    every = snapshot_mod.resolve_snapshot_every(config.snapshot_every)
    triage = snapshot_mod.resolve_triage(config.triage)
    if every == config.snapshot_every and triage == config.triage:
        return config
    return replace(config, snapshot_every=every, triage=triage)


def resolve_jobs_config(config: CampaignConfig) -> CampaignConfig:
    """Resolve ``jobs=0`` (auto) to the machine's CPU count.

    Resolution happens once in the parent; the parallel path is skipped
    entirely when the resolved count is 1, so single-core runners stop
    paying pool overhead.
    """
    if config.jobs == 0:
        return replace(config, jobs=os.cpu_count() or 1)
    if config.jobs < 0:
        return replace(config, jobs=1)
    return config


def _record_campaign_metrics(registry, result: CampaignResult,
                             seconds: float) -> None:
    """Fold one finished campaign into the process-wide metrics registry."""
    registry.counter("campaign.campaigns").inc()
    registry.counter("campaign.trials").inc(result.num_trials)
    registry.timer("campaign.wall").add_seconds(seconds)
    latency_hist = registry.histogram("campaign.detection_latency_cycles")
    for trial in result.trials:
        registry.counter(f"campaign.outcome.{trial.outcome.value}").inc()
        latency = trial.detection_latency
        if latency is not None:
            latency_hist.observe(latency)
        if trial.detector_guard is not None:
            registry.counter(f"campaign.check.{trial.detector_guard}").inc()


def _record_prefix_stats(
    config: CampaignConfig, result: CampaignResult, stats: Dict[str, int]
) -> None:
    """Surface shared-prefix execution stats: registry counters plus one
    ``prefix_sharing`` event in the ``<log>.resilience`` sidecar.

    Kept out of the main obs log on purpose: trial events are byte-identical
    with snapshots on or off, and folding per-campaign restore counts into
    the main log would break that differential guarantee.
    """
    if not any(stats.values()):
        return
    registry = global_registry()
    registry.counter("snapshot.restores").inc(stats.get("restores", 0))
    registry.counter("snapshot.replay_cycles_saved").inc(
        stats.get("replay_cycles_saved", 0)
    )
    registry.counter("campaign.triaged_masked").inc(
        stats.get("triaged_masked", 0)
    )
    registry.counter("campaign.triaged_dead_memory").inc(
        stats.get("triaged_dead_memory", 0)
    )
    if config.obs_log:
        obs_events.append_sidecar_event(
            config.obs_log,
            obs_events.prefix_sharing_event(
                result.workload,
                result.scheme,
                restores=stats.get("restores", 0),
                replay_cycles_saved=stats.get("replay_cycles_saved", 0),
                triaged_masked=stats.get("triaged_masked", 0),
                triaged_dead_memory=stats.get("triaged_dead_memory", 0),
            ),
        )


def _record_occupancy_event(
    config: CampaignConfig,
    result: CampaignResult,
    prepared: PreparedWorkload,
) -> None:
    """Emit the campaign's per-structure residency rows as one ``occupancy``
    event in the ``<log>.resilience`` sidecar — the AVF report joins these
    against the trial outcomes.  Sidecar-only for the same reason as
    ``prefix_sharing``: the main obs log must stay byte-identical whether
    the occupancy pass ran or not.
    """
    if not config.obs_log or prepared.occupancy is None:
        return
    obs_events.append_sidecar_event(
        config.obs_log,
        obs_events.occupancy_event(
            result.workload, result.scheme, prepared.occupancy.residency()
        ),
    )


def _open_checkpointer(
    prepared: PreparedWorkload,
    config: CampaignConfig,
    rlog: resilience_mod.ResilienceLogger,
) -> Optional[resilience_mod.Checkpointer]:
    """Load (or initialise) the campaign's checkpoint, keyed like the disk
    cache so a checkpoint can never be replayed against different code,
    config, or seed.  On a genuine resume the obs log is rolled back to the
    byte offset recorded before the interrupted campaign started, and stale
    worker shard files are discarded, so the resumed run rewrites a log
    byte-identical to an uninterrupted one.
    """
    if not config.checkpoint or not config.resilience.enabled:
        return None
    from .diskcache import campaign_key

    key = campaign_key(
        prepared.module, prepared.workload.name, prepared.scheme, config
    )
    loaded = resilience_mod.load_checkpoint(
        config.checkpoint, key, config.trials, logger=rlog
    )
    restored = loaded.completed if loaded is not None else {}
    obs_offset = resilience_mod.obs_log_size(config.obs_log)
    if restored:
        if config.obs_log:
            if loaded.obs_log == config.obs_log:
                resilience_mod.truncate_obs_log(
                    config.obs_log, loaded.obs_log_offset
                )
                obs_offset = loaded.obs_log_offset
            obs_events.discard_shards(config.obs_log)
        rlog.emit(
            "checkpoint_load",
            note=(f"resuming from checkpoint: {len(restored)}/"
                  f"{config.trials} trials already complete"),
            path=config.checkpoint,
            completed=len(restored), trials=config.trials,
        )
    checkpoint = resilience_mod.Checkpoint(
        key=key,
        workload=prepared.workload.name,
        scheme=prepared.scheme,
        trials=config.trials,
        completed=dict(restored),
        obs_log=config.obs_log,
        obs_log_offset=obs_offset,
    )
    return resilience_mod.Checkpointer(
        config.checkpoint, checkpoint,
        every=config.resilience.checkpoint_every, logger=rlog,
    )


def run_campaign(
    workload: Workload,
    scheme: str,
    config: Optional[CampaignConfig] = None,
    prepared: Optional[PreparedWorkload] = None,
    on_trial: Optional[Callable[[TrialResult], None]] = None,
    on_recovery: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Run a full statistical fault-injection campaign.

    ``on_trial`` is invoked once per finished trial (in completion order,
    which under ``config.jobs > 1`` may differ from plan order) — intended
    for progress reporting; the returned result is always in plan order.
    ``on_recovery`` receives a short human-readable line per recovery action
    (checkpoint load, chunk retry, serial fallback, quarantine).

    When ``config.obs_log`` (or ``REPRO_OBS``) names a path, a structured
    JSONL event log is appended there: a ``campaign_begin`` header, one
    ``trial`` record per plan (in plan order — parallel workers write shard
    files the parent folds back in), and a ``campaign_end`` footer whose
    tallies match the returned result.  With per-trial timing off (default)
    the log is byte-identical for any ``jobs`` value.

    When ``config.checkpoint`` (or ``REPRO_CHECKPOINT``) names a path,
    completed trials are periodically persisted there and an interrupted
    campaign resumes from the last checkpoint on the next invocation —
    producing results and event logs byte-identical to an uninterrupted run
    (see ``docs/RESILIENCE.md``).  Worker failures are retried and degrade
    to in-process serial execution per ``config.resilience``.

    When ``config.trace`` (or ``REPRO_TRACE``) names a path, hierarchical
    wall-clock spans are exported there as Chrome trace-event JSON at
    campaign end; ``config.heartbeat`` (or ``REPRO_HEARTBEAT``) maintains a
    live status file for ``python -m repro.obs top``.  Both are pure
    sidecars: results, the main obs log, cache keys, and checkpoints are
    byte-identical with them on or off (see ``docs/OBSERVABILITY.md``).
    """
    config = resolve_obs_config(config or CampaignConfig())
    config = resolve_resilience_config(config)
    config = resolve_prefix_config(config)
    config = resolve_jobs_config(config)
    config = resolve_fault_model_config(config)
    config = resolve_batch_config(config)
    config = resolve_telemetry_config(config)
    tracer = trace_mod.activate(config.trace)
    heart = None
    if config.heartbeat:
        heart = heartbeat_mod.HeartbeatWriter(
            config.heartbeat, workload=workload.name, scheme=scheme,
            total=config.trials,
        )
        on_trial, on_recovery = _chain_heartbeat(heart, on_trial, on_recovery)
        heart.begin()
    campaign_span = tracer.span(
        "campaign", cat="campaign", workload=workload.name, scheme=scheme,
        trials=config.trials, jobs=config.jobs,
    )
    campaign_span.__enter__()
    campaign_ok = False
    try:
        prepared = prepared or prepare(workload, scheme, config)
        _ensure_occupancy(prepared, config)
        plans = draw_plans(config, prepared)
        rlog = resilience_mod.ResilienceLogger(config.obs_log, echo=on_recovery)
        checkpointer = _open_checkpointer(prepared, config, rlog)
        restored = (
            dict(checkpointer.completed) if checkpointer is not None else {}
        )

        result = CampaignResult(
            workload=workload.name,
            scheme=scheme,
            golden_instructions=prepared.golden_instructions,
            golden_guard_failures=prepared.golden_guard_failures,
            golden_guard_evaluations=prepared.golden_guard_evaluations,
            fault_model=config.fault_model or "single_bit",
        )
        writer = None
        if config.obs_log:
            writer = obs_events.EventLogWriter(config.obs_log)
        start = time.perf_counter()
        completed_ok = False
        try:
            if writer is not None:
                writer.emit(obs_events.campaign_begin_event(result))
            pending = [
                (index, plan) for index, plan in enumerate(plans)
                if index not in restored
            ]
            stats = {
                "restores": 0, "replay_cycles_saved": 0, "triaged_masked": 0,
                "triaged_dead_memory": 0,
            }
            if config.jobs > 1 and len(pending) > 1:
                _run_parallel_portion(
                    prepared, plans, pending, restored, config, result,
                    writer, checkpointer, rlog, on_trial, stats,
                )
            elif batched_enabled(config) and len(pending) > 1:
                _run_serial_batched_portion(
                    prepared, plans, restored, config, result,
                    writer, checkpointer, rlog, on_trial, stats,
                )
            else:
                _run_serial_portion(
                    prepared, plans, restored, config, result,
                    writer, checkpointer, rlog, on_trial, stats,
                )
            _record_prefix_stats(config, result, stats)
            _record_batched_stats(config, result, stats)
            _record_occupancy_event(config, result, prepared)
            if writer is not None:
                writer.emit(obs_events.campaign_end_event(result))
            completed_ok = True
        except BaseException:
            # Persist every trial that did finish, so the interrupted
            # campaign (KeyboardInterrupt, lost pool, reboot) is resumable.
            if checkpointer is not None:
                checkpointer.flush(force=True)
            raise
        finally:
            if writer is not None:
                writer.close()
            # Orphaned worker shard files must never outlive a failed
            # campaign: a later campaign sharing the log would merge them
            # out of context.
            if not completed_ok and config.obs_log:
                obs_events.discard_shards(config.obs_log)
        if checkpointer is not None:
            checkpointer.clear()
        registry = global_registry()
        if registry.enabled:
            _record_campaign_metrics(
                registry, result, time.perf_counter() - start
            )
        campaign_ok = True
    finally:
        campaign_span.__exit__(None, None, None)
        tracer.export()
        if heart is not None:
            heart.finish("done" if campaign_ok else "failed")
    return result


def _run_serial_portion(
    prepared, plans, restored, config, result, writer, checkpointer, rlog,
    on_trial, stats=None,
) -> None:
    """In-process execution, restored trials interleaved in plan order."""
    timed = config.obs_timing and writer is not None
    for index, plan in enumerate(plans):
        previous = restored.get(index)
        if previous is not None:
            trial, wall_ms = previous, None
        else:
            t0 = time.perf_counter() if timed else 0.0
            trial, anomalies = resilience_mod.run_trial_guarded(
                prepared, index, plan.cycle, plan.bit, plan.seed, config,
                stats=stats, model=plan.model,
            )
            wall_ms = (time.perf_counter() - t0) * 1e3 if timed else None
            for anomaly in anomalies:
                kind = anomaly.pop("kind")
                rlog.emit(kind, note=f"{kind}: trial {index}", **anomaly)
            if checkpointer is not None:
                checkpointer.record(index, trial)
        result.trials.append(trial)
        if writer is not None:
            writer.emit(
                obs_events.trial_event(index, plan, trial, wall_ms=wall_ms)
            )
        if on_trial is not None:
            on_trial(trial)


def _run_serial_batched_portion(
    prepared, plans, restored, config, result, writer, checkpointer, rlog,
    on_trial, stats=None,
) -> None:
    """Serial batched-lane execution: ``config.batch`` lanes per sweep.

    Trials complete in batch order (masked lanes of a sweep first, then its
    peeled scalar reruns), so — like the parallel-resume path — trial
    events are regenerated in plan order after execution rather than
    streamed, keeping the log byte-identical to the scalar serial run.
    Batched mode never records ``wall_ms``: per-trial wall-clock has no
    meaning for a lane whose verdict came from a shared sweep (the same
    reason a resumed ``jobs>1`` log drops it).  Completion callbacks fire
    per finished *trial* in bursts of one batch; a batch-aware callback
    (``on_trial.batch``) receives each burst whole so throughput EMAs see
    batch completions × lanes, not batch count.
    """
    pending = [
        (index, plan) for index, plan in enumerate(plans)
        if index not in restored
    ]
    trials_by_index = dict(restored)
    notify_batch = (
        getattr(on_trial, "batch", None) if on_trial is not None else None
    )
    if on_trial is not None:
        for index in sorted(restored):
            on_trial(restored[index])
    size = config.batch
    for at in range(0, len(pending), size):
        finished = run_batch_trials(
            prepared, pending[at:at + size], config, stats=stats
        )
        for index, trial, anomalies in finished:
            for anomaly in anomalies:
                kind = anomaly.pop("kind")
                rlog.emit(kind, note=f"{kind}: trial {index}", **anomaly)
            trials_by_index[index] = trial
            if checkpointer is not None:
                checkpointer.record(index, trial)
        if notify_batch is not None:
            notify_batch([trial for _, trial, _ in finished])
        elif on_trial is not None:
            for _, trial, _ in finished:
                on_trial(trial)
    result.trials.extend(trials_by_index[i] for i in range(len(plans)))
    if writer is not None:
        for index, plan in enumerate(plans):
            writer.emit(
                obs_events.trial_event(index, plan, trials_by_index[index])
            )


def _record_batched_stats(
    config: CampaignConfig, result: CampaignResult, stats: Dict[str, int]
) -> None:
    """Surface batched-lane execution stats: registry counters plus one
    ``batched`` event in the ``<log>.resilience`` sidecar.

    Sidecar-only for the same reason as ``prefix_sharing``: trial events are
    byte-identical with batching on or off, and lane/divergence counts in
    the main log would break that differential guarantee.
    """
    if not stats.get("batched_batches"):
        return
    registry = global_registry()
    registry.counter("batch.batches").inc(stats.get("batched_batches", 0))
    registry.counter("batch.lanes").inc(stats.get("batched_lanes", 0))
    registry.counter("batch.masked").inc(stats.get("batched_masked", 0))
    registry.counter("batch.diverged").inc(stats.get("batched_diverged", 0))
    registry.counter("batch.vector_cycles").inc(
        stats.get("batched_vector_cycles", 0)
    )
    registry.counter("batch.sweep_fallbacks").inc(
        stats.get("batched_fallbacks", 0)
    )
    divergence = {
        key[len("batched_div_"):]: value
        for key, value in stats.items()
        if key.startswith("batched_div_") and value
    }
    for reason, count in sorted(divergence.items()):
        registry.counter(f"batch.divergence.{reason}").inc(count)
    if config.obs_log:
        obs_events.append_sidecar_event(
            config.obs_log,
            obs_events.batched_event(
                result.workload,
                result.scheme,
                batches=stats.get("batched_batches", 0),
                lanes=stats.get("batched_lanes", 0),
                masked=stats.get("batched_masked", 0),
                diverged=stats.get("batched_diverged", 0),
                vector_cycles=stats.get("batched_vector_cycles", 0),
                fallbacks=stats.get("batched_fallbacks", 0),
                divergence=divergence,
            ),
        )


def _run_parallel_portion(
    prepared, plans, pending, restored, config, result, writer, checkpointer,
    rlog, on_trial, stats=None,
) -> None:
    """Pool execution of the pending trials (worker recovery inside
    :func:`~.parallel.run_trials_parallel`).

    On a fresh campaign this is the streaming path of PR 1/2: workers write
    per-chunk event shards, the parent folds them back in plan order.  On a
    *resume*, restored trials are scattered through the plan, so shard
    concatenation can no longer reproduce plan order; instead workers run
    with the log disabled and the parent regenerates every trial event (a
    pure function of plan + result) in plan order after the pool drains —
    byte-identical to the streaming log.
    """
    from .parallel import run_trials_parallel

    resuming = bool(restored)
    worker_config = replace(config, obs_log=None) if resuming else config
    trials_by_index = dict(restored)

    def on_result(index: int, trial: TrialResult) -> None:
        trials_by_index[index] = trial
        if checkpointer is not None:
            checkpointer.record(index, trial)

    if on_trial is not None:
        for index in sorted(restored):
            on_trial(restored[index])
    run_trials_parallel(
        prepared,
        [plan for _, plan in pending],
        worker_config,
        on_trial=on_trial,
        indices=[index for index, _ in pending],
        on_result=on_result,
        rlog=rlog,
        stats=stats,
    )
    result.trials.extend(trials_by_index[i] for i in range(len(plans)))
    if writer is not None:
        if resuming:
            for index, plan in enumerate(plans):
                writer.emit(
                    obs_events.trial_event(index, plan, trials_by_index[index])
                )
        else:
            obs_events.merge_shards(writer)
