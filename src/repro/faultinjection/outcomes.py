"""Trial outcome taxonomy (paper Section IV-C).

Every fault-injection trial ends in exactly one of the five paper categories:

* **Masked** — output identical to golden, *or* numerically different but of
  acceptable quality (the paper folds ASDCs into Masked for the coverage
  view; the SDC view below keeps them separate);
* **HWDetect** — a hardware symptom (memory/arithmetic trap) within the
  symptom window after injection;
* **SWDetect** — one of the inserted software checks fired;
* **Failure** — a trap outside the symptom window, or an infinite loop;
* **USDC** — the program completed but the output quality is unacceptable.

For the SDC analyses (Figures 2 and 13) each completed-but-different trial is
additionally tagged ASDC/USDC and, for USDCs, large/small by the magnitude of
the injected value change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional


class Outcome(Enum):
    """Paper Section IV-C trial categories."""

    MASKED = "Masked"
    HWDETECT = "HWDetect"
    SWDETECT = "SWDetect"
    FAILURE = "Failure"
    USDC = "USDC"


@dataclass
class TrialResult:
    """Everything recorded about one injection trial."""

    outcome: Outcome
    injection_cycle: int
    bit: int
    #: the flip landed in an occupied register
    landed: bool = False
    #: the flipped register held a live value (dead flips are masked)
    was_live: bool = False
    #: trap/detection cycle for detected/failed runs
    event_cycle: Optional[int] = None
    #: fidelity score for completed runs (None for detected/failed)
    fidelity_score: Optional[float] = None
    #: completed run whose output differed from golden (SDC view)
    is_sdc: bool = False
    #: SDC that was still acceptable (ASDC)
    is_asdc: bool = False
    #: relative magnitude of the injected value change (Figure 2)
    change_magnitude: float = 0.0
    #: name of the corrupted IR value (diagnostics)
    value_name: str = ""
    #: function the fault landed in (program region, observability)
    function: str = ""
    #: guard id of the software check that fired (SWDetect only)
    detector_guard: Optional[int] = None
    #: kind of that guard: 'eq', 'range', or 'values'
    detector_kind: str = ""
    #: class of the run-terminating event: 'guard', 'memory', 'arithmetic',
    #: 'stack_overflow', 'timeout', or 'contained:<ExceptionName>' for a
    #: contained harness exception ('' for completed runs)
    trap_kind: str = ""
    #: fault model injected (see :mod:`repro.sim.faults`); 'single_bit' is
    #: the paper's model and the default
    fault_model: str = "single_bit"

    @property
    def detected(self) -> bool:
        return self.outcome in (Outcome.HWDETECT, Outcome.SWDETECT)

    @property
    def detection_latency(self) -> Optional[int]:
        """Cycles from injection to detection (detected outcomes only)."""
        if not self.detected or self.event_cycle is None:
            return None
        return self.event_cycle - self.injection_cycle


def trial_to_record(t: TrialResult) -> Dict:
    """JSON-safe record of one trial (checkpoints, caches, exports).

    The ``fault_model`` key is only present for non-default models:
    single-bit records must stay byte-identical to those written before the
    fault-model hierarchy existed (cached campaigns, checkpoints, goldens).
    """
    rec = _trial_record_base(t)
    if t.fault_model != "single_bit":
        rec["fault_model"] = t.fault_model
    return rec


def _trial_record_base(t: TrialResult) -> Dict:
    return {
        "outcome": t.outcome.value,
        "cycle": t.injection_cycle,
        "bit": t.bit,
        "landed": t.landed,
        "was_live": t.was_live,
        "event_cycle": t.event_cycle,
        "fidelity": t.fidelity_score,
        "is_sdc": t.is_sdc,
        "is_asdc": t.is_asdc,
        "change_magnitude": t.change_magnitude,
        "value_name": t.value_name,
        "function": t.function,
        "detector_guard": t.detector_guard,
        "detector_kind": t.detector_kind,
        "trap_kind": t.trap_kind,
    }


def trial_from_record(rec: Dict) -> TrialResult:
    """Inverse of :func:`trial_to_record` — bit-exact reconstruction.

    Every :class:`TrialResult` field appears in the record (and JSON
    round-trips Python floats exactly), so a trial loaded from disk compares
    equal, field for field, to the one that was saved.  Both the on-disk
    campaign cache and the resilience checkpoints rely on this.
    """
    return TrialResult(
        outcome=Outcome(rec["outcome"]),
        injection_cycle=rec["cycle"],
        bit=rec["bit"],
        landed=rec.get("landed", False),
        was_live=rec.get("was_live", False),
        event_cycle=rec.get("event_cycle"),
        fidelity_score=rec.get("fidelity"),
        is_sdc=rec.get("is_sdc", False),
        is_asdc=rec.get("is_asdc", False),
        change_magnitude=rec.get("change_magnitude", 0.0),
        value_name=rec.get("value_name", ""),
        function=rec.get("function", ""),
        detector_guard=rec.get("detector_guard"),
        detector_kind=rec.get("detector_kind", ""),
        trap_kind=rec.get("trap_kind", ""),
        fault_model=rec.get("fault_model", "single_bit"),
    )


@dataclass
class CampaignResult:
    """Aggregated statistics of one (workload, scheme) campaign."""

    workload: str
    scheme: str
    trials: List[TrialResult] = field(default_factory=list)
    golden_instructions: int = 0
    #: false positives observed in the fault-free (golden) run
    golden_guard_failures: int = 0
    golden_guard_evaluations: int = 0
    #: the campaign's fault model ('chaos' = per-trial mix; each trial's
    #: concrete model is on the TrialResult)
    fault_model: str = "single_bit"

    # -- fractions of total injected faults --------------------------------------

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    def fraction(self, outcome: Outcome) -> float:
        if not self.trials:
            return 0.0
        return sum(1 for t in self.trials if t.outcome is outcome) / len(self.trials)

    @property
    def masked(self) -> float:
        return self.fraction(Outcome.MASKED)

    @property
    def hwdetect(self) -> float:
        return self.fraction(Outcome.HWDETECT)

    @property
    def swdetect(self) -> float:
        return self.fraction(Outcome.SWDETECT)

    @property
    def failure(self) -> float:
        return self.fraction(Outcome.FAILURE)

    @property
    def usdc(self) -> float:
        return self.fraction(Outcome.USDC)

    @property
    def coverage(self) -> float:
        """Masked + SWDetect + HWDetect (the paper's fault-coverage metric)."""
        return self.masked + self.swdetect + self.hwdetect

    # -- SDC view (Figures 2, 13) ----------------------------------------------------

    @property
    def sdc(self) -> float:
        """Completed runs with numerically different output (ASDC + USDC)."""
        if not self.trials:
            return 0.0
        return sum(1 for t in self.trials if t.is_sdc) / len(self.trials)

    @property
    def asdc(self) -> float:
        if not self.trials:
            return 0.0
        return sum(1 for t in self.trials if t.is_asdc) / len(self.trials)

    def usdc_by_change(self, threshold: float) -> Dict[str, float]:
        """USDC fraction split by injected-value change magnitude (Figure 2)."""
        if not self.trials:
            return {"large": 0.0, "small": 0.0}
        n = len(self.trials)
        large = sum(
            1 for t in self.trials
            if t.outcome is Outcome.USDC and t.change_magnitude > threshold
        )
        small = sum(
            1 for t in self.trials
            if t.outcome is Outcome.USDC and t.change_magnitude <= threshold
        )
        return {"large": large / n, "small": small / n}

    def counts(self) -> Dict[str, int]:
        out = {o.value: 0 for o in Outcome}
        for t in self.trials:
            out[t.outcome.value] += 1
        return out

    def to_dict(self) -> Dict:
        """JSON-serialisable summary + per-trial records (for offline
        analysis of campaign data outside this package).

        Like :func:`trial_to_record`, ``fault_model`` is only emitted for
        non-default models so cached single-bit campaign JSON stays
        byte-identical to the pre-hierarchy format."""
        doc = {
            "workload": self.workload,
            "scheme": self.scheme,
            "trials": self.num_trials,
            "golden_instructions": self.golden_instructions,
            "golden_guard_failures": self.golden_guard_failures,
            "golden_guard_evaluations": self.golden_guard_evaluations,
        }
        if self.fault_model != "single_bit":
            doc["fault_model"] = self.fault_model
        doc.update({
            "fractions": {
                "masked": self.masked,
                "swdetect": self.swdetect,
                "hwdetect": self.hwdetect,
                "failure": self.failure,
                "usdc": self.usdc,
                "sdc": self.sdc,
                "asdc": self.asdc,
                "coverage": self.coverage,
            },
            "records": [trial_to_record(t) for t in self.trials],
        })
        return doc

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignResult":
        """Inverse of :meth:`to_dict` — bit-exact trial reconstruction (see
        :func:`trial_from_record`).  This is what makes the on-disk campaign
        cache transparent."""
        result = cls(
            workload=data["workload"],
            scheme=data["scheme"],
            golden_instructions=data.get("golden_instructions", 0),
            golden_guard_failures=data.get("golden_guard_failures", 0),
            golden_guard_evaluations=data.get("golden_guard_evaluations", 0),
            fault_model=data.get("fault_model", "single_bit"),
        )
        for rec in data.get("records", ()):
            result.trials.append(trial_from_record(rec))
        return result

    def save(self, path) -> None:
        """Write the campaign as JSON to ``path``."""
        import json

        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh)

    @classmethod
    def load(cls, path) -> "CampaignResult":
        """Read a campaign previously written by :meth:`save`."""
        import json

        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    def __repr__(self) -> str:
        c = self.counts()
        return (
            f"<Campaign {self.workload}/{self.scheme} n={self.num_trials} "
            f"masked={c['Masked']} hw={c['HWDetect']} sw={c['SWDetect']} "
            f"fail={c['Failure']} usdc={c['USDC']}>"
        )
