"""On-disk campaign result cache.

Repeated figure/benchmark invocations re-run identical fault-injection
campaigns; since a campaign is a pure function of (module IR, scheme,
campaign config, trial count, seed), its result can be cached on disk and
reloaded bit-identically (see :meth:`CampaignResult.from_dict`).

**Key contents.**  The cache key is the sha256 of a canonical JSON document
containing:

* ``schema`` — :data:`CACHE_SCHEMA_VERSION`, bumped whenever trial semantics
  or the serialisation format change, so stale entries miss instead of
  poisoning results;
* ``ir`` — the printed IR of the *protected* module (so any change to a
  workload builder, transform pipeline, or protection knob that alters the
  emitted code changes the key);
* ``scheme`` and the workload name;
* ``config`` — every :class:`CampaignConfig` field (including the full
  nested ``SimConfig`` and ``ProtectionConfig``) *except* ``jobs``, which
  cannot affect results by construction;
* ``trials`` and ``seed``.

**Location.**  ``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``.  Set
``REPRO_CACHE=0`` to disable reads and writes; delete the directory (or any
single ``campaign-*.json`` file) to invalidate manually.

Writes are atomic (temp file + ``os.replace``), so concurrent campaigns —
including the workers of a parallel campaign on a shared filesystem — can
only ever observe complete entries.

**Integrity.**  Every entry embeds a sha256 of its canonical result payload,
verified on load.  A corrupt entry (unparsable JSON, checksum mismatch, or
an undecodable result) is *quarantined* — moved into a ``quarantine/``
subdirectory of the cache, preserving the evidence — counted in the
``cache.corrupt`` metric, and reported as a resilience event; the campaign
is then recomputed.  Entries are never silently ignored and never trusted
unverified (see ``docs/RESILIENCE.md``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..ir.printer import module_to_str
from ..obs import trace as trace_mod
from ..obs.metrics import global_registry
from .campaign import CampaignConfig
from .outcomes import CampaignResult
from .resilience import ResilienceLogger, quarantine_file

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CampaignCache",
    "cache_dir",
    "cache_enabled",
    "campaign_key",
]

#: bump on any change to trial semantics, the campaign RNG, or the
#: serialisation format — old entries then miss instead of being replayed.
#: v2: trial records gained detector/provenance fields (detector_guard,
#: detector_kind, trap_kind, function) and entries carry creation metadata.
CACHE_SCHEMA_VERSION = 2


def cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR", "")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def cache_enabled() -> bool:
    """False when ``REPRO_CACHE`` is set to 0/off/false/no."""
    return os.environ.get("REPRO_CACHE", "1").lower() not in (
        "0", "off", "false", "no",
    )


def _config_fingerprint(config: CampaignConfig) -> dict:
    """JSON-safe view of every result-affecting config field.

    ``jobs`` is excluded: pre-drawn trial plans make parallel campaigns
    bit-identical to serial ones, so worker count must not fragment the
    cache.  The observability knobs (``obs_log``, ``obs_timing``) are
    excluded, as are ``snapshot_every``/``triage`` (shared-prefix execution
    is differentially verified byte-identical to from-scratch runs),
    for the same reason — logging observes trials, it cannot affect
    them — as are the resilience knobs (``checkpoint``, ``resilience``):
    recovery changes how trials get executed, never what they compute.
    The telemetry sidecar paths (``trace``, ``heartbeat``) are excluded on
    the same grounds: wall-clock spans and status files observe a campaign
    without touching its results.  ``batch`` is excluded because batched
    lane-parallel execution is differentially verified byte-identical to
    the scalar fastpath, so batch size must not fragment the cache.
    ``trials`` and ``seed`` are kept in the fingerprint *and* surfaced as
    top-level key fields for human inspection.

    ``fault_model`` IS result-affecting, so it is resolved here (explicit
    value, else ``REPRO_FAULT_MODEL``, else the default) and included — but
    only when it resolves to a non-default model, so every historical
    single-bit cache key stays valid.  Resolving inside the fingerprint
    matters: callers (e.g. the experiments cache) compute keys *before*
    ``run_campaign``'s own resolution pass, and the key must reflect the
    model that will actually run.
    """
    from .campaign import resolve_fault_model

    fields = dataclasses.asdict(config)
    for non_semantic in (
        "jobs", "obs_log", "obs_timing", "checkpoint", "resilience",
        "snapshot_every", "triage", "trace", "heartbeat", "batch",
    ):
        fields.pop(non_semantic, None)
    model = resolve_fault_model(fields.pop("fault_model", None))
    if model != "single_bit":
        fields["fault_model"] = model
    if model in ("memory_word", "chaos"):
        # The occupancy-map rework changed what these two models compute
        # (occupied-word draws replace blind probing; chaos additionally
        # gained the memory-hierarchy models in its draw set), so their old
        # cached results are stale.  Single-bit keys are untouched.
        fields["memfaults"] = 1
    return fields


def _result_digest(result_doc: Dict) -> str:
    """sha256 of the canonical JSON encoding of a result document.

    Computed over the parsed document (not raw file bytes) so the digest is
    stable across JSON round-trips: the value written at ``put`` time equals
    the value recomputed from the parsed entry at ``get`` time iff the
    payload is undamaged.
    """
    canonical = json.dumps(result_doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def campaign_key(module, workload: str, scheme: str,
                 config: CampaignConfig) -> str:
    """sha256 key of one campaign (see module docstring for contents)."""
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "ir": module_to_str(module),
        "workload": workload,
        "scheme": scheme,
        "config": _config_fingerprint(config),
        "trials": config.trials,
        "seed": config.seed,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class CampaignCache:
    """Directory of serialized :class:`CampaignResult`s keyed by sha256.

    Entries are stored wrapped as ``{"meta": {...}, "result": {...}}`` so a
    cache hit retains provenance: when it was created, by which cache schema,
    and for how many trials — surfaced as ``cache_hit`` events in the
    observability log instead of the hit being invisible.  Bare legacy
    entries (a plain result document) are still readable.
    """

    def __init__(self, root: Optional[Path] = None,
                 enabled: Optional[bool] = None) -> None:
        self.root = Path(root) if root is not None else cache_dir()
        self.enabled = cache_enabled() if enabled is None else enabled

    def _path(self, key: str) -> Path:
        return self.root / f"campaign-{key}.json"

    def get_entry(self, key: str) -> Optional[Tuple[CampaignResult, Dict]]:
        """Cached ``(result, creation meta)`` for ``key``, or None.

        Absent entries miss.  Corrupt or unreadable entries also miss — but
        loudly: the file is quarantined (moved to ``quarantine/`` inside the
        cache directory), the ``cache.corrupt`` counter is incremented, and
        a ``cache_corrupt`` resilience event is emitted, so the campaign is
        recomputed instead of the damage being silently swallowed.  Legacy
        (unwrapped or checksum-less) entries load with empty meta.
        """
        if not self.enabled:
            return None
        registry = global_registry()
        path = self._path(key)
        if not path.exists():
            registry.counter("cache.miss").inc()
            return None
        with trace_mod.current().span("cache.get", cat="cache", key=key[:16]):
            try:
                with open(path) as fh:
                    data = json.load(fh)
                if not isinstance(data, dict):
                    raise ValueError("cache entry is not a JSON object")
                if "result" in data:
                    integrity = data.get("integrity") or {}
                    stored = integrity.get("sha256")
                    if stored is not None and stored != _result_digest(
                        data["result"]
                    ):
                        raise ValueError("cache entry checksum mismatch")
                    result = CampaignResult.from_dict(data["result"])
                    meta = data.get("meta") or {}
                else:
                    result = CampaignResult.from_dict(data)
                    meta = {}
            except (OSError, ValueError, KeyError, TypeError) as err:
                self._quarantine(key, path, err)
                registry.counter("cache.miss").inc()
                return None
            registry.counter("cache.hit").inc()
            return result, meta

    def _quarantine(self, key: str, path: Path, err: Exception) -> None:
        """Move a corrupt entry aside and account for it."""
        global_registry().counter("cache.corrupt").inc()
        dest = quarantine_file(path)
        ResilienceLogger.from_env().emit(
            "cache_corrupt",
            note=f"corrupt cache entry quarantined: {path.name}",
            key=key,
            path=str(path),
            quarantined_to=dest,
            reason=str(err),
        )

    def get(self, key: str) -> Optional[CampaignResult]:
        """Cached result for ``key``, or None (corrupt entries miss)."""
        entry = self.get_entry(key)
        return entry[0] if entry is not None else None

    def put(self, key: str, result: CampaignResult) -> None:
        """Atomically persist ``result`` under ``key`` (best-effort)."""
        if not self.enabled:
            return
        now = time.time()
        result_doc = result.to_dict()
        document = {
            "meta": {
                "key": key,
                "cache_schema": CACHE_SCHEMA_VERSION,
                "created_unix": round(now, 3),
                "created_iso": time.strftime(
                    "%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)
                ),
                "workload": result.workload,
                "scheme": result.scheme,
                "trials": result.num_trials,
            },
            "result": result_doc,
            "integrity": {"sha256": _result_digest(result_doc)},
        }
        with trace_mod.current().span("cache.put", cat="cache", key=key[:16]):
            try:
                self.root.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(
                    prefix=".campaign-", suffix=".tmp", dir=self.root
                )
                try:
                    with os.fdopen(fd, "w") as fh:
                        json.dump(document, fh)
                    os.replace(tmp, self._path(key))
                    global_registry().counter("cache.write").inc()
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
            except OSError:
                # A read-only or full cache directory must never fail a
                # campaign.
                pass
