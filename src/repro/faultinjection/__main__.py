"""Fault-injection CLI: run one campaign and optionally export JSON.

Usage::

    python -m repro.faultinjection jpegdec dup_valchk --trials 100
    python -m repro.faultinjection kmeans original --json kmeans.json
    python -m repro.faultinjection g721dec dup --seed 7 --swap-inputs
    python -m repro.faultinjection g721dec dup_valchk --trials 1000 --jobs 4
    python -m repro.faultinjection tiff2bw dup --fault-model burst
    python -m repro.faultinjection kmeans dup --fault-model mem_transient
    python -m repro.faultinjection tiff2bw full_dup --chaos --trials 500
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from ..obs.config import resolve_obs_log
from ..obs.metrics import enable_global
from ..transforms.pipeline import SCHEMES
from ..sim.faults import CHAOS_FAULT_MODEL, CONCRETE_FAULT_MODELS
from ..workloads.registry import BENCHMARK_NAMES, get_workload
from .campaign import CampaignConfig, run_campaign
from .parallel import resolve_jobs
from .progress import ProgressPrinter
from .resilience import checkpoint_path_env, default_policy
from .stats import margin_of_error


def add_resilience_arguments(parser: argparse.ArgumentParser,
                             checkpoint_flag: bool = True) -> None:
    """Attach the shared resilience knobs (also used by repro.experiments).

    ``repro.experiments`` passes ``checkpoint_flag=False``: a sweep runs many
    campaigns, so it takes a ``--checkpoint-dir`` of per-campaign files
    instead of one ``--checkpoint`` path.
    """
    group = parser.add_argument_group("resilience")
    if checkpoint_flag:
        group.add_argument("--checkpoint", metavar="PATH", default=None,
                           help="periodically persist completed trials so an "
                                "interrupted campaign resumes from here "
                                "(default: REPRO_CHECKPOINT or off)")
    group.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="N",
                       help="flush the checkpoint every N completed trials "
                            "(default: REPRO_CHECKPOINT_EVERY or 25)")
    group.add_argument("--max-retries", type=int, default=None, metavar="N",
                       help="worker-pool rebuild attempts before falling "
                            "back to serial execution "
                            "(default: REPRO_MAX_RETRIES or 2)")
    group.add_argument("--on-worker-failure", default=None,
                       choices=("retry", "serial", "fail"),
                       help="policy when a worker process dies: rebuild the "
                            "pool with backoff, fall back to in-process "
                            "serial execution immediately, or re-raise "
                            "(default: REPRO_RESILIENCE or retry)")
    group.add_argument("--trial-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="per-trial wall-clock watchdog; a hung trial is "
                            "requeued once, then quarantined "
                            "(default: REPRO_TRIAL_DEADLINE or off)")


def resolve_resilience_args(args: argparse.Namespace):
    """``(policy, checkpoint_path)`` from CLI flags over env defaults."""
    policy = default_policy()
    overrides = {}
    if args.on_worker_failure is not None:
        overrides["on_worker_failure"] = args.on_worker_failure
        overrides["enabled"] = True
    if args.max_retries is not None:
        overrides["max_retries"] = args.max_retries
    if args.trial_deadline is not None:
        overrides["trial_deadline_seconds"] = args.trial_deadline
    if args.checkpoint_every is not None:
        overrides["checkpoint_every"] = args.checkpoint_every
    if overrides:
        policy = dataclasses.replace(policy, **overrides)
    checkpoint = getattr(args, "checkpoint", None) or checkpoint_path_env()
    return policy, checkpoint


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faultinjection",
        description="Run one statistical fault-injection campaign.",
    )
    parser.add_argument("workload", choices=BENCHMARK_NAMES)
    parser.add_argument("scheme", choices=list(SCHEMES))
    parser.add_argument("--trials", type=int, default=100)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for trial execution; 0 means "
                             "one per CPU (default: REPRO_JOBS or 1; results "
                             "are bit-identical for any value)")
    parser.add_argument("--snapshot-every", type=int, default=None,
                        metavar="N",
                        help="golden-run snapshot cadence in cycles for "
                             "shared-prefix trial execution: 0 disables, "
                             "-1 picks automatically from the golden length "
                             "(default: REPRO_SNAPSHOT_EVERY or auto; "
                             "results are bit-identical for any value)")
    parser.add_argument("--batch", type=int, default=None, metavar="N",
                        help="run trials in batched lane-parallel sweeps of "
                             "N lanes over the golden run, peeling diverging "
                             "lanes to the scalar fastpath; 0/1 disables "
                             "(default: REPRO_BATCH or off; requires triage; "
                             "results are bit-identical for any value)")
    parser.add_argument("--fault-model", default=None,
                        choices=list(CONCRETE_FAULT_MODELS) + [CHAOS_FAULT_MODEL],
                        help="fault model to inject (default: "
                             "REPRO_FAULT_MODEL or single_bit, the paper's "
                             "model; mem_*/cache_line/stack_frame target "
                             "the memory hierarchy via golden-run occupancy "
                             "maps; 'chaos' mixes all models per trial)")
    parser.add_argument("--chaos", action="store_true",
                        help="shorthand for --fault-model chaos")
    parser.add_argument("--swap-inputs", action="store_true",
                        help="profile on the test input, inject on the train "
                             "input (the cross-validation configuration)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the live progress line on stderr")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full campaign record as JSON")
    parser.add_argument("--obs-log", metavar="PATH", default=None,
                        help="append a structured JSONL trial event log "
                             "(default: REPRO_OBS or off; inspect with "
                             "'python -m repro.obs report PATH')")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="export hierarchical wall-clock spans as Chrome "
                             "trace-event JSON — load at ui.perfetto.dev or "
                             "summarize with 'python -m repro.obs report "
                             "--trace PATH' (default: REPRO_TRACE or off; "
                             "results are byte-identical either way)")
    parser.add_argument("--heartbeat", metavar="PATH", default=None,
                        help="maintain a live status JSON file while the "
                             "campaign runs — watch with 'python -m "
                             "repro.obs top PATH' (default: REPRO_HEARTBEAT "
                             "or off)")
    add_resilience_arguments(parser)
    args = parser.parse_args(argv)

    policy, checkpoint = resolve_resilience_args(args)
    config = CampaignConfig(
        trials=args.trials, seed=args.seed, swap_train_test=args.swap_inputs,
        jobs=resolve_jobs(args.jobs), obs_log=resolve_obs_log(args.obs_log),
        checkpoint=checkpoint, resilience=policy,
        snapshot_every=args.snapshot_every,
        fault_model=args.fault_model or (CHAOS_FAULT_MODEL if args.chaos else None),
        trace=args.trace, heartbeat=args.heartbeat, batch=args.batch,
    )
    if config.obs_log:
        enable_global()
    on_trial = None
    on_recovery = None
    if not args.quiet:
        on_trial = ProgressPrinter(
            config.trials, label=f"{args.workload}/{args.scheme}"
        )
        on_recovery = on_trial.note
    result = run_campaign(
        get_workload(args.workload), args.scheme, config, on_trial=on_trial,
        on_recovery=on_recovery,
    )
    if on_trial is not None:
        on_trial.finish()

    error = margin_of_error(result.num_trials)
    print(f"{args.workload} [{args.scheme}] — {result.num_trials} trials "
          f"(±{100 * error:.1f}% at 95% confidence)")
    for label, value in (
        ("Masked", result.masked),
        ("SWDetect", result.swdetect),
        ("HWDetect", result.hwdetect),
        ("Failure", result.failure),
        ("USDC", result.usdc),
    ):
        print(f"  {label:9s} {value:7.1%}")
    print(f"  {'coverage':9s} {result.coverage:7.1%}")
    print(f"  SDC view: {result.sdc:.1%} total "
          f"({result.asdc:.1%} acceptable, {result.usdc:.1%} unacceptable)")
    print(f"  false positives in golden run: {result.golden_guard_failures} "
          f"over {result.golden_guard_evaluations} check evaluations")

    if args.json:
        result.save(args.json)
        print(f"  wrote {args.json}")
    if config.obs_log:
        print(f"  trial event log appended to {config.obs_log} "
              f"(python -m repro.obs report {config.obs_log})")
    if args.trace:
        print(f"  span trace exported to {args.trace} "
              f"(python -m repro.obs report --trace {args.trace}, "
              f"or load at ui.perfetto.dev)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
