"""Fault-injection CLI: run one campaign and optionally export JSON.

Usage::

    python -m repro.faultinjection jpegdec dup_valchk --trials 100
    python -m repro.faultinjection kmeans original --json kmeans.json
    python -m repro.faultinjection g721dec dup --seed 7 --swap-inputs
    python -m repro.faultinjection g721dec dup_valchk --trials 1000 --jobs 4
"""

from __future__ import annotations

import argparse
import sys

from ..obs.config import resolve_obs_log
from ..obs.metrics import enable_global
from ..transforms.pipeline import SCHEMES
from ..workloads.registry import BENCHMARK_NAMES, get_workload
from .campaign import CampaignConfig, run_campaign
from .parallel import resolve_jobs
from .progress import ProgressPrinter
from .stats import margin_of_error


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faultinjection",
        description="Run one statistical fault-injection campaign.",
    )
    parser.add_argument("workload", choices=BENCHMARK_NAMES)
    parser.add_argument("scheme", choices=list(SCHEMES))
    parser.add_argument("--trials", type=int, default=100)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for trial execution "
                             "(default: REPRO_JOBS or 1; results are "
                             "bit-identical for any value)")
    parser.add_argument("--swap-inputs", action="store_true",
                        help="profile on the test input, inject on the train "
                             "input (the cross-validation configuration)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the live progress line on stderr")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full campaign record as JSON")
    parser.add_argument("--obs-log", metavar="PATH", default=None,
                        help="append a structured JSONL trial event log "
                             "(default: REPRO_OBS or off; inspect with "
                             "'python -m repro.obs report PATH')")
    args = parser.parse_args(argv)

    config = CampaignConfig(
        trials=args.trials, seed=args.seed, swap_train_test=args.swap_inputs,
        jobs=resolve_jobs(args.jobs), obs_log=resolve_obs_log(args.obs_log),
    )
    if config.obs_log:
        enable_global()
    on_trial = None
    if not args.quiet:
        on_trial = ProgressPrinter(
            config.trials, label=f"{args.workload}/{args.scheme}"
        )
    result = run_campaign(
        get_workload(args.workload), args.scheme, config, on_trial=on_trial
    )
    if on_trial is not None:
        on_trial.finish()

    error = margin_of_error(result.num_trials)
    print(f"{args.workload} [{args.scheme}] — {result.num_trials} trials "
          f"(±{100 * error:.1f}% at 95% confidence)")
    for label, value in (
        ("Masked", result.masked),
        ("SWDetect", result.swdetect),
        ("HWDetect", result.hwdetect),
        ("Failure", result.failure),
        ("USDC", result.usdc),
    ):
        print(f"  {label:9s} {value:7.1%}")
    print(f"  {'coverage':9s} {result.coverage:7.1%}")
    print(f"  SDC view: {result.sdc:.1%} total "
          f"({result.asdc:.1%} acceptable, {result.usdc:.1%} unacceptable)")
    print(f"  false positives in golden run: {result.golden_guard_failures} "
          f"over {result.golden_guard_evaluations} check evaluations")

    if args.json:
        result.save(args.json)
        print(f"  wrote {args.json}")
    if config.obs_log:
        print(f"  trial event log appended to {config.obs_log} "
              f"(python -m repro.obs report {config.obs_log})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
