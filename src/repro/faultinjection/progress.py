"""Rate-limited stderr progress for long campaigns.

Plugs into ``run_campaign(..., on_trial=...)``; prints live trials/sec
(overall plus a rolling EMA), an ETA, and running outcome tallies at most
once per ``min_interval`` seconds so a million-trial sweep stays observable
without drowning the terminal (or a CI log) in per-trial lines.

Tallies are kept in a :class:`~repro.obs.metrics.MetricsRegistry` (a private
one by default, or a shared registry passed by the caller), so progress
accounting and campaign telemetry read from the same instruments.  Call
:meth:`ProgressPrinter.finish` when the campaign completes: it flushes a
final summary line even when the run ended inside the rate-limit interval —
previously the last trials of a campaign could go silently unprinted (e.g.
when the printer's ``total`` overestimated the trials actually executed, as
happens for a partially cached sweep or an aborted run).
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

from ..obs.metrics import MetricsRegistry
from .outcomes import Outcome, TrialResult

__all__ = ["ProgressPrinter"]

#: EMA smoothing for the rolling trials/sec column (matches the heartbeat's)
_EMA_ALPHA = 0.3

_SHORT = {
    Outcome.MASKED: "masked",
    Outcome.SWDETECT: "sw",
    Outcome.HWDETECT: "hw",
    Outcome.FAILURE: "fail",
    Outcome.USDC: "usdc",
}


class ProgressPrinter:
    """``on_trial`` callback printing throughput + outcome tallies."""

    def __init__(
        self,
        total: int,
        label: str = "",
        stream: Optional[TextIO] = None,
        min_interval: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        # The printer always needs live counters, so a disabled (null)
        # registry is replaced by a private enabled one.
        if registry is None or not registry.enabled:
            registry = MetricsRegistry()
        self.registry = registry
        self._done = self.registry.counter("progress.trials")
        self._outcomes = {
            o: self.registry.counter(f"progress.outcome.{o.value}")
            for o in Outcome
        }
        self.done = 0
        self._start = time.perf_counter()
        self._last_print = 0.0
        #: value of ``done`` at the last emitted line (-1: nothing emitted)
        self._emitted_done = -1
        #: rolling trials/sec (EMA over inter-emit windows; None until the
        #: second window exists)
        self.rate_ema: Optional[float] = None
        self._ema_t = self._start
        self._ema_done = 0

    def __call__(self, trial: TrialResult) -> None:
        self.done += 1
        self._done.inc()
        self._outcomes[trial.outcome].inc()
        now = time.perf_counter()
        if (
            now - self._last_print >= self.min_interval
            or self.done == self.total
        ):
            self._last_print = now
            self._emit(now)

    def batch(self, trials) -> None:
        """Account a burst of trials from one batched lane sweep at once.

        Equivalent to calling the printer once per trial, except the rate
        check runs after the whole burst is folded in.  That keeps the EMA
        honest for batched campaigns: per-trial calls would sample the
        instantaneous rate at the burst's *first* trial — a window spanning
        the whole sweep but containing none of its completions — biasing
        the rolling trials/sec (and the ETA) low by up to a full batch.
        """
        for trial in trials:
            self.done += 1
            self._done.inc()
            self._outcomes[trial.outcome].inc()
        if not trials:
            return
        now = time.perf_counter()
        if (
            now - self._last_print >= self.min_interval
            or self.done == self.total
        ):
            self._last_print = now
            self._emit(now)

    def note(self, message: str) -> None:
        """Print a one-off out-of-band line (e.g. a recovery action).

        Bypasses the rate limiter: recovery actions are rare and the user
        should see them when they happen, not at the next progress tick.
        """
        prefix = f"{self.label}: " if self.label else ""
        print(f"  {prefix}{message}", file=self.stream, flush=True)

    def finish(self) -> None:
        """Flush the final summary line if the last trials went unprinted.

        Safe to call unconditionally (idempotent): campaigns that already
        printed their last state — including zero-trial cache hits — emit
        nothing extra.
        """
        if self._emitted_done != self.done and self.done > 0:
            self._emit(time.perf_counter(), final=True)

    def _update_ema(self, now: float) -> None:
        """Fold the window since the last emit into the rolling rate.

        Fed from the registry's ``progress.trials`` counter (the shared
        source of truth for completed-trial accounting, which under a shared
        registry may advance from several printers).
        """
        done = self._done.value
        dt = now - self._ema_t
        if dt <= 0 or done <= self._ema_done:
            return
        instantaneous = (done - self._ema_done) / dt
        self.rate_ema = (
            instantaneous if self.rate_ema is None
            else _EMA_ALPHA * instantaneous + (1 - _EMA_ALPHA) * self.rate_ema
        )
        self._ema_t = now
        self._ema_done = done

    def _eta_seconds(self) -> Optional[float]:
        rate = self.rate_ema
        if rate is None or rate <= 0:
            return None
        remaining = self.total - self.done
        if remaining <= 0:
            return None
        return remaining / rate

    @staticmethod
    def _fmt_eta(seconds: Optional[float]) -> str:
        if seconds is None:
            return ""
        seconds = int(seconds)
        if seconds >= 3600:
            return (f" eta {seconds // 3600}:"
                    f"{seconds % 3600 // 60:02d}:{seconds % 60:02d}")
        return f" eta {seconds // 60:02d}:{seconds % 60:02d}"

    def _emit(self, now: float, final: bool = False) -> None:
        elapsed = max(now - self._start, 1e-9)
        rate = self.done / elapsed
        self._update_ema(now)
        ema = f" ({self.rate_ema:.1f} ema)" if self.rate_ema is not None else ""
        eta = "" if final else self._fmt_eta(self._eta_seconds())
        tallies = " ".join(
            f"{_SHORT[o]}={counter.value}"
            for o, counter in self._outcomes.items()
            if counter.value
        )
        prefix = f"{self.label}: " if self.label else ""
        suffix = " (done)" if final else ""
        print(
            f"  {prefix}[{self.done}/{self.total}] "
            f"{rate:.1f} trials/s{ema}{eta} {tallies}".rstrip() + suffix,
            file=self.stream,
            flush=True,
        )
        self._emitted_done = self.done

    @property
    def counts(self):
        """Outcome tally view (kept for callers that read the counters)."""
        return {o: counter.value for o, counter in self._outcomes.items()}
