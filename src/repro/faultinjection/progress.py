"""Rate-limited stderr progress for long campaigns.

Plugs into ``run_campaign(..., on_trial=...)``; prints live trials/sec and
running outcome tallies at most once per ``min_interval`` seconds so a
million-trial sweep stays observable without drowning the terminal (or a CI
log) in per-trial lines.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

from .outcomes import Outcome, TrialResult

__all__ = ["ProgressPrinter"]

_SHORT = {
    Outcome.MASKED: "masked",
    Outcome.SWDETECT: "sw",
    Outcome.HWDETECT: "hw",
    Outcome.FAILURE: "fail",
    Outcome.USDC: "usdc",
}


class ProgressPrinter:
    """``on_trial`` callback printing throughput + outcome tallies."""

    def __init__(
        self,
        total: int,
        label: str = "",
        stream: Optional[TextIO] = None,
        min_interval: float = 1.0,
    ) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.done = 0
        self.counts = {o: 0 for o in Outcome}
        self._start = time.perf_counter()
        self._last_print = 0.0

    def __call__(self, trial: TrialResult) -> None:
        self.done += 1
        self.counts[trial.outcome] += 1
        now = time.perf_counter()
        if (
            now - self._last_print >= self.min_interval
            or self.done == self.total
        ):
            self._last_print = now
            self._emit(now)

    def _emit(self, now: float) -> None:
        elapsed = max(now - self._start, 1e-9)
        rate = self.done / elapsed
        tallies = " ".join(
            f"{_SHORT[o]}={self.counts[o]}" for o in Outcome if self.counts[o]
        )
        prefix = f"{self.label}: " if self.label else ""
        print(
            f"  {prefix}[{self.done}/{self.total}] "
            f"{rate:.1f} trials/s {tallies}".rstrip(),
            file=self.stream,
            flush=True,
        )
