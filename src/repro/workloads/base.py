"""Workload abstraction: one paper benchmark = one SCL kernel + inputs + metric.

A workload owns:

* its SCL source (the benchmark kernel, compiled per variant so transforms
  never contaminate each other);
* train and test input bindings (different data, as in Table I: profiling and
  fault-injection runs use different inputs);
* the fidelity metric + threshold that decides ASDC vs. USDC.

Buffers are fixed-size globals; workloads whose input length varies between
train and test carry the live length in a parameter global (mirroring how the
paper's benchmarks size themselves from the input file).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..fidelity.metrics import FidelityResult, evaluate
from ..ir.module import Module
from ..frontend.compiler import compile_source
from ..sim.config import SimConfig
from ..sim.events import RunResult
from ..sim.interpreter import Interpreter


class Workload:
    """Base class; subclasses set the class attributes and input methods."""

    #: benchmark name as in paper Table I (e.g. 'jpegdec')
    name: str = ""
    #: originating suite in the paper (mediabench, mibench, SDVBS, ...)
    suite: str = ""
    #: domain category: image / audio / video / vision / ml
    category: str = ""
    description: str = ""
    #: fidelity metric key ('psnr' | 'segsnr' | 'class_error' | 'matrix_mismatch')
    fidelity_metric: str = "psnr"
    #: acceptability threshold for the metric (Table I column 4)
    fidelity_threshold: float = 30.0
    #: SCL source text of the kernel
    source: str = ""
    entry: str = "main"
    #: human-readable train/test input description (Table I column 3)
    train_label: str = ""
    test_label: str = ""

    # -- inputs (overridden by subclasses) --------------------------------------

    def train_inputs(self) -> Dict[str, Sequence]:
        """Input binding used for value profiling (the 'train' file)."""
        raise NotImplementedError

    def test_inputs(self) -> Dict[str, Sequence]:
        """Input binding used for fault injection (the 'test' file)."""
        raise NotImplementedError

    # -- compilation and execution ------------------------------------------------

    def build_module(self) -> Module:
        """Compile a fresh module (deterministic; one per protection variant)."""
        if not self.source:
            raise ValueError(f"workload {self.name!r} has no source")
        return compile_source(self.source, self.name)

    def output_names(self, module: Module) -> List[str]:
        names = [g.name for g in module.output_globals()]
        if not names:
            raise ValueError(f"workload {self.name!r} declares no output globals")
        return names

    def run(
        self,
        module: Module,
        inputs: Dict[str, Sequence],
        interpreter: Optional[Interpreter] = None,
        config: Optional[SimConfig] = None,
        **run_kwargs,
    ) -> Tuple[Dict[str, np.ndarray], RunResult]:
        """Execute the module on ``inputs``; returns (outputs, run result)."""
        interp = interpreter or Interpreter(module, config=config)
        result = interp.run(entry=self.entry, inputs=inputs, **run_kwargs)
        outputs = {
            name: np.asarray(interp.read_global(name))
            for name in self.output_names(module)
        }
        return outputs, result

    # -- fidelity ---------------------------------------------------------------------

    def fidelity(
        self, golden: Dict[str, np.ndarray], observed: Dict[str, np.ndarray]
    ) -> FidelityResult:
        """Score a faulty run's outputs against the golden outputs."""
        ref = np.concatenate([np.ravel(golden[k]) for k in sorted(golden)])
        obs = np.concatenate([np.ravel(observed[k]) for k in sorted(observed)])
        return evaluate(self.fidelity_metric, ref, obs, self.fidelity_threshold)

    def __repr__(self) -> str:
        return f"<Workload {self.name} ({self.category}, {self.fidelity_metric})>"
