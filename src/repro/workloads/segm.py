"""segm: intensity-based image segmentation (paper Table I, SDVBS).

Iterative centroid segmentation: K intensity centroids are refined over the
image (Lloyd iterations with integer centroid accumulators — sum and count
per segment are loop-carried state), then a 3x3 majority filter smooths the
label matrix, as segmentation pipelines do.  The output is the segment label
matrix; fidelity is the fraction of mismatching labels (<= 10%).
"""

from __future__ import annotations

from typing import Dict, Sequence

from .base import Workload
from .signals import synthetic_image

NUM_SEGMENTS = 3
ITERATIONS = 4
TRAIN_SIZE = 22
TEST_SIZE = 12
MAX_PIXELS = TRAIN_SIZE * TRAIN_SIZE

SEGM_SOURCE = f"""
// segm: iterative intensity clustering + majority smoothing
input int image[{MAX_PIXELS}];
input int params[2];            // width, height
output int labels[{MAX_PIXELS}];

int centroid[{NUM_SEGMENTS}];
int seg_sum[{NUM_SEGMENTS}];
int seg_cnt[{NUM_SEGMENTS}];
int rawlab[{MAX_PIXELS}];
const int K = {NUM_SEGMENTS};

void main() {{
    int width = params[0];
    int height = params[1];
    int npix = width * height;

    // spread initial centroids across the intensity range
    for (int k = 0; k < K; k++) {{
        centroid[k] = 255 * (2 * k + 1) / (2 * K);
    }}

    for (int it = 0; it < {ITERATIONS}; it++) {{
        for (int k = 0; k < K; k++) {{
            seg_sum[k] = 0;
            seg_cnt[k] = 0;
        }}
        for (int i = 0; i < npix; i++) {{
            int v = image[i];
            int best = 0;
            int bestd = abs(v - centroid[0]);
            for (int k = 1; k < K; k++) {{
                int d = abs(v - centroid[k]);
                if (d < bestd) {{
                    bestd = d;
                    best = k;
                }}
            }}
            rawlab[i] = best;
            seg_sum[best] += v;
            seg_cnt[best] += 1;
        }}
        for (int k = 0; k < K; k++) {{
            if (seg_cnt[k] > 0) {{
                centroid[k] = seg_sum[k] / seg_cnt[k];
            }}
        }}
    }}

    // 3x3 majority smoothing of the label matrix
    for (int y = 0; y < height; y++) {{
        for (int x = 0; x < width; x++) {{
            int votes0 = 0;
            int votes1 = 0;
            int votes2 = 0;
            for (int dy = -1; dy <= 1; dy++) {{
                for (int dx = -1; dx <= 1; dx++) {{
                    int ny = y + dy;
                    int nx = x + dx;
                    if (ny < 0) {{ ny = 0; }}
                    if (nx < 0) {{ nx = 0; }}
                    if (ny >= height) {{ ny = height - 1; }}
                    if (nx >= width) {{ nx = width - 1; }}
                    int l = rawlab[ny * width + nx];
                    if (l == 0) {{ votes0++; }}
                    if (l == 1) {{ votes1++; }}
                    if (l == 2) {{ votes2++; }}
                }}
            }}
            int winner = 0;
            int wv = votes0;
            if (votes1 > wv) {{ winner = 1; wv = votes1; }}
            if (votes2 > wv) {{ winner = 2; }}
            labels[y * width + x] = winner;
        }}
    }}
}}
"""


class SegmWorkload(Workload):
    """Image segmentation (computer vision, segment mismatch <= 10%)."""

    name = "segm"
    suite = "SDVBS"
    category = "vision"
    description = "Image segmentation (Computer vision)"
    fidelity_metric = "matrix_mismatch"
    fidelity_threshold = 0.10
    source = SEGM_SOURCE
    train_label = f"train {TRAIN_SIZE}x{TRAIN_SIZE} image"
    test_label = f"test {TEST_SIZE}x{TEST_SIZE} image"

    def _inputs(self, size: int, seed: int) -> Dict[str, Sequence]:
        img = synthetic_image(size, size, seed=seed)
        return {"image": [int(v) for v in img.reshape(-1)], "params": [size, size]}

    def train_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TRAIN_SIZE, seed=111)

    def test_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TEST_SIZE, seed=123)
