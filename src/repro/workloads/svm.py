"""svm: kernel SVM classification (paper Table I, svmlight).

The classification phase of a trained RBF-kernel SVM: each test example is
scored as ``sum_i alpha_i * exp(-||sv_i - x||^2 / (2 sigma^2))`` over the
support vectors and labelled by the score's sign.  The support set and
coefficients are produced offline by :func:`train_support_vectors` (a Parzen/
kernel-mean classifier — a valid SVM dual solution shape), standing in for
svmlight's model file.

The per-example score accumulation across support vectors is loop-carried
state; the kernel evaluations (squared distance, ``exp``) are soft.
Fidelity is classification error vs. the golden run (<= 10%).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .base import Workload
from .signals import two_class_data

DIMS = 6
NUM_SV = 20
TRAIN_EXAMPLES = 48
TEST_EXAMPLES = 32
MAX_EXAMPLES = TRAIN_EXAMPLES
#: RBF width in (scaled-by-100) feature units
SIGMA = 180.0

SVM_SOURCE = f"""
// svm: RBF-kernel SVM classification
input int testx[{MAX_EXAMPLES * DIMS}];
input int svx[{NUM_SV * DIMS}];
input int alpha[{NUM_SV}];       // alpha_i * 1000 (fixed point)
input int params[1];             // number of test examples
output int labels[{MAX_EXAMPLES}];

const int D = {DIMS};
const int NSV = {NUM_SV};
const float GAMMA = {1.0 / (2.0 * SIGMA * SIGMA)};

void main() {{
    int n = params[0];
    for (int i = 0; i < n; i++) {{
        float score = 0.0;
        for (int s = 0; s < NSV; s++) {{
            float dist2 = 0.0;
            for (int d = 0; d < D; d++) {{
                float diff = (float)(testx[i * D + d] - svx[s * D + d]);
                dist2 += diff * diff;
            }}
            float kv = exp(0.0 - GAMMA * dist2);
            score += (float)alpha[s] * 0.001 * kv;
        }}
        if (score >= 0.0) {{
            labels[i] = 1;
        }} else {{
            labels[i] = -1;
        }}
    }}
}}
"""


def train_support_vectors(seed: int = 150) -> Tuple[List[int], List[int]]:
    """Build the support set: NUM_SV labelled points with alpha = ±1/NUM_SV.

    This is the kernel-mean (Parzen) classifier — the simplest valid setting
    of an RBF-SVM dual — trained offline, exactly as svmlight's model file is
    produced offline in the paper's setup.
    """
    points, labels = two_class_data(NUM_SV, DIMS, seed=seed)
    alpha = [int(1000 * (1.0 if l > 0 else -1.0) / NUM_SV) for l in labels]
    return [int(v) for v in points.reshape(-1)], alpha


class SvmWorkload(Workload):
    """Support vector machine (machine learning, classification error <= 10%)."""

    name = "svm"
    suite = "svmlight"
    category = "ml"
    description = "Support vector machine (Machine learning)"
    fidelity_metric = "class_error"
    fidelity_threshold = 0.10
    source = SVM_SOURCE
    train_label = f"train {TRAIN_EXAMPLES} examples"
    test_label = f"test {TEST_EXAMPLES} examples"

    def _inputs(self, n: int, seed: int) -> Dict[str, Sequence]:
        svx, alpha = train_support_vectors()
        points, _ = two_class_data(n, DIMS, seed=seed)
        return {
            "testx": [int(v) for v in points.reshape(-1)],
            "svx": svx,
            "alpha": alpha,
            "params": [n],
        }

    def train_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TRAIN_EXAMPLES, seed=171)

    def test_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TEST_EXAMPLES, seed=183)
