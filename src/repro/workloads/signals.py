"""Deterministic synthetic input generators.

The paper profiles and tests each benchmark on real media files (Table I).
Offline we substitute seeded synthetic signals with the same character:
structured images (gradients + texture + blobs), multi-tone audio with an
envelope, video with motion, and Gaussian-cluster ML data.  Train (profiling)
and test (fault-injection) inputs use different seeds and sizes, mirroring the
paper's separate train/test files.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np


def synthetic_image(width: int, height: int, seed: int = 0) -> np.ndarray:
    """A structured 8-bit grayscale image: gradient + texture + blobs.

    Returns an (height, width) uint8-range int array (values 0..255).
    """
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:height, 0:width].astype(np.float64)
    img = 96.0 + 60.0 * (x / max(width - 1, 1)) + 40.0 * (y / max(height - 1, 1))
    img += 25.0 * np.sin(2.0 * math.pi * x / 7.5) * np.cos(2.0 * math.pi * y / 9.0)
    for _ in range(3):
        cx = rng.uniform(0, width)
        cy = rng.uniform(0, height)
        radius = rng.uniform(2.0, max(width, height) / 3.0)
        amp = rng.uniform(-50.0, 50.0)
        img += amp * np.exp(-(((x - cx) ** 2 + (y - cy) ** 2) / (2 * radius * radius)))
    img += rng.normal(0.0, 3.0, size=img.shape)
    return np.clip(np.round(img), 0, 255).astype(np.int64)


def synthetic_rgb_image(width: int, height: int, seed: int = 0) -> np.ndarray:
    """An (height, width, 3) RGB image built from three correlated planes."""
    base = synthetic_image(width, height, seed)
    r = np.clip(base + synthetic_image(width, height, seed + 1) // 4 - 32, 0, 255)
    g = np.clip(base, 0, 255)
    b = np.clip(255 - base // 2 + synthetic_image(width, height, seed + 2) // 8, 0, 255)
    return np.stack([r, g, b], axis=-1).astype(np.int64)


def synthetic_audio(num_samples: int, seed: int = 0) -> np.ndarray:
    """16-bit-range audio: a chord of sines with vibrato under an envelope."""
    rng = np.random.default_rng(seed)
    t = np.arange(num_samples, dtype=np.float64)
    signal = np.zeros(num_samples)
    for _ in range(4):
        freq = rng.uniform(0.01, 0.12)
        phase = rng.uniform(0, 2 * math.pi)
        amp = rng.uniform(0.1, 0.3)
        vibrato = 1.0 + 0.05 * np.sin(2 * math.pi * t * rng.uniform(0.001, 0.004))
        signal += amp * np.sin(2 * math.pi * freq * t * vibrato + phase)
    envelope = 0.4 + 0.6 * np.abs(np.sin(2 * math.pi * t / max(num_samples, 1)))
    signal = signal * envelope * 12000.0
    signal += rng.normal(0.0, 40.0, size=num_samples)
    return np.clip(np.round(signal), -32768, 32767).astype(np.int64)


def synthetic_video(
    width: int, height: int, frames: int, seed: int = 0
) -> np.ndarray:
    """(frames, height, width) video: a textured background with moving blobs."""
    rng = np.random.default_rng(seed)
    background = synthetic_image(width, height, seed).astype(np.float64)
    y, x = np.mgrid[0:height, 0:width].astype(np.float64)
    blobs = [
        (rng.uniform(0, width), rng.uniform(0, height),
         rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5),
         rng.uniform(2.0, 5.0), rng.uniform(30.0, 70.0))
        for _ in range(2)
    ]
    out = np.empty((frames, height, width), dtype=np.int64)
    for f in range(frames):
        frame = background.copy()
        for (cx, cy, vx, vy, radius, amp) in blobs:
            px = (cx + vx * f) % width
            py = (cy + vy * f) % height
            frame += amp * np.exp(-(((x - px) ** 2 + (y - py) ** 2) / (2 * radius * radius)))
        out[f] = np.clip(np.round(frame), 0, 255).astype(np.int64)
    return out


def gaussian_clusters(
    num_points: int, num_clusters: int, num_dims: int, seed: int = 0, spread: float = 0.9
) -> Tuple[np.ndarray, np.ndarray]:
    """Labelled points drawn from well-separated Gaussians (scaled ×100 ints).

    Returns (points[num_points, num_dims] int, labels[num_points] int).
    """
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-10.0, 10.0, size=(num_clusters, num_dims))
    points = np.empty((num_points, num_dims))
    labels = np.empty(num_points, dtype=np.int64)
    for i in range(num_points):
        c = i % num_clusters
        labels[i] = c
        points[i] = centers[c] + rng.normal(0.0, spread, size=num_dims)
    return np.round(points * 100.0).astype(np.int64), labels


def two_class_data(
    num_points: int, num_dims: int, seed: int = 0, margin: float = 1.2
) -> Tuple[np.ndarray, np.ndarray]:
    """Linearly separable-ish two-class data (labels ±1, features ×100 ints)."""
    rng = np.random.default_rng(seed)
    normal = rng.normal(0.0, 1.0, size=num_dims)
    normal /= np.linalg.norm(normal)
    points = np.empty((num_points, num_dims))
    labels = np.empty(num_points, dtype=np.int64)
    for i in range(num_points):
        label = 1 if i % 2 == 0 else -1
        base = rng.normal(0.0, 1.5, size=num_dims)
        proj = float(base @ normal)
        base += normal * (label * (margin + abs(rng.normal(0.0, 0.8))) - proj)
        points[i] = base
        labels[i] = label
    return np.round(points * 100.0).astype(np.int64), labels
