"""kmeans: Lloyd's clustering (paper Table I, in-house ML benchmark).

Fixed-iteration k-means over integer feature vectors: assignment by squared
Euclidean distance, centroid update from per-cluster accumulators.  The
centroid coordinates and accumulator sums are loop-carried state across
iterations; the distance arithmetic is soft.  The output is the assignment
label per point; fidelity is classification error vs. the golden run
(<= 10%).
"""

from __future__ import annotations

from typing import Dict, Sequence

from .base import Workload
from .signals import gaussian_clusters

K = 4
DIMS = 4
ITERATIONS = 5
TRAIN_POINTS = 64
TEST_POINTS = 40
MAX_POINTS = TRAIN_POINTS

KMEANS_SOURCE = f"""
// kmeans: Lloyd's algorithm, fixed iteration count
input int points[{MAX_POINTS * DIMS}];
input int params[1];            // number of points
output int labels[{MAX_POINTS}];

int centroid[{K * DIMS}];
int csum[{K * DIMS}];
int ccnt[{K}];
const int KC = {K};
const int D = {DIMS};

void main() {{
    int n = params[0];
    // initialise centroids from the first K points
    for (int k = 0; k < KC; k++) {{
        for (int d = 0; d < D; d++) {{
            centroid[k * D + d] = points[k * D + d];
        }}
    }}
    for (int it = 0; it < {ITERATIONS}; it++) {{
        for (int k = 0; k < KC; k++) {{
            ccnt[k] = 0;
            for (int d = 0; d < D; d++) {{ csum[k * D + d] = 0; }}
        }}
        for (int i = 0; i < n; i++) {{
            int best = 0;
            int bestd = 1 << 30;
            for (int k = 0; k < KC; k++) {{
                int dist = 0;
                for (int d = 0; d < D; d++) {{
                    int diff = points[i * D + d] - centroid[k * D + d];
                    dist += diff * diff;
                }}
                if (dist < bestd) {{
                    bestd = dist;
                    best = k;
                }}
            }}
            labels[i] = best;
            ccnt[best] += 1;
            for (int d = 0; d < D; d++) {{
                csum[best * D + d] += points[i * D + d];
            }}
        }}
        for (int k = 0; k < KC; k++) {{
            if (ccnt[k] > 0) {{
                for (int d = 0; d < D; d++) {{
                    centroid[k * D + d] = csum[k * D + d] / ccnt[k];
                }}
            }}
        }}
    }}
}}
"""


class KmeansWorkload(Workload):
    """Clustering algorithm (machine learning, classification error <= 10%)."""

    name = "kmeans"
    suite = "in-house"
    category = "ml"
    description = "Clustering algorithm (Machine learning)"
    fidelity_metric = "class_error"
    fidelity_threshold = 0.10
    source = KMEANS_SOURCE
    train_label = f"train {TRAIN_POINTS}x{DIMS} samples"
    test_label = f"test {TEST_POINTS}x{DIMS} samples"

    def _inputs(self, n: int, seed: int) -> Dict[str, Sequence]:
        points, _ = gaussian_clusters(n, K, DIMS, seed=seed)
        # scale down so squared distances stay far from i32 overflow
        points = points // 4
        return {"points": [int(v) for v in points.reshape(-1)], "params": [n]}

    def train_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TRAIN_POINTS, seed=151)

    def test_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TEST_POINTS, seed=163)
