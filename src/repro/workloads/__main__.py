"""Workload CLI: run any Table I benchmark under any protection scheme.

Usage::

    python -m repro.workloads list
    python -m repro.workloads run jpegdec --scheme dup_valchk
    python -m repro.workloads run kmeans --scheme dup --inject 5000 --bit 12
    python -m repro.workloads ir g721enc --scheme dup          # dump the IR

``run`` executes the golden run (reporting instructions, estimated cycles,
check statistics) and optionally one fault injection with outcome
classification.
"""

from __future__ import annotations

import argparse
import sys

from ..faultinjection.campaign import CampaignConfig, prepare, run_trial
from ..ir import module_to_str
from ..sim.interpreter import Interpreter
from ..sim.timing import TimingModel
from .registry import BENCHMARK_NAMES, get_workload, table1_rows


def _cmd_list(_args) -> int:
    for row in table1_rows():
        print(f"{row['benchmark']:26s} {row['description']:44s} {row['fidelity']}")
    return 0


def _cmd_run(args) -> int:
    config = CampaignConfig(trials=1, seed=args.seed)
    prepared = prepare(get_workload(args.name), args.scheme, config)
    stats = prepared.scheme_stats

    timing = TimingModel(config.sim)
    interp = Interpreter(prepared.module, config=config.sim,
                         guard_mode="count", timing=timing)
    prepared.workload.run(prepared.module, prepared.inputs, interpreter=interp)

    print(f"{args.name} [{args.scheme}]")
    print(f"  static IR instructions : {stats.instructions_after} "
          f"(was {stats.instructions_before})")
    print(f"  state variables        : {stats.num_state_variables}")
    print(f"  duplicated instructions: {stats.num_duplicated}")
    print(f"  value checks           : {stats.num_value_checks} {stats.checks_by_kind}")
    print(f"  golden instructions    : {prepared.golden_instructions}")
    print(f"  estimated cycles       : {timing.cycles:.0f}")
    print(f"  check evaluations      : {prepared.golden_guard_evaluations} "
          f"({prepared.golden_guard_failures} false positives)")

    if args.inject is not None:
        trial = run_trial(prepared, args.inject, args.bit, args.seed, config)
        print(f"  injection @ cycle {args.inject}, bit {args.bit}: "
              f"{trial.outcome.value}"
              + (f" (fidelity {trial.fidelity_score:.2f})"
                 if trial.fidelity_score is not None else ""))
    return 0


def _cmd_ir(args) -> int:
    config = CampaignConfig(trials=1)
    prepared = prepare(get_workload(args.name), args.scheme, config)
    print(module_to_str(prepared.module))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.workloads")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the 13 benchmarks (Table I)")

    run_p = sub.add_parser("run", help="run one benchmark under a scheme")
    run_p.add_argument("name", choices=BENCHMARK_NAMES)
    run_p.add_argument("--scheme", default="dup_valchk",
                       choices=["original", "dup", "dup_valchk", "full_dup"])
    run_p.add_argument("--inject", type=int, default=None, metavar="CYCLE",
                       help="also inject one bit flip at this dynamic cycle")
    run_p.add_argument("--bit", type=int, default=0)
    run_p.add_argument("--seed", type=int, default=2014)

    ir_p = sub.add_parser("ir", help="dump a benchmark's (protected) IR")
    ir_p.add_argument("name", choices=BENCHMARK_NAMES)
    ir_p.add_argument("--scheme", default="original",
                      choices=["original", "dup", "dup_valchk", "full_dup"])

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_ir(args)


if __name__ == "__main__":
    sys.exit(main())
