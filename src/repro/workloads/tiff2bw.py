"""tiff2bw: colour-to-grayscale conversion with contrast stretch (mibench).

Two passes over an RGB image: the first computes the ITU-R 601 luminance of
every pixel while tracking the running min/max (classic state variables —
corrupting the running max rescales the whole output); the second stretches
the luminance range to full 8-bit contrast.
"""

from __future__ import annotations

from typing import Dict, Sequence

from .base import Workload
from .signals import synthetic_rgb_image

TRAIN_SIZE = 26
TEST_SIZE = 18
MAX_PIXELS = TRAIN_SIZE * TRAIN_SIZE

TIFF2BW_SOURCE = f"""
// tiff2bw: luminance conversion + contrast stretch
input int rgb[{MAX_PIXELS * 3}];
input int params[2];        // width, height
output int bw[{MAX_PIXELS}];

int lum[{MAX_PIXELS}];

void main() {{
    int width = params[0];
    int height = params[1];
    int npix = width * height;
    int lo = 255;
    int hi = 0;
    for (int i = 0; i < npix; i++) {{
        int r = rgb[i * 3];
        int g = rgb[i * 3 + 1];
        int b = rgb[i * 3 + 2];
        int y = (r * 77 + g * 151 + b * 28) >> 8;
        lum[i] = y;
        if (y < lo) {{ lo = y; }}
        if (y > hi) {{ hi = y; }}
    }}
    int span = hi - lo;
    if (span < 1) {{ span = 1; }}
    for (int i = 0; i < npix; i++) {{
        int v = ((lum[i] - lo) * 255) / span;
        if (v < 0) {{ v = 0; }}
        if (v > 255) {{ v = 255; }}
        bw[i] = v;
    }}
}}
"""


class Tiff2BwWorkload(Workload):
    """TIFF-to-BW converter (image category, PSNR >= 30 dB)."""

    name = "tiff2bw"
    suite = "mibench"
    category = "image"
    description = "A tiff format to BW converter (image)"
    fidelity_metric = "psnr"
    fidelity_threshold = 30.0
    source = TIFF2BW_SOURCE
    train_label = f"train {TRAIN_SIZE}x{TRAIN_SIZE} image"
    test_label = f"test {TEST_SIZE}x{TEST_SIZE} image"

    def _inputs(self, size: int, seed: int) -> Dict[str, Sequence]:
        rgb = synthetic_rgb_image(size, size, seed=seed)
        return {
            "rgb": [int(v) for v in rgb.reshape(-1)],
            "params": [size, size],
        }

    def train_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TRAIN_SIZE, seed=31)

    def test_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TEST_SIZE, seed=47)
