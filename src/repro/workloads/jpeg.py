"""jpegenc / jpegdec: DCT-based image codec (paper Table I, mediabench).

The kernels implement the JPEG luminance path at reduced scale: 8x8 block
DCT-II with the standard luminance quantisation matrix, zigzag scan, and
run-length coding of the coefficient stream.  The encoder turns an image into
an RLE stream; the decoder inverts the pipeline.  Both exhibit the paper's
soft-computation structure: long float dot-product chains whose values live
in compact ranges (value-check amenable), plus loop counters, stream
positions, and RLE run counts whose corruption is catastrophic (state
variables).

The decoder's input stream is produced by :func:`reference_encode` — the
NumPy twin of the encoder kernel — standing in for the paper's pre-encoded
test files.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .base import Workload
from .signals import synthetic_image

#: standard JPEG luminance quantisation matrix
QUANT_TABLE = [
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
]

#: zigzag scan order of an 8x8 block
ZIGZAG = [
    0, 1, 8, 16, 9, 2, 3, 10,
    17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63,
]

#: end-of-block marker in the RLE stream
EOB = -999

TRAIN_SIZE = 24   # 24x24 = 9 blocks (the 'train image')
TEST_SIZE = 16    # 16x16 = 4 blocks (the 'test image')
MAX_PIXELS = TRAIN_SIZE * TRAIN_SIZE
MAX_STREAM = MAX_PIXELS * 2 + 9 * 2 + 16


def _int_list(values: Sequence[int]) -> str:
    return ", ".join(str(int(v)) for v in values)


_COMMON_TABLES = f"""
int zz[64] = {{ {_int_list(ZIGZAG)} }};
int qtab[64] = {{ {_int_list(QUANT_TABLE)} }};
const float PI = 3.141592653589793;
float ctab[64];

void init_ctab() {{
    for (int u = 0; u < 8; u++) {{
        float su = 0.3535533905932738;
        if (u > 0) {{ su = 0.5; }}
        for (int x = 0; x < 8; x++) {{
            ctab[u * 8 + x] = su * cos((2.0 * (float)x + 1.0) * (float)u * PI / 16.0);
        }}
    }}
}}
"""

JPEGENC_SOURCE = f"""
// jpegenc: 8x8 DCT + quantise + zigzag + RLE
input int image[{MAX_PIXELS}];
input int params[2];            // width, height (multiples of 8)
output int stream[{MAX_STREAM}];
output int stream_len[1];

float blk[64];
float tmpb[64];
int coef[64];
{_COMMON_TABLES}

void main() {{
    int width = params[0];
    int height = params[1];
    init_ctab();
    int pos = 0;
    for (int by = 0; by < height; by += 8) {{
        for (int bx = 0; bx < width; bx += 8) {{
            for (int y = 0; y < 8; y++) {{
                for (int x = 0; x < 8; x++) {{
                    blk[y * 8 + x] = (float)(image[(by + y) * width + bx + x] - 128);
                }}
            }}
            // row DCT
            for (int y = 0; y < 8; y++) {{
                for (int u = 0; u < 8; u++) {{
                    float s = 0.0;
                    for (int x = 0; x < 8; x++) {{
                        s += blk[y * 8 + x] * ctab[u * 8 + x];
                    }}
                    tmpb[y * 8 + u] = s;
                }}
            }}
            // column DCT + quantise
            for (int v = 0; v < 8; v++) {{
                for (int u = 0; u < 8; u++) {{
                    float s = 0.0;
                    for (int y = 0; y < 8; y++) {{
                        s += tmpb[y * 8 + u] * ctab[v * 8 + y];
                    }}
                    float q = s / (float)qtab[v * 8 + u];
                    coef[v * 8 + u] = (int)(q + (q < 0.0 ? -0.5 : 0.5));
                }}
            }}
            // zigzag + run-length encode
            int run = 0;
            for (int i = 0; i < 64; i++) {{
                int c = coef[zz[i]];
                if (c == 0) {{
                    run++;
                }} else {{
                    stream[pos] = run;
                    stream[pos + 1] = c;
                    pos += 2;
                    run = 0;
                }}
            }}
            stream[pos] = {EOB};
            stream[pos + 1] = run;
            pos += 2;
        }}
    }}
    stream_len[0] = pos;
}}
"""

JPEGDEC_SOURCE = f"""
// jpegdec: RLE decode + dezigzag + dequantise + IDCT
input int stream[{MAX_STREAM}];
input int params[3];            // width, height, stream length
output int image[{MAX_PIXELS}];

float coefs[64];
float tmpb[64];
{_COMMON_TABLES}

void main() {{
    int width = params[0];
    int height = params[1];
    int slen = params[2];
    init_ctab();
    int pos = 0;
    for (int by = 0; by < height; by += 8) {{
        for (int bx = 0; bx < width; bx += 8) {{
            for (int i = 0; i < 64; i++) {{ coefs[i] = 0.0; }}
            // RLE decode one block (until the EOB marker)
            int zi = 0;
            while (pos < slen) {{
                int run = stream[pos];
                int val = stream[pos + 1];
                pos += 2;
                if (run == {EOB}) {{
                    break;
                }}
                zi += run;
                if (zi < 64) {{
                    coefs[zz[zi]] = (float)(val * qtab[zz[zi]]);
                }}
                zi++;
            }}
            // column IDCT
            for (int y = 0; y < 8; y++) {{
                for (int u = 0; u < 8; u++) {{
                    float s = 0.0;
                    for (int v = 0; v < 8; v++) {{
                        s += coefs[v * 8 + u] * ctab[v * 8 + y];
                    }}
                    tmpb[y * 8 + u] = s;
                }}
            }}
            // row IDCT + level shift + clamp
            for (int y = 0; y < 8; y++) {{
                for (int x = 0; x < 8; x++) {{
                    float s = 0.0;
                    for (int u = 0; u < 8; u++) {{
                        s += tmpb[y * 8 + u] * ctab[u * 8 + x];
                    }}
                    int p = (int)(s + (s < 0.0 ? -0.5 : 0.5)) + 128;
                    if (p < 0) {{ p = 0; }}
                    if (p > 255) {{ p = 255; }}
                    image[(by + y) * width + bx + x] = p;
                }}
            }}
        }}
    }}
}}
"""


def _dct_matrix() -> np.ndarray:
    u = np.arange(8).reshape(8, 1)
    x = np.arange(8).reshape(1, 8)
    m = 0.5 * np.cos((2 * x + 1) * u * np.pi / 16.0)
    m[0, :] = 0.3535533905932738
    return m


def reference_encode(image: np.ndarray) -> List[int]:
    """NumPy twin of the jpegenc kernel; produces the jpegdec input stream."""
    height, width = image.shape
    m = _dct_matrix()
    q = np.array(QUANT_TABLE, dtype=np.float64).reshape(8, 8)
    stream: List[int] = []
    for by in range(0, height, 8):
        for bx in range(0, width, 8):
            blk = image[by : by + 8, bx : bx + 8].astype(np.float64) - 128.0
            coef = m @ blk @ m.T
            quant = coef / q
            quant = np.where(quant < 0, quant - 0.5, quant + 0.5).astype(np.int64)
            flat = quant.reshape(64)
            run = 0
            for zi in ZIGZAG:
                c = int(flat[zi])
                if c == 0:
                    run += 1
                else:
                    stream.extend((run, c))
                    run = 0
            stream.extend((EOB, run))
    return stream


class JpegEncWorkload(Workload):
    """JPEG-style image encoder (image category, PSNR >= 30 dB)."""

    name = "jpegenc"
    suite = "mediabench"
    category = "image"
    description = "A JPEG image encoder (image)"
    fidelity_metric = "psnr"
    fidelity_threshold = 30.0
    source = JPEGENC_SOURCE
    train_label = f"train {TRAIN_SIZE}x{TRAIN_SIZE} image"
    test_label = f"test {TEST_SIZE}x{TEST_SIZE} image"

    def _inputs(self, size: int, seed: int) -> Dict[str, Sequence]:
        img = synthetic_image(size, size, seed=seed)
        return {
            "image": [int(v) for v in img.reshape(-1)],
            "params": [size, size],
        }

    def train_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TRAIN_SIZE, seed=11)

    def test_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TEST_SIZE, seed=23)


class JpegDecWorkload(Workload):
    """JPEG-style image decoder (image category, PSNR >= 30 dB)."""

    name = "jpegdec"
    suite = "mediabench"
    category = "image"
    description = "A JPEG image decoder (image)"
    fidelity_metric = "psnr"
    fidelity_threshold = 30.0
    source = JPEGDEC_SOURCE
    train_label = f"train {TRAIN_SIZE}x{TRAIN_SIZE} image"
    test_label = f"test {TEST_SIZE}x{TEST_SIZE} image"

    def _inputs(self, size: int, seed: int) -> Dict[str, Sequence]:
        img = synthetic_image(size, size, seed=seed)
        stream = reference_encode(img)
        return {
            "stream": stream,
            "params": [size, size, len(stream)],
        }

    def train_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TRAIN_SIZE, seed=12)

    def test_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TEST_SIZE, seed=24)
