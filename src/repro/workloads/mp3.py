"""mp3enc / mp3dec: windowed-transform audio codec (paper Table I, mibench mad).

A simplified perceptual-codec pipeline with the structure of an MP3 layer:
sine-windowed MDCT-style analysis over overlapping frames, per-frame adaptive
scalefactors that are *delta-coded against the previous frame* (the predictive
loop-carried state the paper's mp3dec example in Figure 3 revolves around),
and quantised coefficients.  The decoder reverses the pipeline with
overlap-add synthesis.

The decoder's input (coefficients + delta-coded scalefactors) comes from
:func:`reference_encode`, the NumPy twin of the encoder kernel.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .base import Workload
from .signals import synthetic_audio

NUM_COEF = 12          # coefficients per frame
WINDOW = 24            # analysis window length
HOP = 12               # frame hop (50% overlap)
TRAIN_FRAMES = 26
TEST_FRAMES = 13
MAX_FRAMES = TRAIN_FRAMES
MAX_SAMPLES = MAX_FRAMES * HOP + (WINDOW - HOP)

_HEADER = f"""
const int NCOEF = {NUM_COEF};
const int WIN = {WINDOW};
const int HOP = {HOP};
const float PI = 3.141592653589793;
float costab[{NUM_COEF * WINDOW}];
float wintab[{WINDOW}];

void init_tabs() {{
    for (int n = 0; n < WIN; n++) {{
        wintab[n] = sin(PI * ((float)n + 0.5) / (float)WIN);
    }}
    for (int k = 0; k < NCOEF; k++) {{
        for (int n = 0; n < WIN; n++) {{
            // true MDCT basis: the +NCOEF/2 phase gives time-domain alias
            // cancellation with the sine window (Princen-Bradley)
            costab[k * WIN + n] =
                cos(PI / (float)NCOEF
                    * ((float)n + 0.5 + (float)NCOEF / 2.0)
                    * ((float)k + 0.5));
        }}
    }}
}}
"""

MP3ENC_SOURCE = f"""
// mp3enc: windowed transform analysis + adaptive quantisation
input int audio[{MAX_SAMPLES}];
input int params[1];            // number of frames
output int coefq[{MAX_FRAMES * NUM_COEF}];
output int sfdelta[{MAX_FRAMES}];

float spec[{NUM_COEF}];
{_HEADER}

void main() {{
    int nframes = params[0];
    init_tabs();
    int prev_sf = 0;
    for (int f = 0; f < nframes; f++) {{
        int pos = f * HOP;
        float peak = 1.0;
        for (int k = 0; k < NCOEF; k++) {{
            float s = 0.0;
            for (int n = 0; n < WIN; n++) {{
                s += (float)audio[pos + n] * wintab[n] * costab[k * WIN + n];
            }}
            spec[k] = s;
            float a = fabs(s);
            if (a > peak) {{ peak = a; }}
        }}
        // scalefactor: smallest power-of-two-ish divisor keeping |q| <= 127
        int sf = (int)(peak / 127.0) + 1;
        sfdelta[f] = sf - prev_sf;          // delta-coded against previous frame
        prev_sf = sf;
        for (int k = 0; k < NCOEF; k++) {{
            float q = spec[k] / (float)sf;
            coefq[f * NCOEF + k] = (int)(q + (q < 0.0 ? -0.5 : 0.5));
        }}
    }}
}}
"""

MP3DEC_SOURCE = f"""
// mp3dec: dequantise + inverse transform + overlap-add synthesis
input int coefq[{MAX_FRAMES * NUM_COEF}];
input int sfdelta[{MAX_FRAMES}];
input int params[1];            // number of frames
output int audio[{MAX_SAMPLES}];

float synth[{WINDOW}];
float overlap[{WINDOW}];
{_HEADER}

void main() {{
    int nframes = params[0];
    init_tabs();
    for (int n = 0; n < WIN; n++) {{ overlap[n] = 0.0; }}
    int sf = 0;
    for (int f = 0; f < nframes; f++) {{
        sf += sfdelta[f];                   // reconstruct the scalefactor chain
        int pos = f * HOP;
        for (int n = 0; n < WIN; n++) {{
            float s = 0.0;
            for (int k = 0; k < NCOEF; k++) {{
                s += (float)coefq[f * NCOEF + k] * (float)sf * costab[k * WIN + n];
            }}
            synth[n] = s * wintab[n] * (2.0 / (float)NCOEF);
        }}
        for (int n = 0; n < HOP; n++) {{
            float v = overlap[n] + synth[n];
            int out = (int)(v + (v < 0.0 ? -0.5 : 0.5));
            if (out > 32767) {{ out = 32767; }}
            if (out < -32768) {{ out = -32768; }}
            audio[pos + n] = out;
        }}
        for (int n = 0; n < WIN - HOP; n++) {{
            overlap[n] = synth[HOP + n];
        }}
        for (int n = WIN - HOP; n < WIN; n++) {{ overlap[n] = 0.0; }}
    }}
}}
"""


def _tables() -> Tuple[np.ndarray, np.ndarray]:
    n = np.arange(WINDOW)
    win = np.sin(math.pi * (n + 0.5) / WINDOW)
    k = np.arange(NUM_COEF).reshape(-1, 1)
    cos_tab = np.cos(math.pi / NUM_COEF * (n + 0.5 + NUM_COEF / 2) * (k + 0.5))
    return win, cos_tab


def reference_encode(audio: Sequence[int], nframes: int) -> Tuple[List[int], List[int]]:
    """NumPy twin of the mp3enc kernel → (quantised coefficients, sf deltas)."""
    win, cos_tab = _tables()
    samples = np.asarray(audio, dtype=np.float64)
    coefq: List[int] = []
    sfdelta: List[int] = []
    prev_sf = 0
    for f in range(nframes):
        seg = samples[f * HOP : f * HOP + WINDOW] * win
        spec = cos_tab @ seg
        peak = max(float(np.max(np.abs(spec))), 1.0)
        sf = int(peak / 127.0) + 1
        sfdelta.append(sf - prev_sf)
        prev_sf = sf
        q = spec / sf
        coefq.extend(int(v) for v in np.where(q < 0, q - 0.5, q + 0.5).astype(np.int64))
    return coefq, sfdelta


class Mp3EncWorkload(Workload):
    """MP3-style audio encoder (audio category, PSNR >= 30 dB)."""

    name = "mp3enc"
    suite = "mibench"
    category = "audio"
    description = "Audio encoding (audio)"
    fidelity_metric = "psnr"
    fidelity_threshold = 30.0
    source = MP3ENC_SOURCE
    train_label = f"train {TRAIN_FRAMES}-frame audio"
    test_label = f"test {TEST_FRAMES}-frame audio"

    def _inputs(self, nframes: int, seed: int) -> Dict[str, Sequence]:
        n = nframes * HOP + (WINDOW - HOP)
        audio = synthetic_audio(n, seed=seed)
        return {"audio": [int(v) for v in audio], "params": [nframes]}

    def train_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TRAIN_FRAMES, seed=71)

    def test_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TEST_FRAMES, seed=83)


class Mp3DecWorkload(Workload):
    """MP3-style audio decoder (audio category, PSNR >= 30 dB)."""

    name = "mp3dec"
    suite = "mibench"
    category = "audio"
    description = "Audio decoding (audio)"
    fidelity_metric = "psnr"
    fidelity_threshold = 30.0
    source = MP3DEC_SOURCE
    train_label = f"train {TRAIN_FRAMES}-frame audio"
    test_label = f"test {TEST_FRAMES}-frame audio"

    def _inputs(self, nframes: int, seed: int) -> Dict[str, Sequence]:
        n = nframes * HOP + (WINDOW - HOP)
        audio = synthetic_audio(n, seed=seed)
        coefq, sfdelta = reference_encode([int(v) for v in audio], nframes)
        return {"coefq": coefq, "sfdelta": sfdelta, "params": [nframes]}

    def train_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TRAIN_FRAMES, seed=72)

    def test_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TEST_FRAMES, seed=84)
