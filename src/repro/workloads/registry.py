"""Workload registry: the 13 paper benchmarks (Table I).

Five categories, at least two benchmarks each, as in the paper: image
(jpegenc, jpegdec, tiff2bw), vision (segm, tex_synth), audio (g721enc,
g721dec, mp3dec, mp3enc), video (h264enc, h264dec), and machine learning
(kmeans, svm).
"""

from __future__ import annotations

from typing import Dict, List, Type

from .base import Workload
from .g721 import G721DecWorkload, G721EncWorkload
from .h264 import H264DecWorkload, H264EncWorkload
from .jpeg import JpegDecWorkload, JpegEncWorkload
from .kmeans import KmeansWorkload
from .mp3 import Mp3DecWorkload, Mp3EncWorkload
from .segm import SegmWorkload
from .svm import SvmWorkload
from .tex_synth import TexSynthWorkload
from .tiff2bw import Tiff2BwWorkload

_WORKLOAD_CLASSES: List[Type[Workload]] = [
    JpegEncWorkload,
    JpegDecWorkload,
    Tiff2BwWorkload,
    SegmWorkload,
    TexSynthWorkload,
    G721EncWorkload,
    G721DecWorkload,
    Mp3DecWorkload,
    Mp3EncWorkload,
    H264EncWorkload,
    H264DecWorkload,
    KmeansWorkload,
    SvmWorkload,
]

BENCHMARK_NAMES: List[str] = [cls.name for cls in _WORKLOAD_CLASSES]


def all_workloads() -> List[Workload]:
    """Fresh instances of all 13 benchmarks, in Table I order."""
    return [cls() for cls in _WORKLOAD_CLASSES]


def get_workload(name: str) -> Workload:
    """Look up one benchmark by its Table I name."""
    for cls in _WORKLOAD_CLASSES:
        if cls.name == name:
            return cls()
    raise KeyError(f"unknown workload {name!r}; known: {BENCHMARK_NAMES}")


def table1_rows() -> List[Dict[str, str]]:
    """Rows of the paper's Table I for this reproduction."""
    rows = []
    for cls in _WORKLOAD_CLASSES:
        threshold = cls.fidelity_threshold
        if cls.fidelity_metric == "psnr":
            measure = f"Peak Signal to Noise Ratio (PSNR) ({threshold:g} dB)"
        elif cls.fidelity_metric == "segsnr":
            measure = f"Segmental SNR ({threshold:g} dB)"
        elif cls.fidelity_metric == "class_error":
            measure = f"Classification error ({threshold:.0%})"
        else:
            measure = f"Output matrix mismatch ({threshold:.0%})"
        rows.append(
            {
                "benchmark": f"{cls.name} ({cls.suite})",
                "description": cls.description,
                "inputs": f"{cls.train_label}; {cls.test_label}",
                "fidelity": measure,
            }
        )
    return rows
