"""g721enc / g721dec: ADPCM audio codec (paper Table I, mediabench).

IMA-style adaptive differential PCM at 4 bits/sample: the coder keeps a
*predicted value* and an adaptive *step index* across samples — the exact
loop-carried predictive state the paper's Figure 3 discussion targets (a
corrupted predictor poisons every subsequent sample).

The decoder's input codes come from :func:`reference_encode`, the Python twin
of the encoder kernel.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .base import Workload
from .signals import synthetic_audio

#: IMA ADPCM index adaptation table (4-bit codes)
INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]

#: IMA ADPCM step size table (89 entries)
STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
]

TRAIN_SAMPLES = 1400
TEST_SAMPLES = 700
MAX_SAMPLES = TRAIN_SAMPLES


def _int_list(values: Sequence[int]) -> str:
    return ", ".join(str(int(v)) for v in values)


_TABLES = f"""
int idx_tab[16] = {{ {_int_list(INDEX_TABLE)} }};
int step_tab[89] = {{ {_int_list(STEP_TABLE)} }};
"""

G721ENC_SOURCE = f"""
// g721enc: IMA-style ADPCM encoder (4 bits/sample)
input int audio[{MAX_SAMPLES}];
input int params[1];         // number of samples
output int codes[{MAX_SAMPLES}];
{_TABLES}

void main() {{
    int n = params[0];
    int valpred = 0;
    int index = 0;
    for (int i = 0; i < n; i++) {{
        int sample = audio[i];
        int diff = sample - valpred;
        int sign = 0;
        if (diff < 0) {{
            sign = 8;
            diff = -diff;
        }}
        int step = step_tab[index];
        int delta = 0;
        int vpdiff = step >> 3;
        if (diff >= step) {{
            delta = 4;
            diff -= step;
            vpdiff += step;
        }}
        step >>= 1;
        if (diff >= step) {{
            delta |= 2;
            diff -= step;
            vpdiff += step;
        }}
        step >>= 1;
        if (diff >= step) {{
            delta |= 1;
            vpdiff += step;
        }}
        if (sign != 0) {{
            valpred -= vpdiff;
        }} else {{
            valpred += vpdiff;
        }}
        if (valpred > 32767) {{ valpred = 32767; }}
        if (valpred < -32768) {{ valpred = -32768; }}
        delta |= sign;
        index += idx_tab[delta];
        if (index < 0) {{ index = 0; }}
        if (index > 88) {{ index = 88; }}
        codes[i] = delta;
    }}
}}
"""

G721DEC_SOURCE = f"""
// g721dec: IMA-style ADPCM decoder
input int codes[{MAX_SAMPLES}];
input int params[1];         // number of samples
output int audio[{MAX_SAMPLES}];
{_TABLES}

void main() {{
    int n = params[0];
    int valpred = 0;
    int index = 0;
    for (int i = 0; i < n; i++) {{
        int delta = codes[i];
        int step = step_tab[index];
        int vpdiff = step >> 3;
        if ((delta & 4) != 0) {{ vpdiff += step; }}
        if ((delta & 2) != 0) {{ vpdiff += step >> 1; }}
        if ((delta & 1) != 0) {{ vpdiff += step >> 2; }}
        if ((delta & 8) != 0) {{
            valpred -= vpdiff;
        }} else {{
            valpred += vpdiff;
        }}
        if (valpred > 32767) {{ valpred = 32767; }}
        if (valpred < -32768) {{ valpred = -32768; }}
        index += idx_tab[delta];
        if (index < 0) {{ index = 0; }}
        if (index > 88) {{ index = 88; }}
        audio[i] = valpred;
    }}
}}
"""


def reference_encode(samples: Sequence[int]) -> List[int]:
    """Python twin of the g721enc kernel; produces the g721dec input codes."""
    valpred, index = 0, 0
    codes: List[int] = []
    for sample in samples:
        diff = int(sample) - valpred
        sign = 8 if diff < 0 else 0
        if sign:
            diff = -diff
        step = STEP_TABLE[index]
        delta = 0
        vpdiff = step >> 3
        if diff >= step:
            delta = 4
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 2
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 1
            vpdiff += step
        valpred = valpred - vpdiff if sign else valpred + vpdiff
        valpred = max(-32768, min(32767, valpred))
        delta |= sign
        index = max(0, min(88, index + INDEX_TABLE[delta]))
        codes.append(delta)
    return codes


class G721EncWorkload(Workload):
    """ADPCM audio encoder (audio category, segmental SNR >= 80 dB)."""

    name = "g721enc"
    suite = "mediabench"
    category = "audio"
    description = "Audio encoding (audio)"
    fidelity_metric = "segsnr"
    fidelity_threshold = 80.0
    source = G721ENC_SOURCE
    train_label = f"train {TRAIN_SAMPLES}-sample audio"
    test_label = f"test {TEST_SAMPLES}-sample audio"

    def _inputs(self, n: int, seed: int) -> Dict[str, Sequence]:
        audio = synthetic_audio(n, seed=seed)
        return {"audio": [int(v) for v in audio], "params": [n]}

    def train_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TRAIN_SAMPLES, seed=51)

    def test_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TEST_SAMPLES, seed=67)


class G721DecWorkload(Workload):
    """ADPCM audio decoder (audio category, segmental SNR >= 80 dB)."""

    name = "g721dec"
    suite = "mediabench"
    category = "audio"
    description = "Audio decoding (audio)"
    fidelity_metric = "segsnr"
    fidelity_threshold = 80.0
    source = G721DEC_SOURCE
    train_label = f"train {TRAIN_SAMPLES}-sample audio"
    test_label = f"test {TEST_SAMPLES}-sample audio"

    def _inputs(self, n: int, seed: int) -> Dict[str, Sequence]:
        audio = synthetic_audio(n, seed=seed)
        return {"codes": reference_encode(audio), "params": [n]}

    def train_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TRAIN_SAMPLES, seed=52)

    def test_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TEST_SAMPLES, seed=68)
