"""The 13 soft-computing benchmarks of paper Table I, written in SCL, plus
synthetic input generators and the workload registry."""

from .base import Workload
from .registry import BENCHMARK_NAMES, all_workloads, get_workload, table1_rows
from .signals import (
    gaussian_clusters,
    synthetic_audio,
    synthetic_image,
    synthetic_rgb_image,
    synthetic_video,
    two_class_data,
)

__all__ = [
    "Workload",
    "BENCHMARK_NAMES", "all_workloads", "get_workload", "table1_rows",
    "gaussian_clusters", "synthetic_audio", "synthetic_image",
    "synthetic_rgb_image", "synthetic_video", "two_class_data",
]
