"""tex_synth: non-parametric texture synthesis (paper Table I, SDVBS).

Efros-Leung-style synthesis in raster order: every output pixel is chosen by
exhaustively matching its causal neighbourhood (left, up, up-left) against
all interior positions of the sample texture (SSD), then copying the best
match.  The best-SSD reduction variables are loop-carried state; the SSD
accumulation is value-check-amenable soft computation.  Fidelity is output
matrix mismatch (<= 10%).
"""

from __future__ import annotations

from typing import Dict, Sequence

from .base import Workload
from .signals import synthetic_image

SAMPLE = 9                # sample texture is SAMPLE x SAMPLE
TRAIN_OUT = 9             # synthesised output side (train)
TEST_OUT = 6              # synthesised output side (test)
MAX_OUT = TRAIN_OUT * TRAIN_OUT

TEX_SYNTH_SOURCE = f"""
// tex_synth: causal-neighbourhood texture synthesis
input int sample[{SAMPLE * SAMPLE}];
input int seedrow[{TRAIN_OUT}];     // first output row is seeded from the sample
input int params[1];                // output side length
output int out[{MAX_OUT}];

const int S = {SAMPLE};

void main() {{
    int osz = params[0];
    for (int x = 0; x < osz; x++) {{
        out[x] = seedrow[x];
    }}
    for (int y = 1; y < osz; y++) {{
        for (int x = 0; x < osz; x++) {{
            int bestval = 0;
            int bestssd = 1 << 28;
            for (int sy = 1; sy < S; sy++) {{
                for (int sx = 1; sx < S; sx++) {{
                    int ssd = 0;
                    // up neighbour always exists (y >= 1)
                    int du = out[(y - 1) * osz + x] - sample[(sy - 1) * S + sx];
                    ssd += du * du;
                    if (x > 0) {{
                        int dl = out[y * osz + x - 1] - sample[sy * S + sx - 1];
                        ssd += dl * dl;
                        int dd = out[(y - 1) * osz + x - 1] - sample[(sy - 1) * S + sx - 1];
                        ssd += dd * dd;
                    }}
                    if (ssd < bestssd) {{
                        bestssd = ssd;
                        bestval = sample[sy * S + sx];
                    }}
                }}
            }}
            out[y * osz + x] = bestval;
        }}
    }}
}}
"""


class TexSynthWorkload(Workload):
    """Texture synthesis (computer vision, output mismatch <= 10%)."""

    name = "tex_synth"
    suite = "SDVBS"
    category = "vision"
    description = "Texture synthesis (Computer vision)"
    fidelity_metric = "matrix_mismatch"
    fidelity_threshold = 0.10
    source = TEX_SYNTH_SOURCE
    train_label = f"train {TRAIN_OUT}x{TRAIN_OUT} output"
    test_label = f"test {TEST_OUT}x{TEST_OUT} output"

    def _inputs(self, out_size: int, seed: int) -> Dict[str, Sequence]:
        sample = synthetic_image(SAMPLE, SAMPLE, seed=seed)
        seedrow = [int(v) for v in sample[0, :out_size]]
        seedrow += [0] * (TRAIN_OUT - len(seedrow))
        return {
            "sample": [int(v) for v in sample.reshape(-1)],
            "seedrow": seedrow,
            "params": [out_size],
        }

    def train_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TRAIN_OUT, seed=131)

    def test_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TEST_OUT, seed=143)
