"""h264enc / h264dec: motion-compensated video codec (paper Table I,
mediabench II).

The kernels implement the core H.264 P-frame loop at reduced scale: full
8x8-block motion search (±1 px) against the previous *reconstructed* frame,
residual computation, uniform quantisation, and in-loop reconstruction (so
encoder and decoder drift never diverges in the fault-free run).  Frame 0 is
intra-coded against a mid-gray predictor.

State structure matches the paper's analysis: the best-SAD/best-MV reduction
variables and the block/frame cursors are loop-carried state; the SAD and
residual arithmetic is value-check-amenable soft computation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .base import Workload
from .signals import synthetic_video

BLOCK = 8
SIZE = 16                 # width == height
TRAIN_FRAMES = 4
TEST_FRAMES = 3
MAX_FRAMES = TRAIN_FRAMES
FRAME_PIXELS = SIZE * SIZE
BLOCKS_PER_FRAME = (SIZE // BLOCK) * (SIZE // BLOCK)
MAX_BLOCKS = MAX_FRAMES * BLOCKS_PER_FRAME
QSTEP = 8
SEARCH = 1                # motion search radius in pixels

H264ENC_SOURCE = f"""
// h264enc: 8x8 motion estimation + residual quantisation + reconstruction
input int video[{MAX_FRAMES * FRAME_PIXELS}];
input int params[1];          // number of frames
output int mvs[{MAX_BLOCKS * 2}];
output int resq[{MAX_BLOCKS * 64}];

int recon[{MAX_FRAMES * FRAME_PIXELS}];
const int W = {SIZE};
const int B = {BLOCK};
const int Q = {QSTEP};

void main() {{
    int nframes = params[0];
    int bi = 0;
    for (int f = 0; f < nframes; f++) {{
        int fbase = f * W * W;
        int pbase = (f - 1) * W * W;
        for (int by = 0; by < W; by += B) {{
            for (int bx = 0; bx < W; bx += B) {{
                int mvx = 0;
                int mvy = 0;
                if (f > 0) {{
                    // full search, radius {SEARCH}
                    int best = 1 << 28;
                    for (int dy = -{SEARCH}; dy <= {SEARCH}; dy++) {{
                        for (int dx = -{SEARCH}; dx <= {SEARCH}; dx++) {{
                            if (by + dy < 0) {{ continue; }}
                            if (bx + dx < 0) {{ continue; }}
                            if (by + dy + B > W) {{ continue; }}
                            if (bx + dx + B > W) {{ continue; }}
                            int sad = 0;
                            for (int y = 0; y < B; y++) {{
                                for (int x = 0; x < B; x++) {{
                                    int c = video[fbase + (by + y) * W + bx + x];
                                    int p = recon[pbase + (by + dy + y) * W + bx + dx + x];
                                    sad += abs(c - p);
                                }}
                            }}
                            if (sad < best) {{
                                best = sad;
                                mvx = dx;
                                mvy = dy;
                            }}
                        }}
                    }}
                }}
                mvs[bi * 2] = mvx;
                mvs[bi * 2 + 1] = mvy;
                // residual, quantise, reconstruct
                for (int y = 0; y < B; y++) {{
                    for (int x = 0; x < B; x++) {{
                        int cur = video[fbase + (by + y) * W + bx + x];
                        int pred = 128;
                        if (f > 0) {{
                            pred = recon[pbase + (by + mvy + y) * W + bx + mvx + x];
                        }}
                        int res = cur - pred;
                        int rq = (res + (res < 0 ? -Q / 2 : Q / 2)) / Q;
                        resq[bi * 64 + y * B + x] = rq;
                        int rec = pred + rq * Q;
                        if (rec < 0) {{ rec = 0; }}
                        if (rec > 255) {{ rec = 255; }}
                        recon[fbase + (by + y) * W + bx + x] = rec;
                    }}
                }}
                bi++;
            }}
        }}
    }}
}}
"""

H264DEC_SOURCE = f"""
// h264dec: motion compensation + residual reconstruction
input int mvs[{MAX_BLOCKS * 2}];
input int resq[{MAX_BLOCKS * 64}];
input int params[1];          // number of frames
output int video[{MAX_FRAMES * FRAME_PIXELS}];

const int W = {SIZE};
const int B = {BLOCK};
const int Q = {QSTEP};

void main() {{
    int nframes = params[0];
    int bi = 0;
    for (int f = 0; f < nframes; f++) {{
        int fbase = f * W * W;
        int pbase = (f - 1) * W * W;
        for (int by = 0; by < W; by += B) {{
            for (int bx = 0; bx < W; bx += B) {{
                int mvx = mvs[bi * 2];
                int mvy = mvs[bi * 2 + 1];
                for (int y = 0; y < B; y++) {{
                    for (int x = 0; x < B; x++) {{
                        int pred = 128;
                        if (f > 0) {{
                            pred = video[pbase + (by + mvy + y) * W + bx + mvx + x];
                        }}
                        int rec = pred + resq[bi * 64 + y * B + x] * Q;
                        if (rec < 0) {{ rec = 0; }}
                        if (rec > 255) {{ rec = 255; }}
                        video[fbase + (by + y) * W + bx + x] = rec;
                    }}
                }}
                bi++;
            }}
        }}
    }}
}}
"""


def reference_encode(video: np.ndarray) -> Tuple[List[int], List[int]]:
    """NumPy twin of the h264enc kernel → (motion vectors, quantised residuals)."""
    frames, height, width = video.shape
    recon = np.zeros_like(video)
    mvs: List[int] = []
    resq: List[int] = []
    for f in range(frames):
        for by in range(0, height, BLOCK):
            for bx in range(0, width, BLOCK):
                cur = video[f, by : by + BLOCK, bx : bx + BLOCK].astype(np.int64)
                mvx = mvy = 0
                if f > 0:
                    best = 1 << 28
                    for dy in range(-SEARCH, SEARCH + 1):
                        for dx in range(-SEARCH, SEARCH + 1):
                            if not (0 <= by + dy and by + dy + BLOCK <= height):
                                continue
                            if not (0 <= bx + dx and bx + dx + BLOCK <= width):
                                continue
                            ref = recon[f - 1, by + dy : by + dy + BLOCK,
                                        bx + dx : bx + dx + BLOCK]
                            sad = int(np.sum(np.abs(cur - ref)))
                            if sad < best:
                                best, mvx, mvy = sad, dx, dy
                    pred = recon[f - 1, by + mvy : by + mvy + BLOCK,
                                 bx + mvx : bx + mvx + BLOCK].astype(np.int64)
                else:
                    pred = np.full((BLOCK, BLOCK), 128, dtype=np.int64)
                mvs.extend((mvx, mvy))
                res = cur - pred
                # mirror the kernel's C-style truncating division
                rq = np.trunc(
                    (res + np.where(res < 0, -(QSTEP // 2), QSTEP // 2)) / QSTEP
                ).astype(np.int64)
                resq.extend(int(v) for v in rq.reshape(-1))
                rec = np.clip(pred + rq * QSTEP, 0, 255)
                recon[f, by : by + BLOCK, bx : bx + BLOCK] = rec
    return mvs, resq


class H264EncWorkload(Workload):
    """H.264-style video encoder (video category, PSNR >= 30 dB)."""

    name = "h264enc"
    suite = "mediabench II"
    category = "video"
    description = "H.264 video encoding (video)"
    fidelity_metric = "psnr"
    fidelity_threshold = 30.0
    source = H264ENC_SOURCE
    train_label = f"train {TRAIN_FRAMES}-frame {SIZE}x{SIZE} video"
    test_label = f"test {TEST_FRAMES}-frame {SIZE}x{SIZE} video"

    def _inputs(self, frames: int, seed: int) -> Dict[str, Sequence]:
        video = synthetic_video(SIZE, SIZE, frames, seed=seed)
        return {"video": [int(v) for v in video.reshape(-1)], "params": [frames]}

    def train_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TRAIN_FRAMES, seed=91)

    def test_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TEST_FRAMES, seed=103)


class H264DecWorkload(Workload):
    """H.264-style video decoder (video category, PSNR >= 30 dB)."""

    name = "h264dec"
    suite = "mediabench II"
    category = "video"
    description = "H.264 video decoding (video)"
    fidelity_metric = "psnr"
    fidelity_threshold = 30.0
    source = H264DEC_SOURCE
    train_label = f"train {TRAIN_FRAMES}-frame {SIZE}x{SIZE} video"
    test_label = f"test {TEST_FRAMES}-frame {SIZE}x{SIZE} video"

    def _inputs(self, frames: int, seed: int) -> Dict[str, Sequence]:
        video = synthetic_video(SIZE, SIZE, frames, seed=seed)
        mvs, resq = reference_encode(video)
        return {"mvs": mvs, "resq": resq, "params": [frames]}

    def train_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TRAIN_FRAMES, seed=92)

    def test_inputs(self) -> Dict[str, Sequence]:
        return self._inputs(TEST_FRAMES, seed=104)
