"""Control-flow-graph utilities: orderings and edge maps over a function."""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function


def successors_map(fn: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Block → successor list for every block in the function."""
    return {block: block.successors for block in fn.blocks}


def predecessors_map(fn: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Block → predecessor list, computed in one pass over the CFG."""
    preds: Dict[BasicBlock, List[BasicBlock]] = {block: [] for block in fn.blocks}
    for block in fn.blocks:
        for succ in block.successors:
            preds[succ].append(block)
    return preds


def reverse_postorder(fn: Function) -> List[BasicBlock]:
    """Blocks in reverse postorder from the entry (unreachable blocks omitted).

    Reverse postorder visits every block before its successors (except along
    back edges), which is the canonical iteration order for forward dataflow.
    """
    visited: Set[int] = set()
    postorder: List[BasicBlock] = []

    # Iterative DFS to avoid recursion limits on long CFGs.
    stack: List[tuple] = [(fn.entry, iter(fn.entry.successors))]
    visited.add(id(fn.entry))
    while stack:
        block, succ_iter = stack[-1]
        advanced = False
        for succ in succ_iter:
            if id(succ) not in visited:
                visited.add(id(succ))
                stack.append((succ, iter(succ.successors)))
                advanced = True
                break
        if not advanced:
            postorder.append(block)
            stack.pop()
    postorder.reverse()
    return postorder


def reachable_blocks(fn: Function) -> Set[int]:
    """Ids of blocks reachable from the entry."""
    return {id(b) for b in reverse_postorder(fn)}


def split_critical_edges(fn: Function) -> int:
    """Split every critical edge (multi-succ block → multi-pred block).

    Inserts a fresh forwarding block on each critical edge and rewrites phi
    incomings.  Returns the number of edges split.  Needed before placing
    per-edge code (e.g. guard checks on loop back edges).
    """
    from ..ir.instructions import Br

    split = 0
    preds = predecessors_map(fn)
    for block in list(fn.blocks):
        succs = block.successors
        if len(succs) < 2:
            continue
        for succ in succs:
            if len(preds[succ]) < 2:
                continue
            mid = fn.add_block(f"{block.name}.{succ.name}.split", after=block)
            mid.append(Br(succ))
            term = block.terminator
            term.replace_successor(succ, mid)  # type: ignore[union-attr]
            for phi in succ.phis():
                for idx, pred in enumerate(phi.incoming_blocks):
                    if pred is block:
                        phi.incoming_blocks[idx] = mid
            preds[succ] = [p for p in preds[succ] if p is not block] + [mid]
            preds[mid] = [block]
            split += 1
    return split
