"""State-variable identification (Section III-B / IV-A of the paper).

A *state variable* is a variable that carries a value across loop iterations:
at the IR level, a phi node in a loop header that has (a) an incoming value
from outside the loop (the init) and (b) an incoming value from a latch block
inside the loop that *transitively depends on the phi itself*.  Loop induction
variables, CRC-style accumulators, and predictive-codec state all match this
pattern.  Corruption of a state variable snowballs across iterations, so these
are the variables protected with hard (duplication) checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Phi
from ..ir.values import Value
from .dominators import DominatorTree
from .loops import Loop, LoopInfo
from .usedef import depends_on


@dataclass
class StateVariable:
    """A protected loop-carried variable.

    Attributes:
        phi: the loop-header phi node.
        loop: the natural loop whose header holds the phi.
        init_incomings: (value, block) pairs entering from outside the loop.
        update_incomings: (value, block) pairs from latches inside the loop
            whose value depends on the phi (the recurrence updates).
    """

    phi: Phi
    loop: Loop
    init_incomings: List[tuple] = field(default_factory=list)
    update_incomings: List[tuple] = field(default_factory=list)

    @property
    def function(self) -> Optional[Function]:
        return self.phi.function

    def __repr__(self) -> str:
        return (
            f"<StateVariable %{self.phi.name} in loop %{self.loop.header.name} "
            f"({len(self.update_incomings)} updates)>"
        )


def find_state_variables(
    fn: Function,
    loop_info: Optional[LoopInfo] = None,
) -> List[StateVariable]:
    """All state variables of ``fn``, in block order.

    A loop-header phi qualifies when at least one in-loop incoming value
    transitively depends on the phi itself (self-recurrence).  Phis that
    merely merge values of an if-else inside a loop body do not qualify, nor
    do header phis whose in-loop incoming is independent of the phi (e.g. a
    value recomputed from scratch each iteration).
    """
    loop_info = loop_info or LoopInfo.compute(fn)
    out: List[StateVariable] = []
    for loop in loop_info.loops:
        for phi in loop.header.phis():
            sv = classify_header_phi(phi, loop)
            if sv is not None:
                out.append(sv)
    return out


def classify_header_phi(phi: Phi, loop: Loop) -> Optional[StateVariable]:
    """Classify one loop-header phi; returns a StateVariable or None."""
    init, updates = [], []
    for value, block in phi.incomings:
        if loop.contains(block):
            if depends_on(value, phi):
                updates.append((value, block))
        else:
            init.append((value, block))
    if init and updates:
        return StateVariable(phi, loop, init, updates)
    return None


def count_state_variables(fn: Function) -> int:
    """Number of state variables in ``fn`` (used by the Figure 10 statistics)."""
    return len(find_state_variables(fn))
