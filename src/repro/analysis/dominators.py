"""Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy).

Used by the verifier (SSA dominance checks), by mem2reg (phi placement at
dominance frontiers), and by the loop analysis (back edge = edge to a
dominator).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from .cfg import predecessors_map, reverse_postorder


class DominatorTree:
    """Immediate-dominator tree for a function's reachable blocks."""

    def __init__(
        self,
        fn: Function,
        idom: Dict[BasicBlock, Optional[BasicBlock]],
        rpo: List[BasicBlock],
    ) -> None:
        self.function = fn
        self.idom = idom
        self.rpo = rpo
        self._rpo_index = {id(b): i for i, b in enumerate(rpo)}
        self.children: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in rpo}
        for block, dom in idom.items():
            if dom is not None and dom is not block:
                self.children[dom].append(block)

    @classmethod
    def compute(cls, fn: Function) -> "DominatorTree":
        """Cooper–Harvey–Kennedy iterative dominator algorithm."""
        rpo = reverse_postorder(fn)
        rpo_index = {id(b): i for i, b in enumerate(rpo)}
        preds = predecessors_map(fn)
        entry = fn.entry

        idom: Dict[BasicBlock, Optional[BasicBlock]] = {b: None for b in rpo}
        idom[entry] = entry

        def intersect(b1: BasicBlock, b2: BasicBlock) -> BasicBlock:
            while b1 is not b2:
                while rpo_index[id(b1)] > rpo_index[id(b2)]:
                    b1 = idom[b1]  # type: ignore[assignment]
                while rpo_index[id(b2)] > rpo_index[id(b1)]:
                    b2 = idom[b2]  # type: ignore[assignment]
            return b1

        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block is entry:
                    continue
                new_idom: Optional[BasicBlock] = None
                for pred in preds[block]:
                    if id(pred) not in rpo_index:
                        continue  # unreachable predecessor
                    if idom.get(pred) is None:
                        continue
                    new_idom = pred if new_idom is None else intersect(pred, new_idom)
                if new_idom is not None and idom[block] is not new_idom:
                    idom[block] = new_idom
                    changed = True
        return cls(fn, idom, rpo)

    # -- queries ---------------------------------------------------------------

    def is_reachable(self, block: BasicBlock) -> bool:
        return id(block) in self._rpo_index

    def immediate_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        dom = self.idom.get(block)
        return None if dom is block else dom

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True when ``a`` dominates ``b`` (reflexive)."""
        if not self.is_reachable(a) or not self.is_reachable(b):
            return False
        node: Optional[BasicBlock] = b
        while node is not None:
            if node is a:
                return True
            parent = self.idom[node]
            node = None if parent is node else parent
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def dominance_frontier(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        """DF(b) = blocks where b's dominance ends; drives phi placement."""
        preds = predecessors_map(self.function)
        frontier: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in self.rpo}
        for block in self.rpo:
            block_preds = [p for p in preds[block] if self.is_reachable(p)]
            if len(block_preds) < 2:
                continue
            target_idom = self.idom[block]
            for pred in block_preds:
                runner = pred
                # idom[entry] is entry, so this walk always terminates: the
                # target's idom is an ancestor of every reachable predecessor.
                while runner is not target_idom:
                    frontier[runner].add(block)
                    runner = self.idom[runner]  # type: ignore[assignment]
        return frontier

    def dominated_by(self, block: BasicBlock) -> List[BasicBlock]:
        """All blocks dominated by ``block`` (subtree of the dom tree)."""
        out: List[BasicBlock] = []
        stack = [block]
        while stack:
            b = stack.pop()
            out.append(b)
            stack.extend(self.children.get(b, ()))
        return out
