"""Natural-loop detection.

A back edge is a CFG edge ``tail → head`` where ``head`` dominates ``tail``.
The natural loop of that edge is ``head`` plus every block that can reach
``tail`` without passing through ``head``.  Loop headers are where the paper
finds state variables: phi nodes merging an init value from outside the loop
with an update from inside it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from .cfg import predecessors_map
from .dominators import DominatorTree


class Loop:
    """One natural loop: header, body blocks, and nesting links."""

    def __init__(self, header: BasicBlock) -> None:
        self.header = header
        self.blocks: Set[BasicBlock] = {header}
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []
        #: blocks inside the loop that branch back to the header
        self.latches: List[BasicBlock] = []

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    @property
    def depth(self) -> int:
        d, node = 1, self.parent
        while node is not None:
            d += 1
            node = node.parent
        return d

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks outside the loop that are branched to from inside it."""
        exits: List[BasicBlock] = []
        for block in self.blocks:
            for succ in block.successors:
                if succ not in self.blocks and succ not in exits:
                    exits.append(succ)
        return exits

    def preheader_candidates(self) -> List[BasicBlock]:
        """Predecessors of the header from outside the loop."""
        return [p for p in self.header.predecessors if p not in self.blocks]

    def __repr__(self) -> str:
        return f"<Loop header=%{self.header.name} blocks={len(self.blocks)} depth={self.depth}>"


class LoopInfo:
    """All natural loops of a function, with header→loop lookup and nesting."""

    def __init__(self, fn: Function, loops: List[Loop]) -> None:
        self.function = fn
        self.loops = loops
        self._by_header: Dict[int, Loop] = {id(l.header): l for l in loops}

    @classmethod
    def compute(cls, fn: Function, dt: Optional[DominatorTree] = None) -> "LoopInfo":
        dt = dt or DominatorTree.compute(fn)
        preds = predecessors_map(fn)

        # Collect back edges, merging loops that share a header.
        loops_by_header: Dict[int, Loop] = {}
        for block in dt.rpo:
            for succ in block.successors:
                if dt.is_reachable(succ) and dt.dominates(succ, block):
                    loop = loops_by_header.get(id(succ))
                    if loop is None:
                        loop = Loop(succ)
                        loops_by_header[id(succ)] = loop
                    loop.latches.append(block)
                    _grow_loop(loop, block, preds)

        loops = list(loops_by_header.values())
        _link_nesting(loops)
        return cls(fn, loops)

    # -- queries ------------------------------------------------------------------

    def loop_for_header(self, block: BasicBlock) -> Optional[Loop]:
        return self._by_header.get(id(block))

    def innermost_loop_containing(self, block: BasicBlock) -> Optional[Loop]:
        best: Optional[Loop] = None
        for loop in self.loops:
            if loop.contains(block) and (best is None or loop.depth > best.depth):
                best = loop
        return best

    def headers(self) -> List[BasicBlock]:
        return [l.header for l in self.loops]

    def top_level_loops(self) -> List[Loop]:
        return [l for l in self.loops if l.parent is None]


def _grow_loop(
    loop: Loop, latch: BasicBlock, preds: Dict[BasicBlock, List[BasicBlock]]
) -> None:
    """Add all blocks reaching ``latch`` without passing through the header."""
    stack = [latch]
    while stack:
        block = stack.pop()
        if block in loop.blocks:
            continue
        loop.blocks.add(block)
        stack.extend(preds.get(block, ()))


def _link_nesting(loops: List[Loop]) -> None:
    """Set parent/children: a loop's parent is the smallest strictly-larger
    loop containing its header."""
    for inner in loops:
        best: Optional[Loop] = None
        for outer in loops:
            if outer is inner:
                continue
            if inner.header in outer.blocks and inner.blocks <= outer.blocks:
                if best is None or len(outer.blocks) < len(best.blocks):
                    best = outer
        inner.parent = best
        if best is not None:
            best.children.append(inner)
