"""Compiler analyses: CFG, dominators, natural loops, use-def chains,
state-variable identification, and liveness."""

from .cfg import (
    predecessors_map,
    reachable_blocks,
    reverse_postorder,
    split_critical_edges,
    successors_map,
)
from .dominators import DominatorTree
from .liveness import LivenessInfo, compute_liveness
from .loops import Loop, LoopInfo
from .statevars import (
    StateVariable,
    classify_header_phi,
    count_state_variables,
    find_state_variables,
)
from .usedef import (
    DUPLICABLE_CLASSES,
    depends_on,
    is_chain_terminator,
    producer_chain,
    transitive_users,
)

__all__ = [
    "predecessors_map", "reachable_blocks", "reverse_postorder",
    "split_critical_edges", "successors_map",
    "DominatorTree",
    "LivenessInfo", "compute_liveness",
    "Loop", "LoopInfo",
    "StateVariable", "classify_header_phi", "count_state_variables",
    "find_state_variables",
    "DUPLICABLE_CLASSES", "depends_on", "is_chain_terminator",
    "producer_chain", "transitive_users",
]
