"""Use-def traversals: producer chains.

The paper protects a state variable by duplicating its *producer chain* — the
recursive closure of its use-def chain, terminated at loads ("we do not
duplicate loads to save on memory traffic", Fig. 7) and at anything with side
effects.  This module computes those chains; the duplication transform
consumes them.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Set

from ..ir.instructions import (
    Alloca,
    BinaryOp,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    IntrinsicCall,
    Load,
    Phi,
    Select,
)
from ..ir.values import Value


#: Instruction classes that may be cloned into a shadow (duplicated) chain.
#: Loads are deliberately excluded (memory traffic; faults on the address
#: operand surface as symptoms instead).  GEPs are pure address arithmetic and
#: are duplicable.  Non-header phis are also duplicable, but only when the
#: chain walk has loop context (see :func:`producer_chain`).
DUPLICABLE_CLASSES = (BinaryOp, ICmp, FCmp, Select, Cast, GetElementPtr, IntrinsicCall)


def is_chain_terminator(instr: Instruction, header_blocks: Optional[Set[int]] = None) -> bool:
    """True when producer-chain traversal must stop *at* this instruction.

    Loads terminate the chain (their result is consumed by the shadow chain
    as-is); calls and allocas likewise act as chain inputs.  Phi nodes in
    *loop headers* terminate too (they are recurrences — the duplication pass
    shadows them explicitly), but ordinary merge phis (if-else joins inside a
    loop body, e.g. a conditional min/max update) are part of the computation
    and are duplicated when ``header_blocks`` is provided; without loop
    context every phi conservatively terminates the chain.
    """
    if isinstance(instr, (Load, Call, Alloca)):
        return True
    if isinstance(instr, Phi):
        if header_blocks is None:
            return True
        return id(instr.parent) in header_blocks
    return False


def producer_chain(
    root: Value,
    stop_at: Optional[Callable[[Instruction], bool]] = None,
    restrict_to_blocks: Optional[Set[int]] = None,
    header_blocks: Optional[Set[int]] = None,
) -> List[Instruction]:
    """Duplicable producer chain of ``root`` in dependency (def-before-use) order.

    Walks the use-def chain recursively.  Traversal stops at:

    * non-instruction values (constants, arguments, globals),
    * chain terminators (:func:`is_chain_terminator`),
    * instructions outside ``restrict_to_blocks`` (when given — used to keep
      chains inside the loop being protected),
    * instructions for which ``stop_at`` returns True (used by Optimization 2:
      value-check-amenable instructions end the chain).

    The returned list contains only duplicable instructions, ordered so that
    every instruction appears after all chain members it depends on; cloning
    in list order is therefore safe.
    """
    ordered: List[Instruction] = []
    visited: Set[int] = set()

    def visit(value: Value) -> None:
        if not isinstance(value, Instruction):
            return
        if id(value) in visited:
            return
        visited.add(id(value))
        if is_chain_terminator(value, header_blocks):
            return
        if restrict_to_blocks is not None and id(value.parent) not in restrict_to_blocks:
            return
        if not isinstance(value, (*DUPLICABLE_CLASSES, Phi)):
            return
        if stop_at is not None and stop_at(value):
            return
        for op in value.operands:
            visit(op)
        ordered.append(value)

    visit(root)
    return ordered


def transitive_users(
    roots: Iterable[Instruction], within_blocks: Optional[Set[int]] = None
) -> Set[int]:
    """Ids of all instructions transitively using any of ``roots``.

    Phi uses are included (so influence propagates across iterations), but the
    walk does not revisit nodes; used by Optimization 1 to find whether an
    amenable instruction feeds another amenable instruction downstream.
    """
    seen: Set[int] = set()
    stack: List[Instruction] = list(roots)
    while stack:
        instr = stack.pop()
        for user in instr.users:
            if id(user) in seen:
                continue
            if within_blocks is not None and id(user.parent) not in within_blocks:
                continue
            seen.add(id(user))
            stack.append(user)
    return seen


def depends_on(value: Value, target: Value, max_nodes: int = 100_000) -> bool:
    """True when ``value`` transitively depends on ``target`` via use-def edges.

    Used to detect state variables: a loop-header phi whose in-loop incoming
    depends on the phi itself carries state across iterations.
    """
    if value is target:
        return True
    seen: Set[int] = set()
    stack: List[Value] = [value]
    while stack and len(seen) < max_nodes:
        v = stack.pop()
        if v is target:
            return True
        if not isinstance(v, Instruction) or id(v) in seen:
            continue
        seen.add(id(v))
        stack.extend(v.operands)
    return False
