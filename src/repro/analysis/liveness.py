"""Backward liveness analysis over SSA values.

The fault model injects bit flips into *live* registers (values defined and
not yet past their last use) — see :mod:`repro.sim.regfile`.  This module
computes per-block live-in/live-out sets; the simulator uses a cheaper dynamic
approximation at run time but the static sets are used for validation and for
register-pressure statistics in the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction, Phi
from ..ir.values import Argument, Value
from .cfg import predecessors_map, reverse_postorder


@dataclass
class LivenessInfo:
    """Per-block live-in / live-out sets of SSA values (ids keyed by object)."""

    live_in: Dict[BasicBlock, FrozenSet[Value]]
    live_out: Dict[BasicBlock, FrozenSet[Value]]

    def max_pressure(self) -> int:
        """Upper bound on simultaneously-live values at any block boundary."""
        if not self.live_out:
            return 0
        return max(
            max((len(s) for s in self.live_in.values()), default=0),
            max((len(s) for s in self.live_out.values()), default=0),
        )


def compute_liveness(fn: Function) -> LivenessInfo:
    """Iterative backward dataflow; phi operands are live-out of the incoming
    block (standard SSA treatment)."""
    blocks = reverse_postorder(fn)
    preds = predecessors_map(fn)

    # use[b]: values used in b before (re)definition; def[b]: values defined in b.
    use_sets: Dict[BasicBlock, Set[Value]] = {}
    def_sets: Dict[BasicBlock, Set[Value]] = {}
    # phi_uses[(pred, block)] handled separately below.
    phi_uses: Dict[BasicBlock, Dict[BasicBlock, Set[Value]]] = {}

    for block in blocks:
        uses: Set[Value] = set()
        defs: Set[Value] = set()
        phi_uses[block] = {}
        for instr in block.instructions:
            if isinstance(instr, Phi):
                for value, pred in instr.incomings:
                    if isinstance(value, (Instruction, Argument)):
                        phi_uses[block].setdefault(pred, set()).add(value)
                defs.add(instr)
                continue
            for op in instr.operands:
                if isinstance(op, (Instruction, Argument)) and op not in defs:
                    uses.add(op)
            if instr.has_result:
                defs.add(instr)
        use_sets[block] = uses
        def_sets[block] = defs

    live_in: Dict[BasicBlock, Set[Value]] = {b: set() for b in blocks}
    live_out: Dict[BasicBlock, Set[Value]] = {b: set() for b in blocks}

    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            out: Set[Value] = set()
            for succ in block.successors:
                out |= live_in.get(succ, set())
                out |= phi_uses.get(succ, {}).get(block, set())
            new_in = use_sets[block] | (out - def_sets[block])
            if out != live_out[block] or new_in != live_in[block]:
                live_out[block] = out
                live_in[block] = new_in
                changed = True

    return LivenessInfo(
        live_in={b: frozenset(s) for b, s in live_in.items()},
        live_out={b: frozenset(s) for b, s in live_out.items()},
    )
