"""SCL AST → IR code generation.

Produces alloca-based IR (every scalar local lives in a stack slot); the
mem2reg pass (:mod:`repro.frontend.mem2reg`) then promotes the slots to SSA
registers, which is what makes loop-carried variables visible as phi nodes —
the representation the paper's state-variable analysis operates on.

Type rules (deliberately small):

* ``int`` = i32 (two's complement, wrapping), ``float`` = f64;
* mixed int/float arithmetic promotes to float;
* ``/`` is sdiv on ints and fdiv on floats; ``>>`` is arithmetic shift;
* comparisons yield i1 internally and are materialised as 0/1 ints when used
  as values;
* ``&&``/``||`` short-circuit.

Semantic checking is integrated here rather than in a separate pass — every
rule violation raises :class:`CodegenError` with the source position; this
keeps the frontend one-walk simple while giving usable diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import INTRINSICS
from ..ir.module import Module
from ..ir.types import F64, I1, I32, PTR, VOID, FloatType, IntType, IRType
from ..ir.values import Constant, GlobalVariable, Value
from . import astnodes as ast


class CodegenError(Exception):
    """Raised on semantic errors, with source position."""

    def __init__(self, message: str, node: ast.Node) -> None:
        super().__init__(f"{message} at line {node.line}, column {node.col}")
        self.node = node


#: builtins whose arguments are always promoted to float
_FLOAT_BUILTINS = frozenset({"sqrt", "exp", "log", "sin", "cos", "fabs", "floor", "pow"})
#: builtins that keep their operands' (common) type
_POLY_BUILTINS = frozenset({"abs", "min", "max"})


@dataclass
class ExprValue:
    """A generated expression: the IR value plus pointer element type info."""

    value: Value
    elem_type: Optional[IRType] = None  # set when value is a pointer

    @property
    def type(self) -> IRType:
        return self.value.type


def _surface_to_ir(type_: ast.TypeName, node: ast.Node) -> IRType:
    if type_.is_pointer:
        return PTR
    if type_.base == "int":
        return I32
    if type_.base == "float":
        return F64
    if type_.base == "void":
        return VOID
    raise CodegenError(f"unknown type {type_}", node)


def _elem_ir(type_: ast.TypeName, node: ast.Node) -> IRType:
    if type_.base == "int":
        return I32
    if type_.base == "float":
        return F64
    raise CodegenError(f"arrays/pointers must have int or float elements", node)


class _Scope:
    """Lexically-nested symbol table."""

    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.symbols: Dict[str, Tuple[str, object, Optional[IRType]]] = {}

    def define(self, name: str, kind: str, obj: object, elem: Optional[IRType], node: ast.Node) -> None:
        if name in self.symbols:
            raise CodegenError(f"redefinition of {name!r}", node)
        self.symbols[name] = (kind, obj, elem)

    def lookup(self, name: str) -> Optional[Tuple[str, object, Optional[IRType]]]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class CodeGenerator:
    """Generates one IR module from one SCL program."""

    def __init__(self, program: ast.Program, module_name: str = "scl") -> None:
        self.program = program
        self.module = Module(module_name)
        self.consts: Dict[str, Constant] = {}
        self.builder = IRBuilder()

    def generate(self) -> Module:
        for const in self.program.consts:
            self._declare_const(const)
        for gv in self.program.globals:
            self.module.add_global(
                gv.name,
                _elem_ir(gv.type, gv),
                gv.count,
                initializer=gv.initializer,
                is_input=gv.is_input,
                is_output=gv.is_output,
            )
        # Two passes over functions so forward calls resolve.
        for fdef in self.program.functions:
            self.module.add_function(
                fdef.name,
                _surface_to_ir(fdef.return_type, fdef),
                [(_surface_to_ir(p.type, p), p.name) for p in fdef.params],
            )
        for fdef in self.program.functions:
            self._gen_function(fdef)
        return self.module

    def _declare_const(self, const: ast.ConstDecl) -> None:
        if const.name in self.consts:
            raise CodegenError(f"redefinition of const {const.name!r}", const)
        ir_type = _surface_to_ir(const.type, const)
        if ir_type is I32:
            self.consts[const.name] = Constant(I32, int(const.value))  # type: ignore[arg-type]
        elif ir_type is F64:
            self.consts[const.name] = Constant(F64, float(const.value))  # type: ignore[arg-type]
        else:
            raise CodegenError("const must be int or float", const)

    # -- functions -------------------------------------------------------------------

    def _gen_function(self, fdef: ast.FunctionDef) -> None:
        fn = self.module.function(fdef.name)
        self._fn = fn
        self._return_type = fn.return_type
        entry = fn.add_block("entry")
        self.builder.set_block(entry)
        self._break_targets: List[BasicBlock] = []
        self._continue_targets: List[BasicBlock] = []
        self._terminated = False

        scope = _Scope()
        for gv in self.module.globals.values():
            scope.symbols[gv.name] = ("global", gv, gv.elem_type)
        for name, const in self.consts.items():
            scope.symbols[name] = ("const", const, None)

        fn_scope = _Scope(scope)
        # Parameters are copied into stack slots so they are assignable;
        # mem2reg promotes the slots right back to registers.
        for param, arg in zip(fdef.params, fn.args):
            slot = self.builder.alloca(arg.type, 1, name=f"{param.name}.addr")
            self.builder.store(arg, slot)
            elem = _elem_ir(param.type, param) if param.type.is_pointer else None
            fn_scope.define(param.name, "slot", slot, elem, param)

        self._gen_body(fdef.body, fn_scope)

        if not self._terminated:
            if self._return_type is VOID:
                self.builder.ret()
            else:
                # C-style fall-off-the-end: return a zero of the return type.
                self.builder.ret(Constant(self._return_type, 0))

    def _gen_body(self, stmts: List[ast.Node], scope: _Scope) -> None:
        inner = _Scope(scope)
        for stmt in stmts:
            if self._terminated:
                return  # unreachable code after return/break/continue: dropped
            self._gen_statement(stmt, inner)

    # -- statements --------------------------------------------------------------------

    def _gen_statement(self, stmt: ast.Node, scope: _Scope) -> None:
        if isinstance(stmt, ast.DeclStmt):
            self._gen_decl(stmt, scope)
        elif isinstance(stmt, ast.AssignStmt):
            self._gen_assign(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._gen_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.IfStmt):
            self._gen_if(stmt, scope)
        elif isinstance(stmt, ast.WhileStmt):
            self._gen_while(stmt, scope)
        elif isinstance(stmt, ast.ForStmt):
            self._gen_for(stmt, scope)
        elif isinstance(stmt, ast.ReturnStmt):
            self._gen_return(stmt, scope)
        elif isinstance(stmt, ast.BreakStmt):
            if not self._break_targets:
                raise CodegenError("break outside loop", stmt)
            self.builder.br(self._break_targets[-1])
            self._terminated = True
        elif isinstance(stmt, ast.ContinueStmt):
            if not self._continue_targets:
                raise CodegenError("continue outside loop", stmt)
            self.builder.br(self._continue_targets[-1])
            self._terminated = True
        else:
            raise CodegenError(f"unsupported statement {type(stmt).__name__}", stmt)

    def _gen_decl(self, stmt: ast.DeclStmt, scope: _Scope) -> None:
        elem = _elem_ir(stmt.type, stmt)
        if stmt.type.is_pointer:
            raise CodegenError("local pointers are not supported", stmt)
        if stmt.array_size is not None:
            slot = self.builder.alloca(elem, stmt.array_size, name=stmt.name)
            scope.define(stmt.name, "array", slot, elem, stmt)
            return
        slot = self.builder.alloca(elem, 1, name=f"{stmt.name}.addr")
        scope.define(stmt.name, "slot", slot, None, stmt)
        if stmt.init is not None:
            value = self._coerce(self._gen_expr(stmt.init, scope), elem, stmt)
            self.builder.store(value, slot)

    def _gen_assign(self, stmt: ast.AssignStmt, scope: _Scope) -> None:
        addr, elem = self._gen_lvalue(stmt.target, scope)
        rhs = self._gen_expr(stmt.value, scope)
        if stmt.op:
            current = ExprValue(self.builder.load(elem, addr))
            combined = self._binary_op(stmt.op, current, rhs, stmt)
            value = self._coerce(combined, elem, stmt)
        else:
            value = self._coerce(rhs, elem, stmt)
        self.builder.store(value, addr)

    def _gen_lvalue(self, target: ast.Node, scope: _Scope) -> Tuple[Value, IRType]:
        """Returns (address, element type) of an assignable location."""
        if isinstance(target, ast.NameRef):
            sym = scope.lookup(target.name)
            if sym is None:
                raise CodegenError(f"undefined variable {target.name!r}", target)
            kind, obj, elem = sym
            if kind == "slot":
                return obj, obj.elem_type  # type: ignore[union-attr, return-value]
            raise CodegenError(f"{target.name!r} is not an assignable scalar", target)
        if isinstance(target, ast.IndexExpr):
            base = self._gen_indexable(target.base, scope)
            index = self._gen_expr(target.index, scope)
            if not isinstance(index.type, IntType):
                raise CodegenError("array index must be an integer", target)
            assert base.elem_type is not None
            addr = self.builder.gep(base.value, index.value, base.elem_type)
            return addr, base.elem_type
        raise CodegenError("invalid assignment target", target)

    def _gen_indexable(self, base: ast.Node, scope: _Scope) -> ExprValue:
        """An expression usable as an array base (global, local array, pointer)."""
        if isinstance(base, ast.NameRef):
            sym = scope.lookup(base.name)
            if sym is None:
                raise CodegenError(f"undefined variable {base.name!r}", base)
            kind, obj, elem = sym
            if kind == "global":
                return ExprValue(obj, elem)  # type: ignore[arg-type]
            if kind == "array":
                return ExprValue(obj, elem)  # type: ignore[arg-type]
            if kind == "slot" and elem is not None:  # pointer parameter
                ptr = self.builder.load(PTR, obj)  # type: ignore[arg-type]
                return ExprValue(ptr, elem)
            raise CodegenError(f"{base.name!r} is not indexable", base)
        raise CodegenError("only named arrays/pointers can be indexed", base)

    def _gen_if(self, stmt: ast.IfStmt, scope: _Scope) -> None:
        fn = self._fn
        cond = self._gen_condition(stmt.cond, scope)
        then_bb = fn.add_block("if.then")
        else_bb = fn.add_block("if.else") if stmt.else_body else None
        merge_bb = fn.add_block("if.end")
        # NB: BasicBlock defines __len__, so `else_bb or merge_bb` would treat
        # an empty else block as falsy — compare against None explicitly.
        false_target = merge_bb if else_bb is None else else_bb
        self.builder.condbr(cond, then_bb, false_target)

        self.builder.set_block(then_bb)
        self._terminated = False
        self._gen_body(stmt.then_body, scope)
        then_terminated = self._terminated
        if not then_terminated:
            self.builder.br(merge_bb)

        else_terminated = False
        if else_bb is not None:
            self.builder.set_block(else_bb)
            self._terminated = False
            self._gen_body(stmt.else_body, scope)
            else_terminated = self._terminated
            if not else_terminated:
                self.builder.br(merge_bb)

        if then_terminated and (else_bb is not None and else_terminated):
            # both arms leave; the merge block is unreachable — drop it
            fn.blocks.remove(merge_bb)
            self._terminated = True
        else:
            self.builder.set_block(merge_bb)
            self._terminated = False

    def _gen_while(self, stmt: ast.WhileStmt, scope: _Scope) -> None:
        fn = self._fn
        header = fn.add_block("while.cond")
        body = fn.add_block("while.body")
        exit_bb = fn.add_block("while.end")
        self.builder.br(header)

        self.builder.set_block(header)
        cond = self._gen_condition(stmt.cond, scope)
        self.builder.condbr(cond, body, exit_bb)

        self.builder.set_block(body)
        self._break_targets.append(exit_bb)
        self._continue_targets.append(header)
        self._terminated = False
        self._gen_body(stmt.body, scope)
        if not self._terminated:
            self.builder.br(header)
        self._break_targets.pop()
        self._continue_targets.pop()

        self.builder.set_block(exit_bb)
        self._terminated = False

    def _gen_for(self, stmt: ast.ForStmt, scope: _Scope) -> None:
        fn = self._fn
        loop_scope = _Scope(scope)
        if stmt.init is not None:
            self._gen_statement(stmt.init, loop_scope)
        header = fn.add_block("for.cond")
        body = fn.add_block("for.body")
        step_bb = fn.add_block("for.step")
        exit_bb = fn.add_block("for.end")
        self.builder.br(header)

        self.builder.set_block(header)
        if stmt.cond is not None:
            cond = self._gen_condition(stmt.cond, loop_scope)
            self.builder.condbr(cond, body, exit_bb)
        else:
            self.builder.br(body)

        self.builder.set_block(body)
        self._break_targets.append(exit_bb)
        self._continue_targets.append(step_bb)
        self._terminated = False
        self._gen_body(stmt.body, loop_scope)
        if not self._terminated:
            self.builder.br(step_bb)
        self._break_targets.pop()
        self._continue_targets.pop()

        self.builder.set_block(step_bb)
        self._terminated = False
        if stmt.step is not None:
            self._gen_statement(stmt.step, loop_scope)
        self.builder.br(header)

        self.builder.set_block(exit_bb)
        self._terminated = False

    def _gen_return(self, stmt: ast.ReturnStmt, scope: _Scope) -> None:
        if self._return_type is VOID:
            if stmt.value is not None:
                raise CodegenError("void function cannot return a value", stmt)
            self.builder.ret()
        else:
            if stmt.value is None:
                raise CodegenError("non-void function must return a value", stmt)
            value = self._coerce(self._gen_expr(stmt.value, scope), self._return_type, stmt)
            self.builder.ret(value)
        self._terminated = True

    # -- expressions ---------------------------------------------------------------------

    def _gen_expr(self, expr: ast.Node, scope: _Scope) -> ExprValue:
        if isinstance(expr, ast.IntLiteral):
            return ExprValue(Constant(I32, expr.value))
        if isinstance(expr, ast.FloatLiteral):
            return ExprValue(Constant(F64, expr.value))
        if isinstance(expr, ast.NameRef):
            return self._gen_name(expr, scope)
        if isinstance(expr, ast.IndexExpr):
            base = self._gen_indexable(expr.base, scope)
            index = self._gen_expr(expr.index, scope)
            if not isinstance(index.type, IntType):
                raise CodegenError("array index must be an integer", expr)
            assert base.elem_type is not None
            addr = self.builder.gep(base.value, index.value, base.elem_type)
            return ExprValue(self.builder.load(base.elem_type, addr))
        if isinstance(expr, ast.UnaryExpr):
            return self._gen_unary(expr, scope)
        if isinstance(expr, ast.BinaryExpr):
            if expr.op in ("&&", "||"):
                return self._gen_short_circuit(expr, scope)
            lhs = self._gen_expr(expr.lhs, scope)
            rhs = self._gen_expr(expr.rhs, scope)
            return self._binary_op(expr.op, lhs, rhs, expr)
        if isinstance(expr, ast.TernaryExpr):
            return self._gen_ternary(expr, scope)
        if isinstance(expr, ast.CastExpr):
            value = self._gen_expr(expr.operand, scope)
            target = _surface_to_ir(expr.target, expr)
            return ExprValue(self._coerce(value, target, expr))
        if isinstance(expr, ast.CallExpr):
            return self._gen_call(expr, scope)
        raise CodegenError(f"unsupported expression {type(expr).__name__}", expr)

    def _gen_name(self, expr: ast.NameRef, scope: _Scope) -> ExprValue:
        sym = scope.lookup(expr.name)
        if sym is None:
            raise CodegenError(f"undefined variable {expr.name!r}", expr)
        kind, obj, elem = sym
        if kind == "const":
            return ExprValue(obj)  # type: ignore[arg-type]
        if kind == "slot":
            if elem is not None:  # pointer parameter used as a value
                return ExprValue(self.builder.load(PTR, obj), elem)  # type: ignore[arg-type]
            return ExprValue(self.builder.load(obj.elem_type, obj))  # type: ignore[union-attr, arg-type]
        if kind in ("global", "array"):
            return ExprValue(obj, elem)  # type: ignore[arg-type]
        raise CodegenError(f"cannot read {expr.name!r}", expr)

    def _gen_unary(self, expr: ast.UnaryExpr, scope: _Scope) -> ExprValue:
        operand = self._gen_expr(expr.operand, scope)
        if expr.op == "-":
            if isinstance(operand.type, FloatType):
                return ExprValue(self.builder.fsub(Constant(F64, 0.0), operand.value))
            if isinstance(operand.type, IntType):
                v = self._as_int(operand, expr)
                return ExprValue(self.builder.sub(Constant(I32, 0), v))
            raise CodegenError("cannot negate this type", expr)
        if expr.op == "~":
            v = self._as_int(operand, expr)
            return ExprValue(self.builder.xor(v, Constant(I32, -1)))
        if expr.op == "!":
            cond = self._to_condition(operand, expr)
            flipped = self.builder.icmp("eq", cond, Constant(I1, 0))
            return ExprValue(flipped)
        raise CodegenError(f"unsupported unary operator {expr.op!r}", expr)

    def _gen_short_circuit(self, expr: ast.BinaryExpr, scope: _Scope) -> ExprValue:
        fn = self._fn
        lhs = self._gen_condition(expr.lhs, scope)
        lhs_block = self.builder.block
        rhs_bb = fn.add_block("sc.rhs")
        merge_bb = fn.add_block("sc.end")
        if expr.op == "&&":
            self.builder.condbr(lhs, rhs_bb, merge_bb)
            short_value = Constant(I1, 0)
        else:
            self.builder.condbr(lhs, merge_bb, rhs_bb)
            short_value = Constant(I1, 1)

        self.builder.set_block(rhs_bb)
        rhs = self._gen_condition(expr.rhs, scope)
        rhs_exit = self.builder.block
        self.builder.br(merge_bb)

        self.builder.set_block(merge_bb)
        phi = self.builder.phi(I1)
        phi.add_incoming(short_value, lhs_block)
        phi.add_incoming(rhs, rhs_exit)
        return ExprValue(phi)

    def _gen_ternary(self, expr: ast.TernaryExpr, scope: _Scope) -> ExprValue:
        fn = self._fn
        cond = self._gen_condition(expr.cond, scope)
        then_bb = fn.add_block("sel.then")
        else_bb = fn.add_block("sel.else")
        merge_bb = fn.add_block("sel.end")
        self.builder.condbr(cond, then_bb, else_bb)

        self.builder.set_block(then_bb)
        tval = self._gen_expr(expr.if_true, scope)
        then_exit = self.builder.block

        self.builder.set_block(else_bb)
        fval = self._gen_expr(expr.if_false, scope)
        else_exit = self.builder.block

        # unify types: float wins
        common: IRType = tval.type
        if isinstance(tval.type, FloatType) or isinstance(fval.type, FloatType):
            common = F64
        elif isinstance(tval.type, IntType) and tval.type.bits == 1:
            common = fval.type if not fval.type.is_bool else I1

        self.builder.set_block(then_exit)
        t = self._coerce(tval, common, expr)
        self.builder.br(merge_bb)
        self.builder.set_block(else_exit)
        f = self._coerce(fval, common, expr)
        self.builder.br(merge_bb)

        self.builder.set_block(merge_bb)
        phi = self.builder.phi(common)
        phi.add_incoming(t, then_exit)
        phi.add_incoming(f, else_exit)
        return ExprValue(phi)

    def _gen_call(self, expr: ast.CallExpr, scope: _Scope) -> ExprValue:
        name = expr.callee
        args = [self._gen_expr(a, scope) for a in expr.args]

        if name in INTRINSICS:
            _, arity = INTRINSICS[name]
            if len(args) != arity:
                raise CodegenError(f"{name}() expects {arity} argument(s)", expr)
            if name in _FLOAT_BUILTINS:
                values = [self._coerce(a, F64, expr) for a in args]
            else:  # polymorphic: unify to a common numeric type
                if any(isinstance(a.type, FloatType) for a in args):
                    values = [self._coerce(a, F64, expr) for a in args]
                else:
                    values = [self._as_int(a, expr) for a in args]
            return ExprValue(self.builder.intrinsic(name, values))

        if name not in self.module.functions:
            raise CodegenError(f"call to undefined function {name!r}", expr)
        callee = self.module.function(name)
        if len(args) != len(callee.args):
            raise CodegenError(
                f"{name}() expects {len(callee.args)} argument(s), got {len(args)}", expr
            )
        values = []
        for arg_expr, formal in zip(args, callee.args):
            if formal.type is PTR:
                if arg_expr.type is not PTR:
                    raise CodegenError(f"argument {formal.name!r} must be a pointer", expr)
                values.append(arg_expr.value)
            else:
                values.append(self._coerce(arg_expr, formal.type, expr))
        return ExprValue(self.builder.call(callee, values))

    # -- conversions and operators ---------------------------------------------------------

    def _gen_condition(self, expr: ast.Node, scope: _Scope) -> Value:
        return self._to_condition(self._gen_expr(expr, scope), expr)

    def _to_condition(self, ev: ExprValue, node: ast.Node) -> Value:
        t = ev.type
        if isinstance(t, IntType):
            if t.bits == 1:
                return ev.value
            return self.builder.icmp("ne", ev.value, Constant(t, 0))
        if isinstance(t, FloatType):
            return self.builder.fcmp("one", ev.value, Constant(F64, 0.0))
        raise CodegenError("condition must be numeric", node)

    def _as_int(self, ev: ExprValue, node: ast.Node) -> Value:
        t = ev.type
        if isinstance(t, IntType):
            if t.bits == 1:
                return self.builder.cast("zext", ev.value, I32)
            return ev.value
        raise CodegenError("expected an integer value", node)

    def _coerce(self, ev: ExprValue, target: IRType, node: ast.Node) -> Value:
        t = ev.type
        if t is target:
            return ev.value
        if isinstance(t, IntType) and target is F64:
            v = self.builder.cast("zext", ev.value, I32) if t.bits == 1 else ev.value
            return self.builder.sitofp(v, F64)
        if isinstance(t, FloatType) and target is I32:
            return self.builder.fptosi(ev.value, I32)
        if isinstance(t, IntType) and isinstance(target, IntType):
            return self.builder.int_cast(ev.value, target, signed=t.bits > 1)
        raise CodegenError(f"cannot convert {t} to {target}", node)

    _CMP_PRED = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle", ">": "sgt", ">=": "sge"}
    _FCMP_PRED = {"==": "oeq", "!=": "one", "<": "olt", "<=": "ole", ">": "ogt", ">=": "oge"}
    _INT_OPS = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem",
                "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "ashr"}
    _FLOAT_OPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv", "%": "frem"}

    def _binary_op(self, op: str, lhs: ExprValue, rhs: ExprValue, node: ast.Node) -> ExprValue:
        is_float = isinstance(lhs.type, FloatType) or isinstance(rhs.type, FloatType)
        if op in self._CMP_PRED:
            if is_float:
                a = self._coerce(lhs, F64, node)
                b = self._coerce(rhs, F64, node)
                return ExprValue(self.builder.fcmp(self._FCMP_PRED[op], a, b))
            a = self._as_int(lhs, node)
            b = self._as_int(rhs, node)
            return ExprValue(self.builder.icmp(self._CMP_PRED[op], a, b))
        if is_float:
            if op not in self._FLOAT_OPS:
                raise CodegenError(f"operator {op!r} is not defined on floats", node)
            a = self._coerce(lhs, F64, node)
            b = self._coerce(rhs, F64, node)
            return ExprValue(self.builder.binop(self._FLOAT_OPS[op], a, b))
        if op not in self._INT_OPS:
            raise CodegenError(f"unsupported operator {op!r}", node)
        a = self._as_int(lhs, node)
        b = self._as_int(rhs, node)
        return ExprValue(self.builder.binop(self._INT_OPS[op], a, b))
