"""Lexer for SCL (Soft-Computing Language), the repo's small C-like language.

SCL is the source language the 13 benchmark kernels are written in — the
stand-in for the C sources the paper compiles with LLVM.  The lexer produces a
flat token stream with line/column positions for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

KEYWORDS = frozenset(
    {
        "int", "float", "void",
        "if", "else", "while", "for", "return", "break", "continue",
        "input", "output", "const",
    }
)

#: multi-character operators, longest first so maximal munch works
MULTI_OPS = (
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "++", "--",
)

SINGLE_OPS = "+-*/%&|^~!<>=(){}[];,?:"


class LexError(Exception):
    """Raised on malformed input, with source position."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{message} at line {line}, column {col}")
        self.line = line
        self.col = col


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of: ``'int_lit'``, ``'float_lit'``, ``'ident'``,
    ``'keyword'``, ``'op'``, ``'eof'``.  ``text`` is the exact source
    spelling; literals also carry their parsed ``value``.
    """

    kind: str
    text: str
    line: int
    col: int
    value: object = None

    def is_op(self, text: str) -> bool:
        return self.kind == "op" and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == "keyword" and self.text == text

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    """Tokenize SCL source; raises :class:`LexError` on bad input."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]

        # whitespace
        if ch in " \t\r\n":
            advance(1)
            continue

        # comments: // line and /* block */
        if ch == "/" and i + 1 < n:
            if source[i + 1] == "/":
                while i < n and source[i] != "\n":
                    advance(1)
                continue
            if source[i + 1] == "*":
                start_line, start_col = line, col
                advance(2)
                while i + 1 < n and not (source[i] == "*" and source[i + 1] == "/"):
                    advance(1)
                if i + 1 >= n:
                    raise LexError("unterminated block comment", start_line, start_col)
                advance(2)
                continue

        # numbers (ints, hex ints, floats)
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            tokens.append(_lex_number(source, i, line, col))
            advance(len(tokens[-1].text))
            continue

        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            advance(j - i)
            continue

        # operators
        matched: Optional[str] = None
        for op in MULTI_OPS:
            if source.startswith(op, i):
                matched = op
                break
        if matched is None and ch in SINGLE_OPS:
            matched = ch
        if matched is not None:
            tokens.append(Token("op", matched, line, col))
            advance(len(matched))
            continue

        raise LexError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token("eof", "", line, col))
    return tokens


def _lex_number(source: str, i: int, line: int, col: int) -> Token:
    n = len(source)
    j = i
    # hex literal
    if source.startswith(("0x", "0X"), i):
        j = i + 2
        while j < n and (source[j].isdigit() or source[j].lower() in "abcdef"):
            j += 1
        if j == i + 2:
            raise LexError("malformed hex literal", line, col)
        text = source[i:j]
        return Token("int_lit", text, line, col, value=int(text, 16))

    while j < n and source[j].isdigit():
        j += 1
    is_float = False
    if j < n and source[j] == ".":
        is_float = True
        j += 1
        while j < n and source[j].isdigit():
            j += 1
    if j < n and source[j] in "eE":
        k = j + 1
        if k < n and source[k] in "+-":
            k += 1
        if k < n and source[k].isdigit():
            is_float = True
            j = k
            while j < n and source[j].isdigit():
                j += 1
    text = source[i:j]
    if is_float:
        return Token("float_lit", text, line, col, value=float(text))
    return Token("int_lit", text, line, col, value=int(text))
