"""Recursive-descent parser for SCL.

The grammar is a compact C subset: global arrays (with ``input`` / ``output``
qualifiers marking workload I/O), compile-time constants, functions with
scalar/pointer parameters, the usual statements (declarations, assignments,
``if``/``while``/``for``, ``return``, ``break``, ``continue``), and C
expression syntax with standard precedence, the ternary operator, casts, and
calls (user functions and math builtins).
"""

from __future__ import annotations

from typing import List, Optional

from .astnodes import (
    AssignStmt,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    CastExpr,
    ConstDecl,
    ContinueStmt,
    DeclStmt,
    Expr,
    ExprStmt,
    FloatLiteral,
    ForStmt,
    FunctionDef,
    GlobalDecl,
    IfStmt,
    IndexExpr,
    IntLiteral,
    NameRef,
    Param,
    Program,
    ReturnStmt,
    TernaryExpr,
    TypeName,
    UnaryExpr,
    WhileStmt,
)
from .lexer import Token, tokenize


class ParseError(Exception):
    """Raised on syntax errors, with source position."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{message} at line {token.line}, column {token.col} (near {token.text!r})")
        self.token = token


_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

#: binary operator precedence levels, low to high
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ---------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect_op(self, text: str) -> Token:
        tok = self.current
        if not tok.is_op(text):
            raise ParseError(f"expected {text!r}", tok)
        return self.advance()

    def expect_ident(self) -> Token:
        tok = self.current
        if tok.kind != "ident":
            raise ParseError("expected identifier", tok)
        return self.advance()

    def at_type(self) -> bool:
        return self.current.kind == "keyword" and self.current.text in ("int", "float", "void")

    # -- top level ----------------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program(1, 1)
        while self.current.kind != "eof":
            tok = self.current
            if tok.is_keyword("const"):
                program.consts.append(self._parse_const())
            elif tok.is_keyword("input") or tok.is_keyword("output"):
                program.globals.append(self._parse_global())
            elif self.at_type():
                # Disambiguate global array vs. function by the token after
                # the name: '[' = global array, '(' = function.
                after_name = self.peek(2)
                if after_name.is_op("["):
                    program.globals.append(self._parse_global())
                else:
                    program.functions.append(self._parse_function())
            else:
                raise ParseError("expected declaration or function", tok)
        return program

    def _parse_type(self) -> TypeName:
        tok = self.current
        if not self.at_type():
            raise ParseError("expected type name", tok)
        self.advance()
        is_pointer = False
        if self.current.is_op("*"):
            self.advance()
            is_pointer = True
        return TypeName(tok.text, is_pointer)

    def _parse_const(self) -> ConstDecl:
        start = self.advance()  # 'const'
        type_ = self._parse_type()
        name = self.expect_ident().text
        self.expect_op("=")
        value = self._parse_literal_value()
        self.expect_op(";")
        return ConstDecl(start.line, start.col, type=type_, name=name, value=value)

    def _parse_literal_value(self):
        """A literal, optionally negated (for const and array initialisers)."""
        neg = False
        if self.current.is_op("-"):
            self.advance()
            neg = True
        tok = self.current
        if tok.kind not in ("int_lit", "float_lit"):
            raise ParseError("expected literal", tok)
        self.advance()
        value = tok.value
        return -value if neg else value  # type: ignore[operator]

    def _parse_global(self) -> GlobalDecl:
        start = self.current
        is_input = is_output = False
        if start.is_keyword("input"):
            is_input = True
            self.advance()
        elif start.is_keyword("output"):
            is_output = True
            self.advance()
        type_ = self._parse_type()
        if type_.is_pointer or type_.base == "void":
            raise ParseError("global arrays must have int or float elements", start)
        name = self.expect_ident().text
        self.expect_op("[")
        size_tok = self.current
        if size_tok.kind != "int_lit":
            raise ParseError("global array size must be an integer literal", size_tok)
        self.advance()
        self.expect_op("]")
        initializer: Optional[List[float]] = None
        if self.current.is_op("="):
            self.advance()
            self.expect_op("{")
            initializer = []
            if not self.current.is_op("}"):
                initializer.append(self._parse_literal_value())
                while self.current.is_op(","):
                    self.advance()
                    if self.current.is_op("}"):
                        break  # trailing comma
                    initializer.append(self._parse_literal_value())
            self.expect_op("}")
        self.expect_op(";")
        return GlobalDecl(
            start.line, start.col,
            type=type_, name=name, count=size_tok.value,  # type: ignore[arg-type]
            initializer=initializer, is_input=is_input, is_output=is_output,
        )

    def _parse_function(self) -> FunctionDef:
        start = self.current
        return_type = self._parse_type()
        name = self.expect_ident().text
        self.expect_op("(")
        params: List[Param] = []
        if not self.current.is_op(")"):
            params.append(self._parse_param())
            while self.current.is_op(","):
                self.advance()
                params.append(self._parse_param())
        self.expect_op(")")
        body = self._parse_block()
        return FunctionDef(start.line, start.col, return_type=return_type,
                           name=name, params=params, body=body)

    def _parse_param(self) -> Param:
        start = self.current
        type_ = self._parse_type()
        if type_.base == "void":
            raise ParseError("parameters may not be void", start)
        name = self.expect_ident().text
        return Param(start.line, start.col, type=type_, name=name)

    # -- statements --------------------------------------------------------------------

    def _parse_block(self) -> List:
        self.expect_op("{")
        stmts: List = []
        while not self.current.is_op("}"):
            if self.current.kind == "eof":
                raise ParseError("unterminated block", self.current)
            stmts.append(self._parse_statement())
        self.advance()
        return stmts

    def _parse_statement(self):
        tok = self.current
        if tok.is_op("{"):
            # A bare block: flatten into an if(1)-like sequence is unnecessary;
            # represent as an IfStmt with constant-true? Simpler: inline list.
            inner = self._parse_block()
            return IfStmt(tok.line, tok.col, cond=IntLiteral(tok.line, tok.col, 1),
                          then_body=inner)
        if self.at_type():
            return self._parse_decl()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("return"):
            self.advance()
            value = None
            if not self.current.is_op(";"):
                value = self._parse_expr()
            self.expect_op(";")
            return ReturnStmt(tok.line, tok.col, value=value)
        if tok.is_keyword("break"):
            self.advance()
            self.expect_op(";")
            return BreakStmt(tok.line, tok.col)
        if tok.is_keyword("continue"):
            self.advance()
            self.expect_op(";")
            return ContinueStmt(tok.line, tok.col)
        stmt = self._parse_simple_statement()
        self.expect_op(";")
        return stmt

    def _parse_decl(self) -> DeclStmt:
        start = self.current
        type_ = self._parse_type()
        name = self.expect_ident().text
        if self.current.is_op("["):
            self.advance()
            size_tok = self.current
            if size_tok.kind != "int_lit":
                raise ParseError("local array size must be an integer literal", size_tok)
            self.advance()
            self.expect_op("]")
            self.expect_op(";")
            return DeclStmt(start.line, start.col, type=type_, name=name,
                            array_size=size_tok.value)  # type: ignore[arg-type]
        init = None
        if self.current.is_op("="):
            self.advance()
            init = self._parse_expr()
        self.expect_op(";")
        return DeclStmt(start.line, start.col, type=type_, name=name, init=init)

    def _parse_simple_statement(self):
        """Assignment, increment/decrement, or expression statement (no ';')."""
        start = self.current
        expr = self._parse_expr()
        tok = self.current
        if tok.kind == "op" and tok.text in _ASSIGN_OPS:
            if not isinstance(expr, (NameRef, IndexExpr)):
                raise ParseError("assignment target must be a variable or element", tok)
            self.advance()
            value = self._parse_expr()
            op = "" if tok.text == "=" else tok.text[:-1]
            return AssignStmt(start.line, start.col, target=expr, op=op, value=value)
        if tok.is_op("++") or tok.is_op("--"):
            if not isinstance(expr, (NameRef, IndexExpr)):
                raise ParseError("increment target must be a variable or element", tok)
            self.advance()
            delta = IntLiteral(tok.line, tok.col, 1)
            return AssignStmt(start.line, start.col, target=expr,
                              op="+" if tok.text == "++" else "-", value=delta)
        return ExprStmt(start.line, start.col, expr=expr)

    def _parse_if(self) -> IfStmt:
        start = self.advance()  # 'if'
        self.expect_op("(")
        cond = self._parse_expr()
        self.expect_op(")")
        then_body = self._parse_body_or_single()
        else_body: List = []
        if self.current.is_keyword("else"):
            self.advance()
            else_body = self._parse_body_or_single()
        return IfStmt(start.line, start.col, cond=cond, then_body=then_body,
                      else_body=else_body)

    def _parse_while(self) -> WhileStmt:
        start = self.advance()
        self.expect_op("(")
        cond = self._parse_expr()
        self.expect_op(")")
        body = self._parse_body_or_single()
        return WhileStmt(start.line, start.col, cond=cond, body=body)

    def _parse_for(self) -> ForStmt:
        start = self.advance()
        self.expect_op("(")
        init = None
        if not self.current.is_op(";"):
            if self.at_type():
                init = self._parse_decl()  # consumes the ';'
            else:
                init = self._parse_simple_statement()
                self.expect_op(";")
        else:
            self.advance()
        cond = None
        if not self.current.is_op(";"):
            cond = self._parse_expr()
        self.expect_op(";")
        step = None
        if not self.current.is_op(")"):
            step = self._parse_simple_statement()
        self.expect_op(")")
        body = self._parse_body_or_single()
        return ForStmt(start.line, start.col, init=init, cond=cond, step=step, body=body)

    def _parse_body_or_single(self) -> List:
        if self.current.is_op("{"):
            return self._parse_block()
        return [self._parse_statement()]

    # -- expressions ----------------------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> Expr:
        cond = self._parse_binary(0)
        if self.current.is_op("?"):
            start = self.advance()
            if_true = self._parse_expr()
            self.expect_op(":")
            if_false = self._parse_ternary()
            return TernaryExpr(start.line, start.col, cond=cond,
                               if_true=if_true, if_false=if_false)
        return cond

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        ops = _BINARY_LEVELS[level]
        lhs = self._parse_binary(level + 1)
        while self.current.kind == "op" and self.current.text in ops:
            tok = self.advance()
            rhs = self._parse_binary(level + 1)
            lhs = BinaryExpr(tok.line, tok.col, op=tok.text, lhs=lhs, rhs=rhs)
        return lhs

    def _parse_unary(self) -> Expr:
        tok = self.current
        if tok.kind == "op" and tok.text in ("-", "!", "~"):
            self.advance()
            operand = self._parse_unary()
            return UnaryExpr(tok.line, tok.col, op=tok.text, operand=operand)
        # cast: '(' type ')' unary
        if tok.is_op("(") and self.peek().kind == "keyword" and self.peek().text in ("int", "float"):
            # Distinguish a cast from a parenthesised expression: the token
            # after the type must be ')'.
            if self.peek(2).is_op(")"):
                self.advance()
                target = self._parse_type()
                self.expect_op(")")
                operand = self._parse_unary()
                return CastExpr(tok.line, tok.col, target=target, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            tok = self.current
            if tok.is_op("["):
                self.advance()
                index = self._parse_expr()
                self.expect_op("]")
                expr = IndexExpr(tok.line, tok.col, base=expr, index=index)
            else:
                return expr

    def _parse_primary(self) -> Expr:
        tok = self.current
        if tok.kind == "int_lit":
            self.advance()
            return IntLiteral(tok.line, tok.col, tok.value)  # type: ignore[arg-type]
        if tok.kind == "float_lit":
            self.advance()
            return FloatLiteral(tok.line, tok.col, tok.value)  # type: ignore[arg-type]
        if tok.kind == "ident":
            self.advance()
            if self.current.is_op("("):
                self.advance()
                args: List[Expr] = []
                if not self.current.is_op(")"):
                    args.append(self._parse_expr())
                    while self.current.is_op(","):
                        self.advance()
                        args.append(self._parse_expr())
                self.expect_op(")")
                return CallExpr(tok.line, tok.col, callee=tok.text, args=args)
            return NameRef(tok.line, tok.col, name=tok.text)
        if tok.is_op("("):
            self.advance()
            expr = self._parse_expr()
            self.expect_op(")")
            return expr
        raise ParseError("expected expression", tok)


def parse(source: str) -> Program:
    """Parse SCL source text into an AST."""
    return Parser(tokenize(source)).parse_program()
