"""SCL frontend: lexer, parser, code generator, and mem2reg SSA construction.

SCL (Soft-Computing Language) is the C-like source language the benchmark
kernels are written in; :func:`compile_source` turns SCL text into a verified
SSA module ready for the protection transforms.
"""

from .codegen import CodegenError, CodeGenerator
from .compiler import compile_source
from .lexer import LexError, Token, tokenize
from .mem2reg import promote_allocas, promote_module
from .parser import ParseError, Parser, parse

__all__ = [
    "CodegenError", "CodeGenerator",
    "compile_source",
    "LexError", "Token", "tokenize",
    "promote_allocas", "promote_module",
    "ParseError", "Parser", "parse",
]
