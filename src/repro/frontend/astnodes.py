"""AST node definitions for SCL.

Plain dataclasses; no behaviour beyond printing.  Types at this level are the
surface types ``int`` (→ i32), ``float`` (→ f64), ``void``, and pointers to
the element types (function parameters only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class TypeName:
    """Surface type: base ('int' | 'float' | 'void') plus pointer flag."""

    base: str
    is_pointer: bool = False

    def __str__(self) -> str:
        return f"{self.base}*" if self.is_pointer else self.base


@dataclass
class Node:
    """Base AST node with source position."""

    line: int
    col: int


# -- expressions ------------------------------------------------------------------


@dataclass
class IntLiteral(Node):
    value: int


@dataclass
class FloatLiteral(Node):
    value: float


@dataclass
class NameRef(Node):
    name: str


@dataclass
class IndexExpr(Node):
    base: "Expr"
    index: "Expr"


@dataclass
class UnaryExpr(Node):
    op: str  # '-', '!', '~'
    operand: "Expr"


@dataclass
class BinaryExpr(Node):
    op: str  # arithmetic / comparison / logical / bitwise
    lhs: "Expr"
    rhs: "Expr"


@dataclass
class TernaryExpr(Node):
    cond: "Expr"
    if_true: "Expr"
    if_false: "Expr"


@dataclass
class CastExpr(Node):
    target: TypeName
    operand: "Expr"


@dataclass
class CallExpr(Node):
    callee: str
    args: List["Expr"]


Expr = Node  # informal union alias for readability in signatures


# -- statements --------------------------------------------------------------------


@dataclass
class DeclStmt(Node):
    """Local declaration: scalar (optionally initialised) or fixed-size array."""

    type: TypeName
    name: str
    array_size: Optional[int] = None
    init: Optional[Expr] = None


@dataclass
class AssignStmt(Node):
    """``lvalue op= expr``; ``op`` is '' for plain assignment."""

    target: Expr  # NameRef or IndexExpr
    op: str
    value: Expr


@dataclass
class ExprStmt(Node):
    expr: Expr


@dataclass
class IfStmt(Node):
    cond: Expr
    then_body: List[Node]
    else_body: List[Node] = field(default_factory=list)


@dataclass
class WhileStmt(Node):
    cond: Expr
    body: List[Node]


@dataclass
class ForStmt(Node):
    init: Optional[Node]  # DeclStmt or AssignStmt
    cond: Optional[Expr]
    step: Optional[Node]  # AssignStmt
    body: List[Node]


@dataclass
class ReturnStmt(Node):
    value: Optional[Expr]


@dataclass
class BreakStmt(Node):
    pass


@dataclass
class ContinueStmt(Node):
    pass


# -- top level -----------------------------------------------------------------------


@dataclass
class Param(Node):
    type: TypeName
    name: str


@dataclass
class FunctionDef(Node):
    return_type: TypeName
    name: str
    params: List[Param]
    body: List[Node]


@dataclass
class GlobalDecl(Node):
    """Module-level array: ``[input|output] type name[count] [= {...}];``"""

    type: TypeName
    name: str
    count: int
    initializer: Optional[List[float]] = None
    is_input: bool = False
    is_output: bool = False


@dataclass
class ConstDecl(Node):
    """``const int N = <literal>;`` — substituted at compile time."""

    type: TypeName
    name: str
    value: object = None


@dataclass
class Program(Node):
    globals: List[GlobalDecl] = field(default_factory=list)
    consts: List[ConstDecl] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)
