"""mem2reg: promote stack slots to SSA registers.

The standard SSA-construction pass (Cytron et al.): for every promotable
alloca, place phi nodes at the iterated dominance frontier of its defining
blocks, then rename uses along a dominator-tree walk.  After this pass,
loop-carried locals appear as phi nodes in loop headers — the exact form the
paper's state-variable analysis (Section IV-A) looks for.

Promotable allocas are single-element slots used only as the direct pointer
of loads and stores (never indexed, never stored *as a value*, never passed
to a call).  Local arrays therefore stay in memory, as they should.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.cfg import predecessors_map
from ..analysis.dominators import DominatorTree
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Alloca, Instruction, Load, Phi, Store
from ..ir.module import Module
from ..ir.values import UndefValue, Value


def promote_module(module: Module) -> int:
    """Run mem2reg on every function; returns total allocas promoted."""
    return sum(promote_allocas(fn) for fn in module.functions.values())


def promote_allocas(fn: Function) -> int:
    """Promote all promotable allocas of one function to SSA values."""
    allocas = _find_promotable(fn)
    if not allocas:
        return 0

    dt = DominatorTree.compute(fn)
    frontier = dt.dominance_frontier()
    preds = predecessors_map(fn)
    # Dominance frontiers are sets; iterate them in reverse postorder so phi
    # placement (and therefore value naming) is deterministic across runs.
    rpo_index = {id(b): i for i, b in enumerate(dt.rpo)}

    # -- phi placement at iterated dominance frontiers -----------------------------
    # phi_sites[block][alloca id] -> phi node
    phi_sites: Dict[int, Dict[int, Phi]] = {}
    phi_alloca: Dict[int, Alloca] = {}  # phi id -> alloca it materialises
    for alloca in allocas:
        def_blocks = {
            id(user.parent): user.parent
            for user in alloca.users
            if isinstance(user, Store)
        }
        worklist = list(def_blocks.values())
        placed: Set[int] = set()
        while worklist:
            block = worklist.pop()
            if not dt.is_reachable(block):
                continue
            df_blocks = sorted(
                frontier.get(block, ()), key=lambda b: rpo_index[id(b)]
            )
            for df_block in df_blocks:
                if id(df_block) in placed:
                    continue
                placed.add(id(df_block))
                phi = Phi(alloca.elem_type, name=f"{alloca.name.replace('.addr', '')}.{fn._block_counter}")
                fn._block_counter += 1
                df_block.insert(0, phi)
                phi_sites.setdefault(id(df_block), {})[id(alloca)] = phi
                phi_alloca[id(phi)] = alloca
                if id(df_block) not in def_blocks:
                    def_blocks[id(df_block)] = df_block
                    worklist.append(df_block)

    # -- renaming along the dominator tree ---------------------------------------------
    stacks: Dict[int, List[Value]] = {id(a): [] for a in allocas}
    undefs: Dict[int, UndefValue] = {
        id(a): UndefValue(a.elem_type) for a in allocas
    }
    alloca_ids = set(stacks.keys())
    to_erase: List[Instruction] = []

    def current(alloca_id: int) -> Value:
        stack = stacks[alloca_id]
        return stack[-1] if stack else undefs[alloca_id]

    def rename(block: BasicBlock) -> None:
        pushed: List[int] = []
        for instr in list(block.instructions):
            if isinstance(instr, Phi) and id(instr) in phi_alloca:
                aid = id(phi_alloca[id(instr)])
                stacks[aid].append(instr)
                pushed.append(aid)
            elif isinstance(instr, Load) and id(instr.pointer) in alloca_ids:
                instr.replace_all_uses_with(current(id(instr.pointer)))
                to_erase.append(instr)
            elif isinstance(instr, Store) and id(instr.pointer) in alloca_ids:
                aid = id(instr.pointer)
                stacks[aid].append(instr.value)
                pushed.append(aid)
                to_erase.append(instr)

        for succ in block.successors:
            sites = phi_sites.get(id(succ))
            if not sites:
                continue
            for aid_key, phi in sites.items():
                phi.add_incoming(current(aid_key), block)

        for child in dt.children.get(block, ()):
            rename(child)

        for aid in reversed(pushed):
            stacks[aid].pop()

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 2 * len(fn.blocks) + 100))
    try:
        rename(fn.entry)
    finally:
        sys.setrecursionlimit(old_limit)

    # -- cleanup ---------------------------------------------------------------------------
    for instr in to_erase:
        instr.drop_all_references()
        if instr.parent is not None:
            instr.parent.remove(instr)
    for alloca in allocas:
        if alloca.uses:  # pragma: no cover - promotability guarantees none
            raise RuntimeError(f"alloca %{alloca.name} still has uses after promotion")
        alloca.erase()

    _prune_dead_phis(fn, set(phi_alloca.keys()))
    return len(allocas)


def _find_promotable(fn: Function) -> List[Alloca]:
    out: List[Alloca] = []
    for block in fn.blocks:
        for instr in block.instructions:
            if not isinstance(instr, Alloca) or instr.count != 1:
                continue
            ok = True
            for user, idx in instr.uses:
                if isinstance(user, Load) and user.pointer is instr:
                    continue
                if isinstance(user, Store) and idx == 1:  # pointer operand only
                    continue
                ok = False
                break
            if ok:
                out.append(instr)
    return out


def _prune_dead_phis(fn: Function, inserted_phi_ids: Set[int]) -> None:
    """Remove inserted phis that are unused (or only feed other dead phis).

    Unpruned phi placement creates phis for variables that are dead at the
    join point; left in place they would distort the static instruction
    counts *and* could masquerade as state variables.  Liveness propagates
    backwards: a phi is live when some non-phi instruction uses it, or a live
    phi does — so mutually-referencing dead phi cycles (loop-carried dead
    variables) are removed too.
    """
    # Seed: inserted phis used by any non-phi instruction (or by a phi that
    # was not inserted by this pass, which we conservatively treat as live).
    live: Set[int] = set()
    worklist: List[Phi] = []
    by_id: Dict[int, Phi] = {}
    for block in fn.blocks:
        for phi in block.phis():
            if id(phi) in inserted_phi_ids:
                by_id[id(phi)] = phi

    def mark(phi: Phi) -> None:
        if id(phi) not in live:
            live.add(id(phi))
            worklist.append(phi)

    for phi in by_id.values():
        for user in phi.users:
            if not isinstance(user, Phi) or id(user) not in inserted_phi_ids:
                mark(phi)
                break

    while worklist:
        phi = worklist.pop()
        for op in phi.operands:
            if isinstance(op, Phi) and id(op) in inserted_phi_ids:
                mark(op)

    for pid, phi in by_id.items():
        if pid in live:
            continue
        phi.replace_all_uses_with(UndefValue(phi.type))
        phi.drop_all_references()
        if phi.parent is not None:
            phi.parent.remove(phi)
