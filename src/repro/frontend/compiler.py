"""The SCL compilation pipeline: source text → verified SSA module.

``compile_source`` is the one-call entry point the workloads use:

1. lex + parse (:mod:`repro.frontend.parser`),
2. generate alloca-based IR (:mod:`repro.frontend.codegen`),
3. promote stack slots to SSA (:mod:`repro.frontend.mem2reg`),
4. eliminate dead code (:mod:`repro.opt.dce`) — drops dead recurrences that
   would otherwise masquerade as state variables,
5. verify the result (:mod:`repro.ir.verifier`).
"""

from __future__ import annotations

from ..ir.module import Module
from ..ir.verifier import verify_module
from ..opt.dce import eliminate_dead_code_module
from .codegen import CodeGenerator
from .mem2reg import promote_module
from .parser import parse


def compile_source(source: str, name: str = "scl") -> Module:
    """Compile SCL source text into a verified SSA :class:`Module`."""
    program = parse(source)
    module = CodeGenerator(program, name).generate()
    promote_module(module)
    eliminate_dead_code_module(module)
    verify_module(module)
    return module
