"""Value-profiling runs (the paper's offline profiling pass).

The paper instruments LLVM IR to collect value profiles on a *train* input,
one time per benchmark, then feeds those profiles to the check-insertion
pass.  Here the instrumentation is the interpreter's value hook: a profiling
run executes the module with the train input and streams every
(instruction, value) pair into a :class:`~repro.profiling.profiles.ProfileStore`.

Only integer- and float-valued instructions are profiled; pointers (GEPs,
allocas) are excluded — the paper's value checks target data computations,
while address corruption is covered by symptoms.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..ir.instructions import Instruction
from ..ir.module import Module
from ..ir.types import FloatType, IntType
from ..sim.config import SimConfig
from ..sim.interpreter import Interpreter
from .profiles import ProfileStore


def collect_profiles(
    module: Module,
    inputs: Optional[Dict[str, Sequence]] = None,
    entry: str = "main",
    args: Sequence[object] = (),
    num_bins: int = 5,
    top_capacity: int = 8,
    config: Optional[SimConfig] = None,
    max_instructions: int = 50_000_000,
) -> ProfileStore:
    """Run ``module`` once on the train input, profiling every data value.

    Returns the populated :class:`ProfileStore`.  Guards already present in
    the module (none, normally — profiling happens before transformation) run
    in counting mode so they cannot abort the profile run.
    """
    store = ProfileStore(num_bins=num_bins, top_capacity=top_capacity)

    def hook(instr: Instruction, value) -> None:
        t = instr.type
        if isinstance(t, IntType):
            if t.bits > 1:  # booleans carry no useful range information
                store.observe(instr, value)
        elif isinstance(t, FloatType):
            store.observe(instr, float(value))

    interp = Interpreter(module, config=config, guard_mode="count", value_hook=hook)
    interp.run(entry=entry, args=args, inputs=inputs, max_instructions=max_instructions)
    return store


def collect_profiles_multi(
    module: Module,
    input_sets: Sequence[Dict[str, Sequence]],
    entry: str = "main",
    args: Sequence[object] = (),
    num_bins: int = 5,
    top_capacity: int = 8,
    config: Optional[SimConfig] = None,
    max_instructions: int = 50_000_000,
) -> ProfileStore:
    """Profile over several inputs into one combined store.

    The paper (Section V) notes the false-positive rate "can be further
    reduced by combining profiling from multiple inputs and thus inserting
    checks only on more stable invariant values" — this is that combiner:
    every run streams into the same histograms, so ranges widen to cover all
    inputs and pseudo-invariants that vary across inputs stop qualifying for
    single/two-value checks.
    """
    if not input_sets:
        raise ValueError("need at least one input set")
    store = ProfileStore(num_bins=num_bins, top_capacity=top_capacity)

    def hook(instr: Instruction, value) -> None:
        t = instr.type
        if isinstance(t, IntType):
            if t.bits > 1:
                store.observe(instr, value)
        elif isinstance(t, FloatType):
            store.observe(instr, float(value))

    for inputs in input_sets:
        interp = Interpreter(module, config=config, guard_mode="count", value_hook=hook)
        interp.run(
            entry=entry, args=args, inputs=inputs, max_instructions=max_instructions
        )
    return store
