"""Greedy compact-range extraction from a histogram (paper Algorithm 2).

Given the per-instruction histogram from Algorithm 1, find a tight
``[lo, hi]`` interval concentrating most of the observed values: start from
the highest-frequency bin and greedily absorb the neighbouring bin with the
larger frequency, as long as the resulting range stays within the range
threshold ``R_thr``.  The returned range and its covered-sample fraction feed
the check-amenability decision in :mod:`repro.transforms.valuechecks`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .histogram import Bin, OnlineHistogram


@dataclass
class FrequentRange:
    """Result of Algorithm 2: a compact range plus coverage statistics."""

    lo: float
    hi: float
    count: int
    total: int

    @property
    def coverage(self) -> float:
        """Fraction of all profiled samples that fell inside [lo, hi]."""
        return self.count / self.total if self.total else 0.0

    @property
    def width(self) -> float:
        return self.hi - self.lo


def compact_range(
    histogram: OnlineHistogram, range_threshold: float
) -> Optional[FrequentRange]:
    """Algorithm 2: greedy growth of the max-frequency bin.

    ``range_threshold`` (the paper's R_thr) caps the width of the returned
    range.  The seed bin is used even if it alone exceeds the threshold (a
    range check on it may still be useless — the caller decides via coverage
    and width).  Extension prefers the neighbour with the higher frequency,
    matching the paper's pseudocode, and stops when neither neighbour can be
    absorbed without exceeding the threshold.
    """
    bins = histogram.bins
    if not bins:
        return None

    seed_idx = max(range(len(bins)), key=lambda i: bins[i].count)
    lo = bins[seed_idx].lb
    hi = bins[seed_idx].rb
    count = bins[seed_idx].count
    left = seed_idx - 1
    right = seed_idx + 1

    while left >= 0 or right < len(bins):
        left_bin: Optional[Bin] = bins[left] if left >= 0 else None
        right_bin: Optional[Bin] = bins[right] if right < len(bins) else None

        take_left = False
        if left_bin is not None and right_bin is not None:
            take_left = left_bin.count >= right_bin.count
        elif left_bin is not None:
            take_left = True

        if take_left:
            assert left_bin is not None
            if hi - left_bin.lb <= range_threshold:
                lo = left_bin.lb
                count += left_bin.count
                left -= 1
                continue
            # Can't grow left within threshold; try the other side.
            if right_bin is not None and right_bin.rb - lo <= range_threshold:
                hi = right_bin.rb
                count += right_bin.count
                right += 1
                continue
            break
        else:
            assert right_bin is not None
            if right_bin.rb - lo <= range_threshold:
                hi = right_bin.rb
                count += right_bin.count
                right += 1
                continue
            if left_bin is not None and hi - left_bin.lb <= range_threshold:
                lo = left_bin.lb
                count += left_bin.count
                left -= 1
                continue
            break

    return FrequentRange(lo=lo, hi=hi, count=count, total=histogram.total)
