"""Value profiling: streaming histograms (Algorithm 1), compact-range
extraction (Algorithm 2), and profiling runs feeding check insertion."""

from .histogram import Bin, OnlineHistogram
from .profiler import collect_profiles, collect_profiles_multi
from .profiles import InstructionProfile, ProfileStore
from .rangefinder import FrequentRange, compact_range

__all__ = [
    "Bin", "OnlineHistogram",
    "collect_profiles", "collect_profiles_multi",
    "InstructionProfile", "ProfileStore",
    "FrequentRange", "compact_range",
]
