"""On-line histogram of values produced by an instruction (paper Algorithm 1).

The profiler cannot afford to store every value an instruction produces, so it
maintains a fixed-size histogram of ``B`` bins (B=5 in the paper's
experiments).  Inserting a value that falls in an existing bin bumps that
bin's frequency; otherwise a new point bin ``[v, v] x 1`` is added and the two
closest adjacent bins are merged to restore the bin budget — a variant of the
Ben-Haim/Tom-Tov streaming histogram, adapted (as the paper does) to keep
*interval* bins with exact bounds rather than centroid bins.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class Bin:
    """One histogram bin: closed interval [lb, rb] holding ``count`` samples."""

    lb: float
    rb: float
    count: int

    @property
    def is_point(self) -> bool:
        return self.lb == self.rb

    @property
    def width(self) -> float:
        return self.rb - self.lb

    def __iter__(self):
        # Allows tuple-unpacking in tests: lb, rb, count = bin
        return iter((self.lb, self.rb, self.count))


class OnlineHistogram:
    """Streaming histogram with at most ``num_bins`` interval bins.

    Bins are kept sorted and non-overlapping.  ``add`` is O(B); with B=5 the
    profiling hook costs a handful of comparisons per dynamic instruction.
    """

    def __init__(self, num_bins: int = 5) -> None:
        if num_bins < 2:
            raise ValueError("need at least two bins")
        self.num_bins = num_bins
        self.bins: List[Bin] = []
        self.total = 0

    def add(self, value: float) -> None:
        """Insert one sample (Algorithm 1)."""
        self.total += 1
        bins = self.bins
        # Find the first bin whose lb is > value, then check the one before it.
        lo, hi = 0, len(bins)
        while lo < hi:
            mid = (lo + hi) // 2
            if bins[mid].lb <= value:
                lo = mid + 1
            else:
                hi = mid
        idx = lo - 1
        if idx >= 0 and bins[idx].lb <= value <= bins[idx].rb:
            bins[idx].count += 1
            return

        # New point bin, inserted in sorted position.
        bins.insert(lo, Bin(value, value, 1))
        if len(bins) > self.num_bins:
            self._merge_closest()

    def _merge_closest(self) -> None:
        """Merge the adjacent pair with the smallest gap (Algorithm 1, steps 6-8)."""
        bins = self.bins
        best_i, best_gap = 0, None
        for i in range(len(bins) - 1):
            gap = bins[i + 1].lb - bins[i].rb
            if best_gap is None or gap < best_gap:
                best_i, best_gap = i, gap
        a, b = bins[best_i], bins[best_i + 1]
        bins[best_i] = Bin(a.lb, b.rb, a.count + b.count)
        del bins[best_i + 1]

    # -- queries --------------------------------------------------------------------

    @property
    def min(self) -> Optional[float]:
        return self.bins[0].lb if self.bins else None

    @property
    def max(self) -> Optional[float]:
        return self.bins[-1].rb if self.bins else None

    def max_bin(self) -> Optional[Bin]:
        """The highest-frequency bin (ties break to the leftmost)."""
        if not self.bins:
            return None
        return max(self.bins, key=lambda b: b.count)

    def as_tuples(self) -> List[Tuple[float, float, int]]:
        return [(b.lb, b.rb, b.count) for b in self.bins]

    def __len__(self) -> int:
        return len(self.bins)

    def __repr__(self) -> str:
        inner = ", ".join(f"[{b.lb},{b.rb}]x{b.count}" for b in self.bins)
        return f"<OnlineHistogram {inner} total={self.total}>"
