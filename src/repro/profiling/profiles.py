"""Per-instruction value profiles and the module-level profile store.

An :class:`InstructionProfile` combines the streaming histogram (Algorithm 1)
with a small exact counter of the most frequent values — the paper's
"fixed set of most frequently produced values" — which is what enables the
single-value and two-value check forms of Figure 6 (a point in a merged
histogram bin loses its exact identity; the counter preserves it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.instructions import Instruction
from .histogram import OnlineHistogram
from .rangefinder import FrequentRange, compact_range


class InstructionProfile:
    """Everything profiled about one static value-producing instruction."""

    __slots__ = ("instruction", "histogram", "top_values", "_top_capacity", "count")

    def __init__(
        self,
        instruction: Instruction,
        num_bins: int = 5,
        top_capacity: int = 8,
    ) -> None:
        self.instruction = instruction
        self.histogram = OnlineHistogram(num_bins)
        #: exact counts for the first `top_capacity` distinct values observed
        self.top_values: Dict[float, int] = {}
        self._top_capacity = top_capacity
        self.count = 0

    def observe(self, value) -> None:
        v = float(value)
        self.count += 1
        self.histogram.add(v)
        tv = self.top_values
        if v in tv:
            tv[v] += 1
        elif len(tv) < self._top_capacity:
            tv[v] = 1

    # -- analysis ----------------------------------------------------------------

    def frequent_values(self, max_values: int = 2) -> List[Tuple[float, int]]:
        """Most frequent exact values, descending by count."""
        return sorted(self.top_values.items(), key=lambda kv: -kv[1])[:max_values]

    def value_coverage(self, values: List[float]) -> float:
        """Fraction of all samples equal to one of ``values`` (exact counter)."""
        if not self.count:
            return 0.0
        covered = sum(self.top_values.get(v, 0) for v in values)
        return covered / self.count

    def compact_range(self, range_threshold: float) -> Optional[FrequentRange]:
        return compact_range(self.histogram, range_threshold)

    @property
    def span(self) -> float:
        """Full observed value span (max - min)."""
        if not self.histogram.bins:
            return 0.0
        return self.histogram.max - self.histogram.min  # type: ignore[operator]

    def __repr__(self) -> str:
        return (
            f"<InstructionProfile %{self.instruction.name} n={self.count} "
            f"bins={len(self.histogram)}>"
        )


class ProfileStore:
    """Profiles for every value-producing instruction of a module, keyed by
    instruction identity (profiling and transformation run on the same module
    instance, exactly as an LLVM analysis pass feeds a transform pass)."""

    def __init__(self, num_bins: int = 5, top_capacity: int = 8) -> None:
        self.num_bins = num_bins
        self.top_capacity = top_capacity
        self._profiles: Dict[int, InstructionProfile] = {}

    def observe(self, instruction: Instruction, value) -> None:
        key = id(instruction)
        profile = self._profiles.get(key)
        if profile is None:
            profile = InstructionProfile(instruction, self.num_bins, self.top_capacity)
            self._profiles[key] = profile
        profile.observe(value)

    def get(self, instruction: Instruction) -> Optional[InstructionProfile]:
        return self._profiles.get(id(instruction))

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self):
        return iter(self._profiles.values())

    def summary(self) -> Dict[str, dict]:
        """Loggable per-instruction digest (for reports and debugging)."""
        out = {}
        for p in self._profiles.values():
            out[p.instruction.name] = {
                "count": p.count,
                "bins": p.histogram.as_tuples(),
                "top": p.frequent_values(4),
            }
        return out

    # -- persistence -----------------------------------------------------------
    #
    # The paper's value profiling is a one-time offline step; persisting the
    # store lets a profile collected once be reused across sessions.  Entries
    # are keyed by (function name, value name) — stable because module builds
    # are deterministic — so a store saved from one build of a workload loads
    # against a fresh build of the same workload.

    def to_dict(self) -> Dict[str, dict]:
        """JSON-serialisable form, keyed ``"function:value_name"``."""
        out: Dict[str, dict] = {}
        for p in self._profiles.values():
            instr = p.instruction
            fn = instr.function
            if fn is None or not instr.name:
                continue
            out[f"{fn.name}:{instr.name}"] = {
                "count": p.count,
                "bins": [[b.lb, b.rb, b.count] for b in p.histogram.bins],
                "total": p.histogram.total,
                "top": [[v, c] for v, c in p.top_values.items()],
            }
        return {
            "version": 1,
            "num_bins": self.num_bins,
            "top_capacity": self.top_capacity,
            "profiles": out,
        }

    def save(self, path) -> None:
        """Write the store as JSON to ``path``."""
        import json

        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh)

    @classmethod
    def from_dict(cls, data: Dict, module) -> "ProfileStore":
        """Rebind a serialised store onto a (fresh, identical) module."""
        from .histogram import Bin

        store = cls(
            num_bins=data.get("num_bins", 5),
            top_capacity=data.get("top_capacity", 8),
        )
        index: Dict[str, Instruction] = {}
        for fn in module.functions.values():
            for instr in fn.instructions():
                if instr.has_result and instr.name:
                    index[f"{fn.name}:{instr.name}"] = instr
        for key, entry in data.get("profiles", {}).items():
            instr = index.get(key)
            if instr is None:
                continue  # module changed shape since the profile was taken
            profile = InstructionProfile(instr, store.num_bins, store.top_capacity)
            profile.count = entry["count"]
            profile.histogram.bins = [
                Bin(lb, rb, c) for lb, rb, c in entry["bins"]
            ]
            profile.histogram.total = entry["total"]
            profile.top_values = {float(v): int(c) for v, c in entry["top"]}
            store._profiles[id(instr)] = profile
        return store

    @classmethod
    def load(cls, path, module) -> "ProfileStore":
        """Read a store saved by :meth:`save`, rebound onto ``module``."""
        import json

        with open(path) as fh:
            return cls.from_dict(json.load(fh), module)
