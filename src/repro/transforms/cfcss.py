"""Control-flow signature checking (CFCSS-style, Oh/McCluskey).

The paper's coverage explicitly excludes faults on branch *targets* and
points at signature-based control-flow checking as the complementary, cheap
protection (Section IV-C: "a previously proposed signature-based low-cost
solution can be used in conjunction with our proposed approach").  This
transform implements that companion scheme:

* every basic block gets a compile-time signature ``s(b)``;
* a run-time signature register ``G`` (held in a stack slot so it survives
  arbitrary control flow) is updated at the top of every block with the
  XOR difference ``d(b) = s(base_pred) ^ s(b)``;
* blocks with multiple predecessors use CFCSS's run-time adjusting
  signature ``A``: each predecessor stores ``A = s(pred) ^ s(base_pred)``
  before branching in, and the block folds ``A`` into ``G``;
* a :class:`~repro.ir.instructions.GuardValues` check compares ``G`` against
  ``s(b)`` — a branch that lands on the wrong block leaves a stale signature
  in ``G`` and the check fires.

Critical edges are split first so every predecessor of a multi-predecessor
block can set ``A`` unambiguously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.cfg import predecessors_map, reverse_postorder, split_critical_edges
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Alloca, GuardValues, Load, Store
from ..ir.module import Module
from ..ir.types import I32
from ..ir.values import Constant
from ..ir.verifier import verify_module


@dataclass
class CfcssResult:
    """What the signature pass inserted."""

    num_blocks_signed: int = 0
    num_guards: int = 0
    num_instructions_added: int = 0
    next_guard_id: int = 0


def _block_signature(index: int) -> int:
    """Deterministic, well-spread 16-bit signature for block ``index``."""
    # Knuth multiplicative hashing keeps XOR differences distinct in practice.
    return ((index + 1) * 2654435761 >> 13) & 0xFFFF


class CfcssPass:
    """Inserts control-flow signature updates and checks, in place."""

    def __init__(self, next_guard_id: int = 10_000) -> None:
        self.next_guard_id = next_guard_id

    def run(self, module: Module, verify: bool = True) -> CfcssResult:
        result = CfcssResult(next_guard_id=self.next_guard_id)
        for fn in module.functions.values():
            self._run_on_function(fn, result)
        result.next_guard_id = self.next_guard_id
        if verify:
            verify_module(module)
        return result

    def _run_on_function(self, fn: Function, result: CfcssResult) -> None:
        if len(fn.blocks) < 2:
            return  # single-block functions have no branches to protect
        split_critical_edges(fn)

        blocks = reverse_postorder(fn)
        sig: Dict[int, int] = {
            id(b): _block_signature(i) for i, b in enumerate(blocks)
        }
        preds = predecessors_map(fn)

        entry = fn.entry
        before = fn.num_instructions()

        # The signature register G and the adjusting signature A live in
        # stack slots: unlike SSA values they survive a wrong-target jump.
        g_slot = Alloca(I32, 1, name="cfcss.G")
        a_slot = Alloca(I32, 1, name="cfcss.A")
        entry.insert(0, g_slot)
        entry.insert(1, a_slot)
        entry.insert(2, Store(Constant(I32, sig[id(entry)]), g_slot))
        entry.insert(3, Store(Constant(I32, 0), a_slot))

        for block in blocks:
            if block is entry:
                continue
            block_preds = [p for p in preds[block] if id(p) in sig]
            if not block_preds:
                continue
            base = block_preds[0]
            d = sig[id(base)] ^ sig[id(block)]
            fanin = len(block_preds) > 1

            if fanin:
                # every predecessor publishes its adjustment before branching
                for pred in block_preds:
                    adjust = sig[id(pred)] ^ sig[id(base)]
                    term = pred.terminator
                    assert term is not None
                    pred.insert_before(term, Store(Constant(I32, adjust), a_slot))
                    result.num_instructions_added += 1

            insert_at = block.first_non_phi_index()
            seq: List = []
            g_val = Load(I32, g_slot, name=f"cfcss.g.{block.name}")
            seq.append(g_val)
            from ..ir.instructions import BinaryOp

            g_new = BinaryOp("xor", g_val, Constant(I32, d))
            seq.append(g_new)
            if fanin:
                a_val = Load(I32, a_slot, name=f"cfcss.a.{block.name}")
                seq.append(a_val)
                g_new = BinaryOp("xor", g_new, a_val)
                seq.append(g_new)
            guard = GuardValues(
                g_new, [Constant(I32, sig[id(block)])], self.next_guard_id
            )
            self.next_guard_id += 1
            seq.append(guard)
            seq.append(Store(g_new, g_slot))
            for offset, instr in enumerate(seq):
                block.insert(insert_at + offset, instr)
            result.num_guards += 1
            result.num_blocks_signed += 1

        result.num_instructions_added += fn.num_instructions() - before


def protect_control_flow(module: Module, next_guard_id: int = 10_000) -> CfcssResult:
    """Convenience wrapper: run the CFCSS pass over ``module``.

    Composable with the data-protection schemes — apply
    :func:`~repro.transforms.pipeline.apply_scheme` first, then this, to get
    the paper's "in conjunction" configuration.
    """
    return CfcssPass(next_guard_id).run(module)
