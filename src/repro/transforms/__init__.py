"""Protection transforms: state-variable duplication, expected-value checks,
the full-duplication baseline, and scheme pipelines."""

from .cfcss import CfcssPass, CfcssResult, protect_control_flow
from .checkconfig import ProtectionConfig
from .duplication import (
    DuplicationPass,
    DuplicationResult,
    clone_instruction,
    duplicate_state_variables,
)
from .fulldup import FullDuplicationPass, FullDuplicationResult, full_duplication
from .pipeline import SCHEMES, SchemeStats, apply_scheme
from .valuechecks import (
    CheckPlan,
    apply_optimization1,
    compute_check_plans,
    insert_checks,
    plan_check,
)

__all__ = [
    "ProtectionConfig",
    "CfcssPass", "CfcssResult", "protect_control_flow",
    "DuplicationPass", "DuplicationResult", "clone_instruction",
    "duplicate_state_variables",
    "FullDuplicationPass", "FullDuplicationResult", "full_duplication",
    "SCHEMES", "SchemeStats", "apply_scheme",
    "CheckPlan", "apply_optimization1", "compute_check_plans",
    "insert_checks", "plan_check",
]
