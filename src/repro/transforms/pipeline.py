"""Protection-scheme pipelines: the paper's evaluated configurations.

* ``original``   — unmodified module;
* ``dup``        — state-variable duplication only (Figure 11/12 "Dup only");
* ``dup_valchk`` — duplication + expected-value checks with Optimizations 1
  and 2 (Figure 11/12 "Dup + val chks") — the paper's proposed scheme;
* ``full_dup``   — the SWIFT-style full-duplication baseline.

:func:`apply_scheme` mutates a freshly-built module in place, verifies the
result, and returns the static statistics Figure 10 reports (state variables,
duplicated instructions, and value checks as fractions of static IR
instructions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..ir.module import Module
from ..ir.verifier import verify_module
from ..profiling.profiles import ProfileStore
from .checkconfig import ProtectionConfig
from .duplication import duplicate_state_variables
from .fulldup import full_duplication
from .valuechecks import (
    CheckPlan,
    apply_optimization1,
    compute_check_plans,
    insert_checks,
)

SCHEMES = ("original", "dup", "dup_valchk", "full_dup")


@dataclass
class SchemeStats:
    """Static instrumentation statistics for one protected module."""

    scheme: str
    instructions_before: int = 0
    instructions_after: int = 0
    num_state_variables: int = 0
    num_duplicated: int = 0
    num_value_checks: int = 0
    num_eq_guards: int = 0
    checks_by_kind: Dict[str, int] = field(default_factory=dict)
    #: amenable instructions before Optimization 1 filtering
    num_amenable: int = 0

    @property
    def frac_state_variables(self) -> float:
        """State variables / static IR instructions (Figure 10, first bar)."""
        return self.num_state_variables / max(self.instructions_before, 1)

    @property
    def frac_duplicated(self) -> float:
        """Duplicated instructions / static IR instructions (Figure 10)."""
        return self.num_duplicated / max(self.instructions_before, 1)

    @property
    def frac_value_checks(self) -> float:
        """Value checks / static IR instructions (Figure 10)."""
        return self.num_value_checks / max(self.instructions_before, 1)


def apply_scheme(
    module: Module,
    scheme: str,
    profiles: Optional[ProfileStore] = None,
    config: Optional[ProtectionConfig] = None,
    verify: bool = True,
) -> SchemeStats:
    """Apply ``scheme`` to ``module`` in place and return its statistics.

    ``dup_valchk`` requires ``profiles`` (a prior value-profiling run on the
    same module instance — see :func:`repro.profiling.collect_profiles`).
    """
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")
    config = config or ProtectionConfig()
    stats = SchemeStats(scheme=scheme, instructions_before=module.num_instructions())

    if scheme == "original":
        stats.instructions_after = stats.instructions_before
        return stats

    if scheme == "dup":
        dup = duplicate_state_variables(module, config, check_plans=None)
        stats.num_state_variables = len(dup.state_variables)
        stats.num_duplicated = dup.num_shadow_instructions
        stats.num_eq_guards = dup.num_guards

    elif scheme == "dup_valchk":
        if profiles is None:
            raise ValueError("scheme 'dup_valchk' requires value profiles")
        plans = compute_check_plans(module, profiles, config)
        stats.num_amenable = len(plans)
        dup = duplicate_state_variables(
            module,
            config,
            check_plans=plans if config.optimization2 else None,
        )
        stats.num_state_variables = len(dup.state_variables)
        stats.num_duplicated = dup.num_shadow_instructions
        stats.num_eq_guards = dup.num_guards
        if config.optimization1:
            plans = apply_optimization1(plans)
        insert_checks(module, plans, next_guard_id=dup.next_guard_id)
        stats.num_value_checks = len(plans)
        for plan in plans.values():
            stats.checks_by_kind[plan.kind] = stats.checks_by_kind.get(plan.kind, 0) + 1

    elif scheme == "full_dup":
        full = full_duplication(module)
        stats.num_duplicated = full.num_shadow_instructions
        stats.num_eq_guards = full.num_guards

    if verify:
        verify_module(module)
    stats.instructions_after = module.num_instructions()
    return stats
