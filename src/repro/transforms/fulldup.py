"""Full-duplication baseline (SWIFT-style, paper Section V "full duplication").

Duplicates *every* duplicable computation in a single thread of execution —
the "maximum amount of duplication possible without duplicating loads/stores"
the paper compares against (57% overhead, 1.4% USDC).  Synchronisation points
(where original and shadow must agree) are the program's side effects:

* before every store: the stored value and the address are checked;
* before every conditional branch: the condition is checked;
* before every return with a value: the returned value is checked;
* before every call: the arguments are checked (calls are not duplicated).

Loads are not duplicated — both chains consume the loaded value — so faults
on load data escape detection until a later check, and faults that only live
in memory escape entirely; this is why full duplication still has residual
USDCs in the paper despite its cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..analysis.cfg import reverse_postorder
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    Call,
    CondBr,
    GuardEq,
    Instruction,
    Phi,
    Ret,
    Store,
)
from ..ir.module import Module
from ..ir.values import Value
from ..analysis.usedef import DUPLICABLE_CLASSES
from .duplication import clone_instruction


@dataclass
class FullDuplicationResult:
    num_shadow_instructions: int = 0
    num_guards: int = 0
    next_guard_id: int = 0


class FullDuplicationPass:
    """Applies whole-function duplication to a module in place."""

    def __init__(self, next_guard_id: int = 0) -> None:
        self.next_guard_id = next_guard_id

    def run(self, module: Module) -> FullDuplicationResult:
        result = FullDuplicationResult()
        for fn in module.functions.values():
            self._run_on_function(fn, result)
        result.next_guard_id = self.next_guard_id
        return result

    def _run_on_function(self, fn: Function, result: FullDuplicationResult) -> None:
        shadow_map: Dict[int, Value] = {}
        original_phis: List[Phi] = []

        # Pass 1: clone every duplicable instruction (RPO so operand shadows
        # exist before their users' clones), shadow phis created empty.
        for block in reverse_postorder(fn):
            for instr in list(block.instructions):
                if instr.is_shadow:
                    continue
                if isinstance(instr, Phi):
                    shadow = Phi(instr.type)
                    shadow.is_shadow = True
                    shadow.shadow_of = instr
                    block.insert(block.first_non_phi_index(), shadow)
                    shadow_map[id(instr)] = shadow
                    original_phis.append(instr)
                    result.num_shadow_instructions += 1
                elif isinstance(instr, DUPLICABLE_CLASSES):
                    clone = clone_instruction(instr, shadow_map)
                    block.insert_after(instr, clone)
                    shadow_map[id(instr)] = clone
                    result.num_shadow_instructions += 1

        # Pass 2: wire shadow-phi incomings (now that all shadows exist).
        for phi in original_phis:
            shadow = shadow_map[id(phi)]
            for value, pred in phi.incomings:
                shadow.add_incoming(shadow_map.get(id(value), value), pred)  # type: ignore[attr-defined]

        # Pass 3: insert guards at synchronisation points.
        for block in list(fn.blocks):
            for instr in list(block.instructions):
                if instr.is_shadow:
                    continue
                if isinstance(instr, Store):
                    self._guard_before(block, instr, instr.value, shadow_map, result)
                    self._guard_before(block, instr, instr.pointer, shadow_map, result)
                elif isinstance(instr, CondBr):
                    self._guard_before(block, instr, instr.cond, shadow_map, result)
                elif isinstance(instr, Ret) and instr.value is not None:
                    self._guard_before(block, instr, instr.value, shadow_map, result)
                elif isinstance(instr, Call):
                    for op in instr.operands:
                        self._guard_before(block, instr, op, shadow_map, result)

    def _guard_before(
        self,
        block: BasicBlock,
        anchor: Instruction,
        value: Value,
        shadow_map: Dict[int, Value],
        result: FullDuplicationResult,
    ) -> None:
        shadow = shadow_map.get(id(value))
        if shadow is None:
            return
        guard = GuardEq(value, shadow, self.next_guard_id)
        self.next_guard_id += 1
        block.insert_before(anchor, guard)
        result.num_guards += 1


def full_duplication(module: Module, next_guard_id: int = 0) -> FullDuplicationResult:
    """Convenience wrapper: run the full-duplication baseline over ``module``."""
    return FullDuplicationPass(next_guard_id).run(module)
