"""Expected-value check planning and insertion (paper Section III-C, Fig. 6).

From the value profiles, each value-producing instruction is classified as
amenable to one of three check forms:

* **single value** — one constant covers almost all samples (Fig. 6a);
* **two values** — two constants together do (Fig. 6b);
* **range** — Algorithm 2's compact range covers almost all samples and is
  narrow relative to the type's representable space (Fig. 6c).

Optimization 1 then drops checks on amenable instructions whose value flows
into another amenable (and checked) instruction downstream — only the deepest
check of a producer chain is kept (Fig. 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..ir.basicblock import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import Instruction, Load, Phi
from ..ir.module import Module
from ..ir.types import FloatType, IntType
from ..ir.values import Constant
from ..profiling.profiles import InstructionProfile, ProfileStore
from .checkconfig import ProtectionConfig


@dataclass
class CheckPlan:
    """A planned expected-value check on one instruction."""

    instruction: Instruction
    kind: str  # 'single' | 'double' | 'range'
    values: List[float] = field(default_factory=list)  # single/double forms
    lo: float = 0.0
    hi: float = 0.0
    coverage: float = 0.0
    #: set by the duplication pass (Opt 2): this check terminated a shadow
    #: chain and must survive Optimization 1 filtering
    forced: bool = False

    def __repr__(self) -> str:
        if self.kind == "range":
            detail = f"[{self.lo}, {self.hi}]"
        else:
            detail = str(self.values)
        return f"<CheckPlan %{self.instruction.name} {self.kind} {detail} cov={self.coverage:.3f}>"


def plan_check(
    instr: Instruction, profile: InstructionProfile, config: ProtectionConfig
) -> Optional[CheckPlan]:
    """Decide whether (and how) ``instr`` is amenable to a value check."""
    if profile.count < config.min_profile_samples:
        return None
    if isinstance(instr, Load) and not config.check_loads:
        # Checks target *computed* values (Fig. 6 shows value-generating
        # instructions); loads already terminate duplication chains and their
        # address faults surface as symptoms.
        return None
    if isinstance(instr, Phi):
        # Phis are register copies resolved at rename; their incoming values
        # are the value-generating instructions and get checked themselves.
        # (State-carrying phis are protected by duplication instead.)
        return None
    if not config.check_address_values and _only_feeds_addresses(instr):
        # A value consumed only by address arithmetic is covered by the
        # memory-symptom path (out-of-bounds accesses trap); checking it
        # buys little and the paper leans on symptoms for address faults.
        return None
    type_ = instr.type
    if isinstance(type_, IntType):
        if type_.bits <= 1:
            return None
        range_limit = config.int_range_limit
    elif isinstance(type_, FloatType):
        range_limit = config.float_range_limit
    else:
        return None

    # Fig. 6a/6b — frequent-value checks; these must be true invariants
    # (every profiled sample matched, enough samples observed), otherwise an
    # input-dependent constant would fire spuriously on the test input.
    if profile.count >= config.min_value_check_samples:
        frequent = profile.frequent_values(2)
        if frequent:
            top1 = [frequent[0][0]]
            if profile.value_coverage(top1) >= config.exact_value_coverage:
                return CheckPlan(instr, "single", values=top1,
                                 coverage=profile.value_coverage(top1))
            if len(frequent) == 2:
                top2 = [frequent[0][0], frequent[1][0]]
                if profile.value_coverage(top2) >= config.exact_value_coverage:
                    return CheckPlan(instr, "double", values=top2,
                                     coverage=profile.value_coverage(top2))

    # Fig. 6c — compact range (Algorithm 2).
    span = profile.span
    r_thr = max(span * config.range_threshold_factor, 1.0)
    fr = profile.compact_range(r_thr)
    if fr is None:
        return None
    if fr.coverage < config.coverage_threshold:
        return None
    pad = max(
        fr.width * config.range_pad_factor,
        config.range_pad_min,
        config.magnitude_slack * max(abs(fr.lo), abs(fr.hi)),
    )
    lo, hi = fr.lo - pad, fr.hi + pad
    if hi - lo > range_limit:
        return None
    if isinstance(type_, IntType):
        lo = max(math.floor(lo), type_.min_signed)
        hi = min(math.ceil(hi), type_.max_signed)
    return CheckPlan(instr, "range", lo=lo, hi=hi, coverage=fr.coverage)


def _only_feeds_addresses(instr: Instruction, max_nodes: int = 64) -> bool:
    """True when every transitive (non-phi) use of ``instr`` ends in address
    arithmetic (GEPs) — i.e. the value never becomes data."""
    from ..ir.instructions import GetElementPtr

    seen: Set[int] = set()
    stack: List[Instruction] = [instr]
    found_use = False
    while stack and len(seen) < max_nodes:
        node = stack.pop()
        for user in node.users:
            uid = id(user)
            if uid in seen:
                continue
            seen.add(uid)
            found_use = True
            if isinstance(user, GetElementPtr):
                continue  # address sink
            if isinstance(user, Phi):
                return False  # conservatively treat phi-merged values as data
            if user.has_result:
                stack.append(user)
            else:
                return False  # stored / compared / returned as data
    return found_use


def compute_check_plans(
    module: Module, profiles: ProfileStore, config: ProtectionConfig
) -> Dict[int, CheckPlan]:
    """Plans for every amenable instruction in the module (pre-Opt-1)."""
    plans: Dict[int, CheckPlan] = {}
    for fn in module.functions.values():
        for instr in fn.instructions():
            if instr.is_shadow or not instr.has_result:
                continue
            profile = profiles.get(instr)
            if profile is None:
                continue
            plan = plan_check(instr, profile, config)
            if plan is not None:
                plans[id(instr)] = plan
    return plans


def apply_optimization1(plans: Dict[int, CheckPlan]) -> Dict[int, CheckPlan]:
    """Keep only the deepest amenable instruction of each producer chain.

    An amenable instruction whose value reaches another amenable instruction
    through non-phi use-def edges is dropped (unless forced by Opt 2): the
    downstream check subsumes it.  Phi edges are excluded so loop-carried
    cycles cannot eliminate each other.
    """
    kept: Dict[int, CheckPlan] = {}
    amenable_ids = set(plans.keys())
    for key, plan in plans.items():
        if plan.forced:
            kept[key] = plan
            continue
        if _reaches_amenable(plan.instruction, amenable_ids):
            continue
        kept[key] = plan
    return kept


def _reaches_amenable(instr: Instruction, amenable_ids: Set[int]) -> bool:
    """True when ``instr`` transitively feeds another amenable instruction
    (forward walk over non-phi users)."""
    seen: Set[int] = set()
    stack: List[Instruction] = [instr]
    while stack:
        node = stack.pop()
        for user in node.users:
            uid = id(user)
            if uid in seen or isinstance(user, Phi):
                continue
            seen.add(uid)
            if uid in amenable_ids:
                return True
            stack.append(user)
    return False


def insert_checks(
    module: Module,
    plans: Dict[int, CheckPlan],
    next_guard_id: int = 0,
) -> int:
    """Materialise the planned checks as guard instructions.

    Each check is inserted immediately after the instruction it protects.
    Returns the next unused guard id.
    """
    guard_id = next_guard_id
    for plan in plans.values():
        instr = plan.instruction
        block = instr.parent
        if block is None:
            raise ValueError(f"planned check on detached instruction %{instr.name}")
        guard = _build_guard(plan, guard_id)
        guard_id += 1
        if isinstance(instr, Phi):
            # Guards may not sit between phis; place after the phi prefix.
            block.insert(block.first_non_phi_index(), guard)
        else:
            block.insert_after(instr, guard)
    return guard_id


def _build_guard(plan: CheckPlan, guard_id: int):
    from ..ir.instructions import GuardRange, GuardValues

    instr = plan.instruction
    type_ = instr.type
    if plan.kind in ("single", "double"):
        consts = [Constant(type_, v) for v in plan.values]
        return GuardValues(instr, consts, guard_id)
    if plan.kind == "range":
        return GuardRange(
            instr, Constant(type_, plan.lo), Constant(type_, plan.hi), guard_id
        )
    raise ValueError(f"unknown check kind {plan.kind!r}")
