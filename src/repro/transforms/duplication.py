"""State-variable producer-chain duplication (paper Sections III-B, III-C).

For every state variable (loop-header phi carrying state across iterations) a
*shadow phi* is created, and for every incoming value of the original phi the
producer chain of that value is cloned into a shadow chain (Fig. 7).  A
:class:`~repro.ir.instructions.GuardEq` comparing the original and shadow
incoming values is inserted in each incoming block, right before its
terminator — so a divergence is detected before the corrupted value commits to
the next loop iteration.

Chain policy (paper Fig. 7/9):

* loads terminate the chain — their value feeds both chains and address
  faults surface as memory symptoms instead;
* calls, phis (other than the protected state phis), and allocas likewise
  terminate;
* with Optimization 2 enabled and value-check plans available, a
  check-amenable instruction also terminates the chain, and its plan is marked
  ``forced`` so Optimization 1 cannot drop it (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.loops import LoopInfo
from ..analysis.statevars import StateVariable, find_state_variables
from ..analysis.usedef import producer_chain
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BinaryOp,
    Cast,
    FCmp,
    GetElementPtr,
    GuardEq,
    ICmp,
    Instruction,
    IntrinsicCall,
    Phi,
    Select,
)
from ..ir.module import Module
from ..ir.values import Value
from .checkconfig import ProtectionConfig
from .valuechecks import CheckPlan


def clone_instruction(instr: Instruction, operand_map: Dict[int, Value]) -> Instruction:
    """Structural clone of a pure instruction with operands remapped.

    Only chain-duplicable instruction classes are supported (loads, stores,
    calls, and control flow never enter a shadow chain).
    """

    def m(op: Value) -> Value:
        return operand_map.get(id(op), op)

    if isinstance(instr, Phi):
        clone: Instruction = Phi(instr.type)
        for value, block in instr.incomings:
            clone.add_incoming(m(value), block)  # type: ignore[attr-defined]
    elif isinstance(instr, BinaryOp):
        clone = BinaryOp(instr.opcode, m(instr.lhs), m(instr.rhs))
    elif isinstance(instr, ICmp):
        clone = ICmp(instr.predicate, m(instr.operands[0]), m(instr.operands[1]))
    elif isinstance(instr, FCmp):
        clone = FCmp(instr.predicate, m(instr.operands[0]), m(instr.operands[1]))
    elif isinstance(instr, Select):
        ops = instr.operands
        clone = Select(m(ops[0]), m(ops[1]), m(ops[2]))
    elif isinstance(instr, Cast):
        clone = Cast(instr.opcode, m(instr.value), instr.type)
    elif isinstance(instr, GetElementPtr):
        clone = GetElementPtr(m(instr.base), m(instr.index), instr.elem_type)
    elif isinstance(instr, IntrinsicCall):
        clone = IntrinsicCall(instr.intrinsic, [m(op) for op in instr.operands])
    else:
        raise TypeError(f"cannot clone {type(instr).__name__} into a shadow chain")
    clone.is_shadow = True
    clone.shadow_of = instr
    return clone


@dataclass
class DuplicationResult:
    """What the duplication pass did to a module."""

    state_variables: List[StateVariable] = field(default_factory=list)
    num_shadow_instructions: int = 0
    num_guards: int = 0
    #: ids of amenable instructions that terminated a shadow chain (Opt 2);
    #: their check plans must be kept by Optimization 1
    forced_check_ids: Set[int] = field(default_factory=set)
    next_guard_id: int = 0


class DuplicationPass:
    """Applies state-variable duplication to a module in place."""

    def __init__(
        self,
        config: Optional[ProtectionConfig] = None,
        check_plans: Optional[Dict[int, CheckPlan]] = None,
        next_guard_id: int = 0,
    ) -> None:
        self.config = config or ProtectionConfig()
        #: value-check plans (for Opt 2); None disables chain termination at
        #: amenable instructions even when optimization2 is set
        self.check_plans = check_plans
        self.next_guard_id = next_guard_id
        self._header_blocks: Set[int] = set()

    def run(self, module: Module) -> DuplicationResult:
        result = DuplicationResult(next_guard_id=self.next_guard_id)
        for fn in module.functions.values():
            self._run_on_function(fn, result)
        result.next_guard_id = self.next_guard_id
        return result

    # ------------------------------------------------------------------------------

    def _run_on_function(self, fn: Function, result: DuplicationResult) -> None:
        loop_info = LoopInfo.compute(fn)
        state_vars = find_state_variables(fn, loop_info)
        if not state_vars:
            return
        result.state_variables.extend(state_vars)
        # Loop-header phis terminate chains (they are the recurrences being
        # shadowed); merge phis inside loop bodies are duplicated through.
        self._header_blocks = {id(l.header) for l in loop_info.loops}

        # Shadow map shared across all state variables of the function so
        # overlapping chains are cloned once.
        shadow_map: Dict[int, Value] = {}

        # 1. Create all shadow phis first: chains of one state variable may
        #    reference another state variable's phi.
        shadow_phis: List[Tuple[StateVariable, Phi]] = []
        for sv in state_vars:
            phi = sv.phi
            shadow = Phi(phi.type)
            shadow.is_shadow = True
            shadow.shadow_of = phi
            block = phi.parent
            assert block is not None
            block.insert(block.first_non_phi_index(), shadow)
            shadow_map[id(phi)] = shadow
            shadow_phis.append((sv, shadow))
            result.num_shadow_instructions += 1

        stop_at = self._make_stop_predicate(result)

        # 2. Clone incoming chains and wire shadow phis + guards.
        guarded_edges: Set[Tuple[int, int]] = set()
        for sv, shadow_phi in shadow_phis:
            phi = sv.phi
            for value, pred in phi.incomings:
                in_loop = sv.loop.contains(pred)
                if in_loop or self.config.duplicate_init_chains:
                    shadow_value = self._clone_chain(
                        value, shadow_map, stop_at, result
                    )
                else:
                    shadow_value = value
                shadow_phi.add_incoming(shadow_value, pred)
                if shadow_value is not value:
                    edge_key = (id(value), id(pred))
                    if edge_key not in guarded_edges:
                        guarded_edges.add(edge_key)
                        self._insert_guard(pred, value, shadow_value, result)

    def _make_stop_predicate(self, result: DuplicationResult):
        if not self.config.optimization2 or self.check_plans is None:
            return None
        plans = self.check_plans

        def stop(instr: Instruction) -> bool:
            return id(instr) in plans

        return stop

    def _clone_chain(
        self,
        root: Value,
        shadow_map: Dict[int, Value],
        stop_at,
        result: DuplicationResult,
    ) -> Value:
        """Clone the producer chain of ``root``; returns root's shadow (or the
        original value when nothing was duplicable)."""
        if id(root) in shadow_map:
            return shadow_map[id(root)]

        # The chain root itself is always duplicated when duplicable — Opt 2
        # only terminates *deeper* in the chain (a check on the root would
        # leave the recurrence itself unprotected).
        effective_stop = None
        if stop_at is not None:
            effective_stop = lambda i: i is not root and stop_at(i)

        chain = producer_chain(
            root, stop_at=effective_stop, header_blocks=self._header_blocks
        )
        chain_ids = {id(c) for c in chain}

        # Record Opt-2 termination points: chain operands that are amenable
        # instructions outside the chain.
        if self.check_plans is not None:
            for c in chain:
                for op in c.operands:
                    if (
                        isinstance(op, Instruction)
                        and id(op) not in chain_ids
                        and id(op) in self.check_plans
                    ):
                        self.check_plans[id(op)].forced = True
                        result.forced_check_ids.add(id(op))

        for instr in chain:
            if id(instr) in shadow_map:
                continue
            clone = clone_instruction(instr, shadow_map)
            block = instr.parent
            assert block is not None
            if isinstance(clone, Phi):
                block.insert(block.first_non_phi_index(), clone)
            else:
                block.insert_after(instr, clone)
            shadow_map[id(instr)] = clone
            result.num_shadow_instructions += 1

        return shadow_map.get(id(root), root)

    def _insert_guard(
        self, block: BasicBlock, original: Value, shadow: Value, result: DuplicationResult
    ) -> None:
        guard = GuardEq(original, shadow, self.next_guard_id)
        self.next_guard_id += 1
        term = block.terminator
        assert term is not None, f"block %{block.name} lacks a terminator"
        block.insert_before(term, guard)
        result.num_guards += 1


def duplicate_state_variables(
    module: Module,
    config: Optional[ProtectionConfig] = None,
    check_plans: Optional[Dict[int, CheckPlan]] = None,
    next_guard_id: int = 0,
) -> DuplicationResult:
    """Convenience wrapper: run the duplication pass over ``module``."""
    return DuplicationPass(config, check_plans, next_guard_id).run(module)
