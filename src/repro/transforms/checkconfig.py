"""Configuration of the protection transforms.

Every heuristic knob of the paper's compiler passes lives here so the
ablation benchmarks can sweep them: histogram size (B=5 in the paper), the
range threshold R_thr, the coverage needed before a check is considered
worthwhile, the range padding that trades detection tightness against false
positives, and the two duplication/check-interaction optimizations.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ProtectionConfig:
    """Knobs for the duplication + value-check pipeline."""

    # -- value profiling (Algorithm 1) -------------------------------------------
    histogram_bins: int = 5
    top_value_capacity: int = 8
    #: minimum dynamic samples before an instruction's profile is trusted
    min_profile_samples: int = 32
    #: allow expected-value checks on load results (off: checks only cover
    #: computed values, as in the paper's Figure 6 examples)
    check_loads: bool = False
    #: allow checks on values that only ever feed address arithmetic (off:
    #: address faults are covered by memory symptoms instead)
    check_address_values: bool = False

    # -- check amenability (Figure 6) ---------------------------------------------
    #: fraction of profiled samples a check form must cover to be inserted
    coverage_threshold: float = 0.995
    #: single/two-value checks additionally require *every* profiled sample to
    #: match (frequent-value checks must be true invariants) ...
    exact_value_coverage: float = 1.0
    #: ... and at least this many samples (a value seen a handful of times is
    #: not evidence of an invariant)
    min_value_check_samples: int = 64
    #: R_thr for Algorithm 2, as a multiple of the observed value span
    range_threshold_factor: float = 1.0
    #: widest acceptable range check for integer values (absolute width)
    int_range_limit: float = float(1 << 24)
    #: widest acceptable range check for float values (absolute width)
    float_range_limit: float = 1e12
    #: ranges are padded by this fraction of their width on each side — the
    #: checks exist to catch *large* deviations (Figure 2), so generous slack
    #: trades a little coverage for a low false-positive rate on unseen inputs
    range_pad_factor: float = 1.0
    #: minimum absolute padding (so point-like ranges still get slack)
    range_pad_min: float = 8.0
    #: extra padding proportional to the bound magnitude — absorbs the
    #: input-dependent shift of profiled values between train and test inputs
    magnitude_slack: float = 0.5

    # -- optimizations (Section III-C) ----------------------------------------------
    #: Opt 1: only check the deepest amenable instruction of a producer chain
    optimization1: bool = True
    #: Opt 2: terminate duplication chains at amenable instructions
    optimization2: bool = True

    # -- duplication ------------------------------------------------------------------
    #: also duplicate the (once-executed) producer chains of state-variable
    #: init values, not just the in-loop update chains
    duplicate_init_chains: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.coverage_threshold <= 1.0:
            raise ValueError("coverage_threshold must be in (0, 1]")
        if self.histogram_bins < 2:
            raise ValueError("histogram_bins must be >= 2")
        if self.range_pad_factor < 0:
            raise ValueError("range_pad_factor must be non-negative")
