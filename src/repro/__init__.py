"""repro — a full reproduction of *Harnessing Soft Computations for
Low-budget Fault Tolerance* (Khudia & Mahlke, MICRO 2014).

The package builds every layer of the paper's system from scratch:

* :mod:`repro.frontend` — SCL, a small C-like language, compiled to SSA;
* :mod:`repro.ir` — the SSA IR with guard (check) instructions;
* :mod:`repro.analysis` — dominators, loops, use-def, state variables;
* :mod:`repro.profiling` — value profiling (paper Algorithms 1 and 2);
* :mod:`repro.transforms` — state-variable duplication, expected-value
  checks, the full-duplication baseline (the paper's contribution);
* :mod:`repro.sim` — the execution substrate: interpreter, register-file
  fault model, out-of-order timing estimator (paper Table II);
* :mod:`repro.faultinjection` — statistical fault-injection campaigns;
* :mod:`repro.fidelity` — PSNR / segmental SNR / classification metrics;
* :mod:`repro.workloads` — the 13 benchmarks of paper Table I, in SCL;
* :mod:`repro.experiments` — drivers regenerating every table and figure.

Quickstart::

    from repro import protect, compile_source, Interpreter

    module = compile_source(open("kernel.scl").read())
    stats = protect(module, train_inputs={"data": [...]})   # dup + val chks
    Interpreter(module).run(inputs={"data": [...]})
"""

from typing import Dict, Optional, Sequence

from .frontend.compiler import compile_source
from .ir.module import Module
from .profiling.profiler import collect_profiles
from .sim.config import SimConfig
from .sim.interpreter import Interpreter
from .transforms.checkconfig import ProtectionConfig
from .transforms.pipeline import SchemeStats, apply_scheme

__version__ = "1.0.0"


def protect(
    module: Module,
    scheme: str = "dup_valchk",
    train_inputs: Optional[Dict[str, Sequence]] = None,
    entry: str = "main",
    config: Optional[ProtectionConfig] = None,
) -> SchemeStats:
    """One-call protection: profile (if needed) and instrument a module.

    ``scheme`` is one of ``'dup'``, ``'dup_valchk'`` (default — the paper's
    proposed technique; requires ``train_inputs`` for the profiling run), or
    ``'full_dup'``.  The module is transformed in place; the returned stats
    describe what was inserted.
    """
    profiles = None
    if scheme == "dup_valchk":
        cfg = config or ProtectionConfig()
        profiles = collect_profiles(
            module,
            inputs=train_inputs,
            entry=entry,
            num_bins=cfg.histogram_bins,
            top_capacity=cfg.top_value_capacity,
        )
    return apply_scheme(module, scheme, profiles=profiles, config=config)


__all__ = [
    "__version__",
    "compile_source",
    "collect_profiles",
    "protect",
    "apply_scheme",
    "Interpreter",
    "Module",
    "ProtectionConfig",
    "SchemeStats",
    "SimConfig",
]
