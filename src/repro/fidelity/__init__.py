"""Application fidelity metrics: PSNR, segmental SNR, classification error,
and matrix mismatch (paper Table I)."""

from .metrics import (
    SNR_CLAMP_DB,
    FidelityResult,
    classification_error,
    evaluate,
    matrix_mismatch,
    psnr,
    segmental_snr,
)

__all__ = [
    "SNR_CLAMP_DB", "FidelityResult", "classification_error", "evaluate",
    "matrix_mismatch", "psnr", "segmental_snr",
]
