"""Fidelity metrics (paper Table I, column 4).

Each soft-computing benchmark judges output quality with a domain metric:

* PSNR for images, video, and mp3 audio (threshold 30 dB in the paper);
* segmental SNR for g721 audio (threshold 80 dB);
* classification error for the ML benchmarks (threshold 10%);
* output/segment matrix mismatch for the vision benchmarks (threshold 10%).

All metrics here compare a *faulty* output against the *golden* (fault-free)
output of the same binary — the paper's notion of acceptability is relative
to the fault-free run, not to a mathematical ideal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

#: SNR value used for numerically identical signals (the dynamic range of a
#: 16-bit signal; also the per-frame clamp for segmental SNR).
SNR_CLAMP_DB = 96.0


@dataclass(frozen=True)
class FidelityResult:
    """Outcome of a fidelity comparison."""

    metric: str
    score: float
    threshold: float
    #: True when the output is acceptable to the user (ASDC if not identical)
    acceptable: bool
    identical: bool

    def __repr__(self) -> str:
        verdict = "identical" if self.identical else ("ok" if self.acceptable else "BAD")
        return f"<Fidelity {self.metric}={self.score:.2f} thr={self.threshold} {verdict}>"


def _as_float_array(values: Sequence) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    # Corrupted float outputs can contain inf/NaN; treat them as maximally
    # wrong but finite so the metrics stay well-defined.
    return np.nan_to_num(arr, nan=1e18, posinf=1e18, neginf=-1e18)


def psnr(reference: Sequence, observed: Sequence, peak: float = 0.0) -> float:
    """Peak signal-to-noise ratio in dB (higher = closer).

    ``peak`` defaults to the reference signal's dynamic range (255 for 8-bit
    images fed as 0..255 ints).  Identical signals score :data:`SNR_CLAMP_DB`.
    """
    ref = _as_float_array(reference)
    obs = _as_float_array(observed)
    if ref.shape != obs.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {obs.shape}")
    if peak <= 0.0:
        peak = float(ref.max() - ref.min())
        if peak <= 0.0:
            peak = max(abs(float(ref.max())), 1.0)
    mse = float(np.mean((ref - obs) ** 2))
    if mse == 0.0:
        return SNR_CLAMP_DB
    return min(10.0 * math.log10(peak * peak / mse), SNR_CLAMP_DB)


def segmental_snr(
    reference: Sequence, observed: Sequence, frame: int = 64
) -> float:
    """Mean of per-frame SNRs in dB, each clamped to [0, SNR_CLAMP_DB].

    The standard speech-quality metric: local corruption hurts proportionally
    to how many frames it touches.
    """
    ref = _as_float_array(reference)
    obs = _as_float_array(observed)
    if ref.shape != obs.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {obs.shape}")
    if frame <= 0:
        raise ValueError("frame size must be positive")
    snrs = []
    for start in range(0, len(ref), frame):
        r = ref[start : start + frame]
        o = obs[start : start + frame]
        noise = float(np.sum((r - o) ** 2))
        signal = float(np.sum(r * r))
        if noise == 0.0:
            snrs.append(SNR_CLAMP_DB)
        elif signal == 0.0:
            snrs.append(0.0)
        else:
            snrs.append(min(max(10.0 * math.log10(signal / noise), 0.0), SNR_CLAMP_DB))
    return float(np.mean(snrs)) if snrs else SNR_CLAMP_DB


def classification_error(reference: Sequence, observed: Sequence) -> float:
    """Fraction of labels that differ (0.0 = identical classification)."""
    ref = np.asarray(reference)
    obs = np.asarray(observed)
    if ref.shape != obs.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {obs.shape}")
    if ref.size == 0:
        return 0.0
    return float(np.mean(ref != obs))


def matrix_mismatch(reference: Sequence, observed: Sequence) -> float:
    """Fraction of elements that differ (vision benchmarks' output matrices)."""
    return classification_error(reference, observed)


_METRICS = {
    "psnr": (psnr, "higher"),
    "segsnr": (segmental_snr, "higher"),
    "class_error": (classification_error, "lower"),
    "matrix_mismatch": (matrix_mismatch, "lower"),
}


def evaluate(
    metric: str, reference: Sequence, observed: Sequence, threshold: float
) -> FidelityResult:
    """Score ``observed`` against ``reference`` and apply the threshold.

    For 'higher' metrics (PSNR, segSNR) the output is acceptable when the
    score is at or above the threshold; for 'lower' metrics (error rates)
    when at or below.
    """
    try:
        fn, direction = _METRICS[metric]
    except KeyError:
        raise ValueError(f"unknown fidelity metric {metric!r}") from None
    ref = np.asarray(reference)
    obs = np.asarray(observed)
    identical = ref.shape == obs.shape and bool(np.array_equal(ref, obs))
    score = fn(reference, observed)
    acceptable = score >= threshold if direction == "higher" else score <= threshold
    return FidelityResult(
        metric=metric, score=score, threshold=threshold,
        acceptable=bool(acceptable), identical=identical,
    )
