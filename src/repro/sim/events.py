"""Simulator events and traps.

Traps carry the dynamic cycle at which they occurred; the fault-injection
campaign classifies a trap as a hardware detection (HWDetect) when it fires
within the symptom window after injection, and as a Failure otherwise —
exactly the paper's Section IV-C policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


class SimTrap(Exception):
    """Base class for all run-terminating simulator events."""

    def __init__(self, message: str, cycle: int) -> None:
        super().__init__(f"{message} (cycle {cycle})")
        self.message = message
        self.cycle = cycle


class MemoryTrap(SimTrap):
    """Out-of-bounds, unmapped, or otherwise invalid memory access.

    The hardware-symptom analogue of a page fault / alignment fault.
    """

    def __init__(self, kind: str, address: int, cycle: int) -> None:
        super().__init__(f"memory trap [{kind}] at address {address:#x}", cycle)
        self.kind = kind
        self.address = address


class ArithmeticTrap(SimTrap):
    """Integer division/remainder by zero — a hardware-visible symptom."""

    def __init__(self, operation: str, cycle: int) -> None:
        super().__init__(f"arithmetic trap in {operation}", cycle)
        self.operation = operation


class TimeoutTrap(SimTrap):
    """Dynamic instruction budget exhausted (models an infinite loop)."""

    def __init__(self, limit: int, cycle: int) -> None:
        super().__init__(f"exceeded instruction budget of {limit}", cycle)
        self.limit = limit


class GuardTrap(SimTrap):
    """A software check (guard instruction) fired in detection mode."""

    def __init__(self, guard_id: int, guard_kind: str, cycle: int) -> None:
        super().__init__(f"guard {guard_id} ({guard_kind}) fired", cycle)
        self.guard_id = guard_id
        self.guard_kind = guard_kind


class StackOverflowTrap(SimTrap):
    """Stack segment exhausted (deep recursion or huge allocas)."""

    def __init__(self, cycle: int) -> None:
        super().__init__("stack overflow", cycle)


class HarnessContainedTrap(SimTrap):
    """A non-trap Python exception provoked by injected corruption.

    The simulator is itself software: a corrupted value can drive evaluator
    code down paths the real hardware would survive but Python does not —
    ``RecursionError`` from a corrupted call target, ``struct.error`` or
    ``OverflowError`` from a value outside a packable range, and so on.  The
    containment boundary converts any such post-injection exception into this
    trap so every trial still terminates with a classified outcome (counted
    like a hardware symptom: HWDetect inside the symptom window, Failure
    beyond it) instead of escaping as a worker crash.

    Pre-injection exceptions are *not* contained — before the fault lands the
    run is golden, so an exception there is a harness bug that must surface.
    """

    def __init__(self, exc_name: str, detail: str, cycle: int) -> None:
        super().__init__(
            f"contained harness exception {exc_name}: {detail}", cycle
        )
        self.exc_name = exc_name
        self.detail = detail

    @property
    def trap_kind(self) -> str:
        return f"contained:{self.exc_name}"


@dataclass
class GuardStats:
    """Per-run accounting of guard evaluations and failures.

    Used in counting mode (fault-free runs) to measure the false-positive
    rate the paper reports in Section V.
    """

    evaluations: int = 0
    failures_by_guard: Dict[int, int] = field(default_factory=dict)

    @property
    def total_failures(self) -> int:
        return sum(self.failures_by_guard.values())

    def record_failure(self, guard_id: int) -> None:
        self.failures_by_guard[guard_id] = self.failures_by_guard.get(guard_id, 0) + 1


@dataclass
class RunResult:
    """Outcome of one interpreter run that completed (did not trap).

    Attributes:
        return_value: value returned from the entry function.
        instructions: dynamic instruction count (= cycles in the atomic model).
        guard_stats: guard evaluation/failure counters (counting mode only).
        injection: description of the fault injected, if any.
        cycles: estimated out-of-order cycles when a timing model was attached
            (None otherwise).
    """

    return_value: Optional[object]
    instructions: int
    guard_stats: GuardStats
    injection: Optional[object] = None
    cycles: Optional[float] = None
