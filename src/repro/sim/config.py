"""Simulator configuration (paper Table II).

``SimConfig`` bundles the microarchitectural parameters the paper's gem5 setup
used: a 2 GHz out-of-order ARMv7-a-profile core with a 2-wide issue, 192-entry
ROB, 256-entry physical integer register file, 32 KB 2-way L1-D, and 64 KB
2-way L1-I.  The timing model (:mod:`repro.sim.timing`) and fault model
(:mod:`repro.sim.faults`) read their parameters from here, and the Table II
experiment driver prints this structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


#: Issue-slot cost (micro-ops) per opcode class; guards expand to their
#: compare+branch sequences.
DEFAULT_SLOT_COSTS: Dict[str, int] = {
    # Guard sequences assume fused compare-and-branch µops (cbz/cmp+b.cond
    # fusion); the range check uses the classic bias + single unsigned
    # compare idiom, so it is sub + fused-cmp-br = 2 µops.
    "guard_eq": 1,       # fused cmp + br
    "guard_range": 2,    # bias sub + fused unsigned cmp + br
    "guard_values_1": 1, # fused cmp + br
    "guard_values_2": 2, # 2x fused cmp + br
    "load": 2,           # address generation + access
    "store": 2,
    "call": 2,
    "intrinsic": 4,      # libm-style helper sequences
}

#: Result latency (cycles) per opcode; anything missing defaults to 1.
DEFAULT_LATENCIES: Dict[str, int] = {
    "mul": 3,
    "sdiv": 12,
    "udiv": 12,
    "srem": 12,
    "urem": 12,
    "fadd": 3,
    "fsub": 3,
    "fmul": 3,
    "fdiv": 12,
    "frem": 14,
    "fcmp": 2,
    "sitofp": 2,
    "fptosi": 2,
    "fpext": 2,
    "fptrunc": 2,
    "load": 2,           # L1 hit latency; misses add miss_penalty
    "sqrt": 15,
    "exp": 20,
    "log": 20,
    "sin": 20,
    "cos": 20,
    "pow": 25,
}


@dataclass
class CacheConfig:
    """Set-associative cache geometry."""

    size_bytes: int
    associativity: int
    line_bytes: int = 64

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass
class SimConfig:
    """All tunables of the execution substrate (defaults = paper Table II)."""

    # Core (Table II)
    frequency_ghz: float = 2.0
    issue_width: int = 2
    rob_entries: int = 192
    #: issue-queue (scheduler) window — instructions can only issue out of
    #: order within this many in-flight instructions; the key structural
    #: limit on how much duplicated work the core can hide (not in Table II;
    #: sized for an A9-class 2-wide core)
    issue_queue: int = 24
    phys_int_registers: int = 256

    # Memory hierarchy (Table II)
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 2))
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(64 * 1024, 2))
    dtlb_entries: int = 64
    itlb_entries: int = 64

    # Timing-model extras (not in Table II; standard values)
    miss_penalty: int = 30
    mispredict_penalty: int = 9
    latencies: Dict[str, int] = field(default_factory=lambda: dict(DEFAULT_LATENCIES))
    slot_costs: Dict[str, int] = field(default_factory=lambda: dict(DEFAULT_SLOT_COSTS))

    # Fault model (Section IV-C)
    symptom_window_cycles: int = 1000
    register_flip_bits: int = 32  # ARMv7-a general registers are 32-bit
    #: injections pick among this many most-recently-written registers (the
    #: architecturally mapped part of the register file); 0 = all of them
    injection_recent_window: int = 32
    #: probability that the injection targets a register whose value is still
    #: live (will be read again).  Architectural registers mostly hold live
    #: values — a register allocator only keeps what has future uses — while
    #: flips on dead physical registers are masked by construction.
    injection_live_bias: float = 0.75
    stack_segment_bytes: int = 1 << 20
    max_call_depth: int = 256

    def describe(self) -> str:
        """Render a Table II-style parameter listing."""
        rows = [
            ("Processor core", f"@ {self.frequency_ghz:g}GHz, out-of-order"),
            ("Simulation mode", "Syscall emulation (IR interpretation)"),
            ("Physical integer register file size", f"{self.phys_int_registers} entries"),
            ("Reorder Buffer Size", f"{self.rob_entries} entries"),
            ("Issue width", str(self.issue_width)),
            ("L1-I cache", f"{self.l1i.size_bytes // 1024}KB, {self.l1i.associativity}-way"),
            ("L1-D cache", f"{self.l1d.size_bytes // 1024}KB, {self.l1d.associativity}-way"),
            ("DTLB/ITLB", f"{self.dtlb_entries} entries (each)"),
        ]
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)
