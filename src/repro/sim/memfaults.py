"""Memory-hierarchy fault models + golden-run occupancy instrumentation.

The register-file models in :mod:`repro.sim.faults` cover the paper's own
evaluation; real soft-error budgets are dominated by the memory system.  This
module adds that axis in two halves:

* **Occupancy maps.**  An instrumented golden pass (driven by
  ``prepare()``, fused with the snapshot-capture run via
  :class:`FusedCapture` when both are wanted) wraps the fast path's
  load/store address translation and records, per 32-bit word of every
  mapped segment, when it was first written and last read — plus periodic
  *liveness boundaries* (cycle, access-sequence-number pairs) and, at each
  boundary, which lines of the modelled L1D are resident.  The result is an
  :class:`OccupancyMap`: enough to (a) draw injection targets uniformly over
  *occupied* words instead of blind address-space probing, (b) prove a word
  dead at a given injection cycle (no read at-or-after it), and (c) model a
  resident cache line being struck.

* **Injection helpers.**  The shared occupied-word draw, record filling,
  and dead-hit triage used by the memory-hierarchy fault models
  (``mem_transient``, ``mem_stuck_at``, ``cache_line``, ``stack_frame`` —
  defined and registered in :mod:`repro.sim.faults`, which imports this
  module; keeping the dependency one-directional makes either module safe
  to import first).  All model randomness comes from the trial's private
  seed at injection time (zero extra plan draws), so ``jobs=N`` campaigns
  stay byte-identical to serial ones.  Dead-region hits fill the injection
  record exactly as a full run would, then short-circuit to Masked through
  the triage path with ``reason="dead_memory"`` — sound because a flip in a
  word the golden run never reads again leaves execution identical to the
  golden run.

Deadness proofs are *conservative*: a word's last-read access number is
compared against the largest recorded boundary at-or-before the injection
cycle, so reads between that boundary and the injection count as "after" and
keep the word live.  Being conservative only costs a short-circuit, never
correctness.

The map is captured once per prepared workload and never pickled: parallel
workers recompute it deterministically from the same golden run (or inherit
it over fork), so serial and ``jobs=N`` trials draw identical targets.

``REPRO_OCCUPANCY=0`` disables the capture pass (models fall back to
address-space probing); ``REPRO_OCCUPANCY=1`` forces it even for models that
do not consume it (used by the byte-identity pinning tests).
"""

from __future__ import annotations

import os
from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from .cache import ResidencyTracker
from .memory import Memory, MemoryFaultError, Segment
from .snapshot import TriageMasked

__all__ = [
    "FusedCapture",
    "MAX_BOUNDARIES",
    "OCCUPANCY_MODELS",
    "OccupancyMap",
    "OccupancyRecorder",
    "boundary_cadence",
    "draw_occupied_word",
    "fill_memory_record",
    "occupancy_enabled",
    "probe_any_word",
    "triage_dead_memory",
]

#: fault models whose injection draws (or triage proofs) consume the
#: occupancy map; ``prepare()`` only pays for the capture pass when the
#: campaign's resolved model is one of these (``chaos`` mixes them in).
OCCUPANCY_MODELS = frozenset({
    "memory_word", "mem_transient", "mem_stuck_at", "cache_line",
    "stack_frame", "chaos",
})

#: target number of liveness boundaries per golden run
BOUNDARY_TARGET = 64
#: hard cap on recorded boundaries (same spirit as MAX_SNAPSHOTS)
MAX_BOUNDARIES = 256


def boundary_cadence(golden_instructions: int) -> int:
    """Cycles between liveness boundaries.

    Deliberately independent of the snapshot cadence (and every other
    config knob): the boundaries — and therefore every occupancy-backed
    draw and deadness verdict — are a pure function of the golden run, so
    changing ``--snapshot-every`` keeps memory-model results bit-identical.
    """
    return max(1, golden_instructions // BOUNDARY_TARGET)


def occupancy_enabled(model: str) -> bool:
    """Whether the occupancy capture pass should run for ``model``.

    ``REPRO_OCCUPANCY=0`` forces it off (memory models degrade to
    address-space probing), ``REPRO_OCCUPANCY=1`` forces it on regardless
    of model (pinning tests use this to prove ``single_bit`` campaigns are
    byte-identical with the pass enabled).
    """
    env = os.environ.get("REPRO_OCCUPANCY", "").strip()
    if env == "0":
        return False
    if env == "1":
        return True
    return model in OCCUPANCY_MODELS


class OccupancyRecorder:
    """Capture-protocol object for the occupancy pass.

    Implements the same interface ``_run_compiled`` expects of a
    :class:`~repro.sim.snapshot.SnapshotRecorder` (``next_due`` + ``take``)
    plus ``bind_occupancy``, which the fast path calls to wrap the
    interpreter's load/store address translation with the recording hooks.
    """

    def __init__(self, every: int, l1d_config) -> None:
        self.every = every
        self.next_due = every
        self.cache = ResidencyTracker(l1d_config)
        #: access sequence number, as a one-cell list so the hot wrappers
        #: bump it without attribute lookups
        self._asn = [0]
        self.last_read: Dict[int, int] = {}
        self.first_write: Dict[int, int] = {}
        self.written: set = set()
        self.boundaries: List[Tuple[int, int]] = [(0, 0)]
        self.resident: List[Tuple[int, ...]] = [()]
        self.segment_spans: List[Tuple[str, int, int]] = []
        self.total_words = 0

    def bind_occupancy(self, interp):
        """Wrap ``memory._locate`` for loads and stores; returns the pair
        ``(load_locate, store_locate)`` the fast path installs.

        Word indices live in one global space: each segment (in
        ``unique_segments`` order, which is identical for every fresh
        interpreter over the same module) owns a contiguous range of
        word indices.  Trial-side resolution walks the same order.
        """
        memory = interp.memory
        locate = memory._locate
        base: Dict[int, int] = {}
        spans: List[Tuple[str, int, int]] = []
        word_base = 0
        for seg in memory.unique_segments():
            words = seg.size // 4
            base[id(seg)] = word_base
            spans.append((seg.name, word_base, words))
            word_base += words
        self.segment_spans = spans
        self.total_words = word_base

        asn = self._asn
        last_read = self.last_read
        first_write = self.first_write
        written = self.written
        cshift = self.cache.line_shift
        touch_line = self.cache.touch_line

        # An access spans every word (and cache line) between its first and
        # last byte: an 8-byte i64/f64/pointer load covers two 32-bit words,
        # and a byte store at offset 4k+3 still only touches word k.  Missing
        # the upper word would let is_dead() declare it "never read" and
        # unsoundly triage a live fault to Masked.

        def load_locate(address, size):
            seg, off = locate(address, size)
            a = asn[0] + 1
            asn[0] = a
            b = base.get(id(seg))
            if b is not None:
                w = off >> 2
                last = (off + size - 1) >> 2
                last_read[b + w] = a
                while w < last:
                    w += 1
                    last_read[b + w] = a
            line = address >> cshift
            touch_line(line)
            end = (address + size - 1) >> cshift
            while line < end:
                line += 1
                touch_line(line)
            return seg, off

        def store_locate(address, size):
            seg, off = locate(address, size)
            a = asn[0] + 1
            asn[0] = a
            b = base.get(id(seg))
            if b is not None:
                w = off >> 2
                last = (off + size - 1) >> 2
                while True:
                    word = b + w
                    if word not in written:
                        written.add(word)
                        first_write[word] = a
                    if w >= last:
                        break
                    w += 1
            line = address >> cshift
            touch_line(line)
            end = (address + size - 1) >> cshift
            while line < end:
                line += 1
                touch_line(line)
            return seg, off

        return load_locate, store_locate

    def take(self, interp, cb, idx, cycle) -> int:
        """Record one liveness boundary; returns the next due cycle.

        Also trims the tracked register-file write log exactly like
        ``SnapshotRecorder._take`` — any capture object forces the tracked
        compiled variant, whose log would otherwise grow unboundedly.
        """
        cap = interp.config.phys_int_registers
        log = interp._rf_log
        if len(log) > cap:
            drop = len(log) - cap
            interp._rf_base += drop
            del log[:drop]
        self.boundaries.append((cycle, self._asn[0]))
        self.resident.append(self.cache.resident_lines())
        if len(self.boundaries) >= MAX_BOUNDARIES:
            self.next_due = 1 << 62
        else:
            self.next_due = cycle + self.every
        return self.next_due

    def finalize(
        self, output_names: Sequence[str], golden_instructions: int
    ) -> "OccupancyMap":
        """Fold the recorded accesses into an immutable :class:`OccupancyMap`.

        Output-segment words are *always live*: the harness reads them after
        the run through ``read_array`` (which the wrappers never see), so no
        access-based proof can ever declare them dead.
        """
        outputs = set(output_names)
        always_live: List[int] = []
        for name, word_base, words in self.segment_spans:
            if name in outputs:
                always_live.extend(range(word_base, word_base + words))
        live_set = set(always_live)
        occupied = (set(self.last_read) | self.written) - live_set
        sorted_words = sorted(occupied)
        sorted_asns = [self.last_read.get(w, 0) for w in sorted_words]
        # Terminal boundary, past every injectable cycle: contributes the
        # end-of-run cache residency to the AVF stats but is never selected
        # by a deadness lookup (reads during the final cycle would postdate
        # an injection there, so no real boundary may sit at golden cycle).
        boundaries = self.boundaries + [(golden_instructions + 1, self._asn[0])]
        resident = self.resident + [self.cache.resident_lines()]
        return OccupancyMap(
            golden_instructions=golden_instructions,
            segment_spans=list(self.segment_spans),
            total_words=self.total_words,
            boundary_cycles=[c for c, _ in boundaries],
            boundary_asns=[a for _, a in boundaries],
            resident_lines=resident,
            always_live=sorted(always_live),
            sorted_words=sorted_words,
            sorted_asns=sorted_asns,
            first_writes=dict(self.first_write),
            cache_line_shift=self.cache.line_shift,
            cache_total_lines=self.cache.total_lines,
        )


class FusedCapture:
    """Drive a snapshot recorder and an occupancy recorder in ONE golden run.

    ``prepare()`` uses this when a campaign wants both restore snapshots and
    an occupancy map, so a memory-model prepare pays for exactly one
    instrumented pass — the occupancy cost collapses from a full extra run
    to the load/store wrapper overhead.

    Fusing cannot perturb either product: the fast path checks due-ness at
    the same superblock boundaries regardless of which recorder is attached,
    a ``take`` never advances the cycle counter, and both recorders trim the
    register-file write log identically (keeping only the newest writes that
    can still occupy a slot), so each sub-recorder sees exactly what its
    dedicated pass would.  The resulting map is bit-identical to
    ``_capture_occupancy``'s dedicated pass — asserted by the tests.
    """

    def __init__(self, snapshot_recorder, occupancy_recorder) -> None:
        self.snapshot = snapshot_recorder
        self.occupancy = occupancy_recorder
        self.next_due = min(snapshot_recorder.next_due,
                            occupancy_recorder.next_due)

    def bind_occupancy(self, interp):
        return self.occupancy.bind_occupancy(interp)

    def take(self, interp, cb, idx, cycle) -> int:
        """Dispatch to whichever sub-recorder is due; returns the earlier
        of the two next-due cycles."""
        if cycle >= self.snapshot.next_due:
            self.snapshot.take(interp, cb, idx, cycle)
        if cycle >= self.occupancy.next_due:
            self.occupancy.take(interp, cb, idx, cycle)
        self.next_due = min(self.snapshot.next_due, self.occupancy.next_due)
        return self.next_due


class OccupancyMap:
    """Immutable result of the occupancy pass (see module docstring).

    Word indices are global: ``segment_spans`` is ``(name, base_word,
    words)`` per segment in ``unique_segments`` order.  Deadness lookups
    bisect the boundary arrays; draws are uniform over occupied words
    (always-live output words included).
    """

    def __init__(
        self,
        golden_instructions: int,
        segment_spans: List[Tuple[str, int, int]],
        total_words: int,
        boundary_cycles: List[int],
        boundary_asns: List[int],
        resident_lines: List[Tuple[int, ...]],
        always_live: List[int],
        sorted_words: List[int],
        sorted_asns: List[int],
        first_writes: Dict[int, int],
        cache_line_shift: int,
        cache_total_lines: int,
    ) -> None:
        self.golden_instructions = golden_instructions
        self.segment_spans = segment_spans
        self.total_words = total_words
        self.boundary_cycles = boundary_cycles
        self.boundary_asns = boundary_asns
        self.resident_lines = resident_lines
        self.always_live = always_live
        self._always_live_set = frozenset(always_live)
        self.sorted_words = sorted_words
        self.sorted_asns = sorted_asns
        self.first_writes = first_writes
        self.cache_line_shift = cache_line_shift
        self.cache_total_lines = cache_total_lines

    # -- deadness / draws --------------------------------------------------------

    def _boundary_index(self, cycle: int) -> int:
        return max(0, bisect_right(self.boundary_cycles, cycle) - 1)

    def asn_bound(self, cycle: int) -> int:
        """Accesses performed strictly before the largest boundary at-or-
        before ``cycle`` — the sound cutoff for deadness claims."""
        return self.boundary_asns[self._boundary_index(cycle)]

    def is_dead(self, word: int, cycle: int) -> bool:
        """True when no read of ``word`` can occur at-or-after ``cycle``.

        Output words are never dead; an occupied word is dead when its last
        read predates the boundary cutoff; an unoccupied word is never read
        at all.
        """
        if word in self._always_live_set:
            return False
        i = bisect_left(self.sorted_words, word)
        if i == len(self.sorted_words) or self.sorted_words[i] != word:
            return True
        return self.sorted_asns[i] <= self.asn_bound(cycle)

    def occupied_count(self) -> int:
        return len(self.always_live) + len(self.sorted_words)

    def draw_occupied(self, rng) -> Optional[int]:
        """Uniform draw over occupied words (output words included)."""
        n = self.occupied_count()
        if n == 0:
            return None
        k = rng.randrange(n)
        if k < len(self.always_live):
            return self.always_live[k]
        return self.sorted_words[k - len(self.always_live)]

    def resident_at(self, cycle: int) -> Tuple[int, ...]:
        """L1D lines resident at the largest boundary at-or-before
        ``cycle`` (the golden run's cache state nearest the injection)."""
        return self.resident_lines[self._boundary_index(cycle)]

    # -- word-space resolution ---------------------------------------------------

    def locate_word(self, memory: Memory, word: int) -> Tuple[Segment, int]:
        """Resolve a global word index against a *trial* interpreter's
        memory; raises :class:`MemoryFaultError` (contained, classified)
        when the trial's layout disagrees with the map."""
        segments = memory.unique_segments()
        if len(segments) != len(self.segment_spans):
            raise MemoryFaultError(
                f"occupancy map has {len(self.segment_spans)} segments, "
                f"trial memory has {len(segments)}"
            )
        for (name, word_base, words), seg in zip(self.segment_spans, segments):
            if word < word_base + words:
                if seg.name != name or seg.size // 4 != words:
                    raise MemoryFaultError(
                        f"occupancy segment {name!r} ({words} words) does "
                        f"not match trial segment {seg.name!r}"
                    )
                return seg, (word - word_base) * 4
        raise MemoryFaultError(
            f"word {word} outside occupancy space ({self.total_words} words)"
        )

    def word_of(self, memory: Memory, seg: Segment, offset: int) -> Optional[int]:
        """Inverse of :meth:`locate_word`; None when ``seg`` is unknown to
        the map (deadness then stays unproven — conservative)."""
        for (name, word_base, words), cand in zip(
            self.segment_spans, memory.unique_segments()
        ):
            if cand is seg:
                w = offset >> 2
                return word_base + w if 0 <= w < words else None
        return None

    # -- reporting ---------------------------------------------------------------

    def residency(self) -> List[Dict[str, object]]:
        """Per-structure occupied-bit residency rows for the AVF report."""
        occupied_by_span: Dict[int, int] = {}
        for word in self.always_live + self.sorted_words:
            i = self._span_of(word)
            occupied_by_span[i] = occupied_by_span.get(i, 0) + 1
        rows: List[Dict[str, object]] = []
        for i, (name, _word_base, words) in enumerate(self.segment_spans):
            occ = occupied_by_span.get(i, 0)
            structure = "stack" if name == "__stack__" else f"segment:{name}"
            rows.append({
                "structure": structure,
                "occupied_words": occ,
                "total_words": words,
                "residency": round(occ / words, 6) if words else 0.0,
            })
        if self.resident_lines:
            avg = sum(len(r) for r in self.resident_lines) / len(
                self.resident_lines
            )
        else:  # pragma: no cover - recorder always seeds one boundary
            avg = 0.0
        rows.append({
            "structure": "cache",
            "occupied_words": round(avg, 1),
            "total_words": self.cache_total_lines,
            "residency": round(avg / self.cache_total_lines, 6)
            if self.cache_total_lines else 0.0,
        })
        rows.append({
            "structure": "regfile",
            "occupied_words": None,
            "total_words": None,
            "residency": 1.0,
        })
        return rows

    def _span_of(self, word: int) -> int:
        for i, (_name, word_base, words) in enumerate(self.segment_spans):
            if word < word_base + words:
                return i
        return len(self.segment_spans) - 1  # pragma: no cover


# ---------------------------------------------------------------------------
# injection helpers (consumed by the fault models in repro.sim.faults)
# ---------------------------------------------------------------------------


def triage_dead_memory(interp) -> None:
    """Short-circuit a provably-dead memory hit to Masked (triage only)."""
    if interp._triage:
        raise TriageMasked("dead_memory")


def fill_memory_record(
    record, interp, top_frame, seg: Segment, offset: int,
    before: int, after: int, dead: bool, prefix: str = "mem",
) -> None:
    """Populate the injection record exactly as a full run would see it —
    dead hits must produce byte-identical trial rows with triage on or off.
    """
    record.landed = True
    record.was_live = not dead
    record.value_name = f"<{prefix}:{seg.name}+{offset:#x}>"
    record.type_name = "i32"
    record.before = before
    record.after = after
    frame = top_frame if top_frame is not None else interp._frame
    if frame is not None:
        record.function = frame.function.name


def draw_occupied_word(interp, plan):
    """Shared occupancy-backed target draw: ``(seg, offset, dead)`` or
    None when the map records no occupied word (nothing to corrupt)."""
    occ = interp._occupancy
    word = occ.draw_occupied(interp._rng)
    if word is None:  # pragma: no cover - output words are always occupied
        return None
    seg, offset = occ.locate_word(interp.memory, word)
    return seg, offset, occ.is_dead(word, plan.cycle)


def probe_any_word(interp) -> Optional[Tuple[Segment, int]]:
    """Fallback draw without an occupancy map: one uniform word over the
    mapped address space (no liveness knowledge, so ``dead`` is unprovable).
    """
    memory = interp.memory
    segments = memory.unique_segments()
    total_words = sum(seg.size // 4 for seg in segments)
    if total_words == 0:  # pragma: no cover - interpreter always maps memory
        return None
    word = interp._rng.randrange(total_words)
    for seg in segments:  # pragma: no branch - word < total_words
        words = seg.size // 4
        if word < words:
            return seg, word * 4
        word -= words
    return None  # pragma: no cover - unreachable by construction
