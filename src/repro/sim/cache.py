"""L1 data-cache and branch-predictor models for the timing estimator.

Both are deliberately simple — the paper's overhead numbers are *relative*
(instrumented vs. original runtime), so what matters is that extra loads and
branches added by the protection transforms pay realistic costs.
"""

from __future__ import annotations

from typing import Dict, List

from .config import CacheConfig


class SetAssociativeCache:
    """LRU set-associative cache; ``access`` returns True on hit."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.line_shift = config.line_bytes.bit_length() - 1
        # Each set is an ordered list of tags, most-recently-used last.
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        line = address >> self.line_shift
        set_idx = line % self.num_sets
        ways = self._sets[set_idx]
        try:
            ways.remove(line)
            ways.append(line)
            self.hits += 1
            return True
        except ValueError:
            ways.append(line)
            if len(ways) > self.config.associativity:
                ways.pop(0)
            self.misses += 1
            return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0


class ResidencyTracker:
    """Which-lines-are-resident model of one cache array.

    A stripped-down companion to :class:`SetAssociativeCache` for the
    golden-run occupancy pass: same geometry and LRU policy, but it tracks
    *residency* (the set of cached lines) instead of hit/miss counts, using
    one insertion-ordered dict per set so the per-access cost stays small
    enough for the load/store hot path of the instrumented capture run.
    """

    __slots__ = ("num_sets", "line_shift", "ways", "total_lines", "_sets")

    def __init__(self, config: CacheConfig) -> None:
        self.num_sets = config.num_sets
        self.line_shift = config.line_bytes.bit_length() - 1
        self.ways = config.associativity
        self.total_lines = self.num_sets * self.ways
        # dict per set, insertion order = LRU order (oldest first)
        self._sets: List[Dict[int, bool]] = [
            {} for _ in range(self.num_sets)
        ]

    def touch(self, address: int) -> None:
        self.touch_line(address >> self.line_shift)

    def touch_line(self, line: int) -> None:
        s = self._sets[line % self.num_sets]
        s.pop(line, None)
        s[line] = True
        if len(s) > self.ways:
            del s[next(iter(s))]

    def resident_lines(self) -> tuple:
        """Every resident line, in deterministic set-then-age order."""
        return tuple(line for s in self._sets for line in s)


class BranchPredictor:
    """Per-branch 2-bit saturating counters; ``predict_and_update`` returns
    True when the prediction was correct."""

    def __init__(self) -> None:
        self._counters: Dict[int, int] = {}
        self.correct = 0
        self.mispredicts = 0

    def predict_and_update(self, branch_key: int, taken: bool) -> bool:
        counter = self._counters.get(branch_key, 2)  # weakly taken default
        predicted_taken = counter >= 2
        if taken and counter < 3:
            counter += 1
        elif not taken and counter > 0:
            counter -= 1
        self._counters[branch_key] = counter
        if predicted_taken == taken:
            self.correct += 1
            return True
        self.mispredicts += 1
        return False

    @property
    def accuracy(self) -> float:
        total = self.correct + self.mispredicts
        return self.correct / total if total else 1.0

    def reset(self) -> None:
        self._counters.clear()
        self.correct = 0
        self.mispredicts = 0
