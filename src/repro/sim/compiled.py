"""Pre-compiled fast execution path for the IR interpreter.

The reference loop in :mod:`repro.sim.interpreter` re-resolves every
instruction on every retirement: an isinstance-chain dispatch, an opcode table
lookup, and a generic ``_fetch`` per operand.  For a fault-injection campaign
the same module runs thousands of times, so this module performs that
resolution **once per module** and caches the result:

* every instruction becomes a specialized *step closure* ``step(I, frame,
  vals)`` with its evaluator inlined (integer wrap is emitted as a pure
  arithmetic expression, no calls), constant operands folded to raw Python
  values, and SSA operands pre-bound to their ``id()`` dictionary keys;
* every basic block becomes a :class:`CompiledBlock` with its phi moves
  pre-staged per predecessor, so a taken edge is one dict lookup;
* calls and returns pre-bind the callee entry block and the return-resume
  point, so the inter-procedural transfer is a couple of attribute writes;
* maximal straight-line runs of non-control instructions are additionally
  fused into **superblock closures** (``CompiledBlock.fused``): one Python
  call executes the whole run with no per-instruction driver-loop iteration.
  The driving loop enters a superblock only when neither the pending
  injection cycle nor the instruction budget falls inside the run, so
  per-instruction event checks are never skipped when they could fire; trap
  cycles stay exact because a fused body stores its intra-run progress in
  ``I._sbk`` before every instruction that can raise a
  :class:`~repro.sim.events.SimTrap` (integer div/rem, loads, stores,
  guards, alloca), and the driver re-times an escaping trap from that
  marker.

Closures are produced by exec-based *makers* cached by source text, so the
number of distinct ``exec`` calls is bounded by the number of distinct
instruction shapes (a few dozen process-wide), while each closure carries its
own constants in cell variables.

Semantics are mirrored from the reference loop **exactly** — same evaluator
tables (:mod:`repro.sim.ops`), same memory access rules, same trap order,
same register-file write order — and the differential tests in
``tests/test_sim_compiled.py`` plus the campaign golden files hold the two
paths bit-identical.  Two deliberate differences, both invisible to existing
clients: traps are raised from closures with ``cycle=-1`` and re-timed by the
driving loop (:class:`~repro.sim.events.SimTrap` messages are built at
construction), and ``Interpreter.cycle`` is only synced at injection points,
trap exits, and run end (no in-tree value hook reads it mid-run).

Compiled code is cached on the module object and keyed by an identity token
over every function, block, instruction, operand, successor, and callee.  The
cache *pins* those objects, so a matching token proves the structure is
unchanged (a live ``id`` cannot be reused); any in-place transform produces a
new token and triggers recompilation.
"""

from __future__ import annotations

import re
import struct
from typing import Callable, Dict, List, Optional, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    GetElementPtr,
    GuardEq,
    GuardRange,
    GuardValues,
    ICmp,
    IntrinsicCall,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from ..ir.module import Module
from ..ir.types import F32, F64, FloatType, IntType, PointerType
from ..ir.values import Constant, GlobalVariable, UndefValue
from ..obs.metrics import global_registry as _obs_registry
from .events import ArithmeticTrap, GuardTrap, StackOverflowTrap
from .ops import FCMP_EVAL, ICMP_EVAL, INTRINSIC_EVAL, c_div, c_rem, float_div

__all__ = [
    "STOP",
    "UNWIND",
    "CompiledBlock",
    "CompiledFunction",
    "CompiledModule",
    "compile_module",
    "module_token",
    "superblock_stats",
]

_F32_STRUCT = struct.Struct("<f")
_F64_STRUCT = struct.Struct("<d")
_MISSING = object()

#: Step-closure return sentinels: ``None`` means fall through to the next
#: instruction; a :class:`CompiledBlock` means jump; ``UNWIND`` means the
#: current frame changed (call or return) — resume from ``I._resume_cb`` /
#: ``I._resume_idx``; ``STOP`` means the entry function returned.
UNWIND = object()
STOP = object()


def _missing_value(I, frame, value):
    """Mirror of the reference ``_fetch`` fallback for unbound SSA values."""
    if I._control_fault_fired:
        return 0.0 if value.type.is_float else 0
    raise RuntimeError(
        f"value {value.short()} has no binding in frame of @{frame.function.name}"
    )


def _f32_round(x: float) -> float:
    return _F32_STRUCT.unpack(_F32_STRUCT.pack(x))[0]


class CompiledBlock:
    """One basic block: step closures plus pre-staged phi moves."""

    __slots__ = ("block", "code", "fused", "n_phis", "phi_stages",
                 "phi_fallback")

    def __init__(self, block: BasicBlock) -> None:
        self.block = block
        self.code: List[Optional[Callable]] = []
        #: parallel to ``code``: at the start index of each maximal
        #: straight-line run of >= 2 non-control instructions, the
        #: ``(superblock closure, run length)`` executing the whole run in
        #: one call; ``None`` elsewhere
        self.fused: List[Optional[Tuple[Callable, int]]] = []
        self.n_phis = 0
        #: predecessor block → (commit closure, phi count); the closure
        #: performs the whole parallel copy (all fetches before any commit)
        self.phi_stages: Dict[BasicBlock, Tuple[Callable, int]] = {}
        #: stage used for a predecessor with no phi incoming (control faults
        #: land on arbitrary blocks; the reference loop reads the first
        #: incoming, modelling a garbage register read); ``None`` when the
        #: block has no phis
        self.phi_fallback: Optional[Tuple[Callable, int]] = None


class CompiledFunction:
    __slots__ = ("function", "blocks", "entry_cb")

    def __init__(self, function: Function) -> None:
        self.function = function
        self.blocks: Dict[BasicBlock, CompiledBlock] = {
            block: CompiledBlock(block) for block in function.blocks
        }
        self.entry_cb = self.blocks[function.entry]


class CompiledModule:
    """All compiled functions of one module for one (track, hooked) variant.

    ``pinned`` holds a strong reference to every object whose ``id`` appears
    in ``token`` — that is what makes token comparison sound (see module
    docstring).
    """

    __slots__ = ("module", "variant", "token", "functions", "pinned")

    def __init__(self, module: Module, variant: Tuple[bool, bool],
                 token: Tuple, pinned: List) -> None:
        self.module = module
        self.variant = variant
        self.token = token
        self.pinned = pinned
        self.functions: Dict[Function, CompiledFunction] = {}


# ---------------------------------------------------------------------------
# Structure token
# ---------------------------------------------------------------------------


def _snapshot(module: Module) -> List:
    """Every object whose identity the compiled code depends on."""
    pinned: List = []
    add = pinned.append
    for fn in module.functions.values():
        add(fn)
        for block in fn.blocks:
            add(block)
            for instr in block.instructions:
                add(instr)
                pinned.extend(instr._operands)
                cls = instr.__class__
                if cls is Br:
                    add(instr.target)
                elif cls is CondBr:
                    add(instr.if_true)
                    add(instr.if_false)
                elif cls is Phi:
                    pinned.extend(instr.incoming_blocks)
                elif cls is Call:
                    add(instr.callee)
    return pinned


def module_token(module: Module) -> Tuple[int, ...]:
    """Identity token over the module structure; changes on any IR mutation."""
    return tuple(map(id, _snapshot(module)))


# ---------------------------------------------------------------------------
# Closure makers (exec-cached by source text)
# ---------------------------------------------------------------------------

_ENV: Dict[str, object] = {
    "ArithmeticTrap": ArithmeticTrap,
    "GuardTrap": GuardTrap,
    "StackOverflowTrap": StackOverflowTrap,
    "UNWIND": UNWIND,
    "STOP": STOP,
    "_mv": _missing_value,
    "from_bytes": int.from_bytes,
    "_ps": None,  # bound below, after _phi_slow is defined
}

_MAKER_CACHE: Dict[Tuple[Tuple[str, ...], str], Callable] = {}


def _build_step(bindings: List[Tuple[str, object]], body: str) -> Callable:
    """Compile ``body`` into a step closure with ``bindings`` as cells."""
    names = tuple(name for name, _ in bindings)
    maker = _MAKER_CACHE.get((names, body))
    if maker is None:
        indented = "".join(
            "        " + line + "\n" for line in body.rstrip("\n").split("\n")
        )
        src = (
            f"def _make({', '.join(names)}):\n"
            f"    def step(I, frame, vals):\n"
            f"{indented}"
            f"    return step\n"
        )
        ns = dict(_ENV)
        exec(compile(src, "<ir-fastpath>", "exec"), ns)
        maker = ns["_make"]
        _MAKER_CACHE[(names, body)] = maker
    return maker(*(value for _, value in bindings))


def _operand(op, i: int, bindings: List[Tuple[str, object]], dest: str) -> str:
    """Code fragment assigning operand ``op`` to local ``dest``.

    Mirrors the reference ``_fetch`` resolution order; constants fold to raw
    values and SSA values become a pre-keyed dict lookup.
    """
    cls = op.__class__
    if cls is Constant:
        bindings.append((f"c{i}", op.value))
        return f"{dest} = c{i}\n"
    if cls is UndefValue:
        return f"{dest} = 0\n"
    if cls is GlobalVariable:
        bindings.append((f"n{i}", op.name))
        return f"{dest} = I._global_addr[n{i}]\n"
    bindings.append((f"k{i}", id(op)))
    bindings.append((f"o{i}", op))
    return (
        f"try:\n"
        f"    {dest} = vals[k{i}]\n"
        f"except KeyError:\n"
        f"    {dest} = _mv(I, frame, o{i})\n"
    )


def _phi_slow(I, stage, frame, vals, track: bool, hooked: bool) -> None:
    """Getter-based phi commit, used when a fast fetch raised ``KeyError``.

    Only reachable after a control fault lands on a block whose phis name
    values that were never computed; mirrors the reference loop's
    ``_missing_value`` behaviour exactly (getters are pure, so re-running
    the fetches the fast path already did is safe).
    """
    fetched = [g(I, frame, vals) for g, _k, _p in stage]
    for (_g, key, phi), value in zip(stage, fetched):
        vals[key] = value
        if track:
            I._rf_log.append((frame, phi))
        if hooked:
            I.value_hook(phi, value)


_ENV["_ps"] = _phi_slow


def _build_commit(incomings, phis, fallback, track: bool,
                  hooked: bool) -> Callable:
    """One closure committing every phi of a block for one predecessor.

    Emits all fetches into locals first, then all dict writes — the
    parallel-copy semantics of the reference loop — with constants folded
    and tracking/hook statements baked per variant.
    """
    b: List[Tuple[str, object]] = []
    fetch = ""
    for i, op in enumerate(incomings):
        cls = op.__class__
        if cls is Constant:
            b.append((f"c{i}", op.value))
            fetch += f"    t{i} = c{i}\n"
        elif cls is UndefValue:
            fetch += f"    t{i} = 0\n"
        elif cls is GlobalVariable:
            b.append((f"n{i}", op.name))
            fetch += f"    t{i} = I._global_addr[n{i}]\n"
        else:
            b.append((f"k{i}", id(op)))
            fetch += f"    t{i} = vals[k{i}]\n"
    b.append(("fb", fallback))
    b.append(("trk", track))
    b.append(("hkd", hooked))
    code = (
        "try:\n"
        + fetch
        + "except KeyError:\n"
        "    return _ps(I, fb, frame, vals, trk, hkd)\n"
    )
    for i, phi in enumerate(phis):
        b.append((f"d{i}", id(phi)))
        code += f"vals[d{i}] = t{i}\n"
        if track or hooked:
            b.append((f"p{i}", phi))
        if track:
            code += f"I._rf_log.append((frame, p{i}))\n"
        if hooked:
            code += f"I.value_hook(p{i}, t{i})\n"
    code += "return None\n"
    return _build_step(b, code)


def _getter(op) -> Callable:
    """Plain-closure operand getter (used for staged phi moves)."""
    cls = op.__class__
    if cls is Constant:
        v = op.value
        return lambda I, frame, vals: v
    if cls is UndefValue:
        return lambda I, frame, vals: 0
    if cls is GlobalVariable:
        name = op.name
        return lambda I, frame, vals: I._global_addr[name]
    key = id(op)

    def get(I, frame, vals, _key=key, _op=op):
        v = vals.get(_key, _MISSING)
        if v is _MISSING:
            return _missing_value(I, frame, _op)
        return v

    return get


def _post(instr, track: bool, hooked: bool,
          bindings: List[Tuple[str, object]], result: str = "r",
          hook: bool = True) -> str:
    """Register-file / value-hook writes after a producing instruction.

    ``hook=False`` for GEP and Alloca, whose results the reference loop never
    reports to the value hook.
    """
    if not (track or (hooked and hook)):
        return ""
    bindings.append(("ins", instr))
    code = ""
    if track:
        # Lazy tracking: appending (frame, producer) to a log is ~3x cheaper
        # than a RegisterFile.write; the driving loop replays the log into the
        # real register file at the injection instant (the only reader).
        code += "I._rf_log.append((frame, ins))\n"
    if hooked and hook:
        code += f"I.value_hook(ins, {result})\n"
    return code


def _int_wrap_expr(expr: str) -> str:
    """Inline two's-complement wrap: ``((expr & m) ^ s) - s``.

    Equals ``IntType.wrap`` for every width (``s`` is bound to 0 for i1,
    where wrap is a plain mask).
    """
    return f"((({expr}) & m) ^ s) - s"


def _bind_int_type(t: IntType, bindings: List[Tuple[str, object]]) -> None:
    bindings.append(("m", t.mask))
    bindings.append(("s", t.sign_bit if t.bits > 1 else 0))


_INT_BINOP_EXPR = {
    "add": "a + b",
    "sub": "a - b",
    "mul": "a * b",
    "and": "a & b",
    "or": "a | b",
    "xor": "a ^ b",
    "shl": "a << (b & bm)",
    "lshr": "(a & m) >> (b & bm)",
    "ashr": "a >> (b & bm)",
}

_INT_DIV_EXPR = {
    "sdiv": "c_div(a, b)",
    "udiv": "(a & m) // (b & m)",
    "srem": "c_rem(a, b)",
    "urem": "(a & m) % (b & m)",
}

_FLOAT_BINOP_EXPR = {
    "fadd": "a + b",
    "fsub": "a - b",
    "fmul": "a * b",
    "fdiv": "fd(a, b)",
    "frem": "fr(a, b)",
}

_ICMP_EXPR = {
    "eq": "a == b",
    "ne": "a != b",
    "slt": "a < b",
    "sle": "a <= b",
    "sgt": "a > b",
    "sge": "a >= b",
    "ult": "(a & m) < (b & m)",
    "ule": "(a & m) <= (b & m)",
    "ugt": "(a & m) > (b & m)",
    "uge": "(a & m) >= (b & m)",
}

_FCMP_EXPR = {
    "oeq": "a == b",
    # one: ordered-and-unequal; x == x is the inline not-NaN test
    "one": "a != b and a == a and b == b",
    "olt": "a < b",
    "ole": "a <= b",
    "ogt": "a > b",
    "oge": "a >= b",
}


# ---------------------------------------------------------------------------
# Per-kind compilers
# ---------------------------------------------------------------------------


def _compile_binop(instr, track, hooked):
    b: List[Tuple[str, object]] = []
    ops = instr._operands
    code = _operand(ops[0], 0, b, "a") + _operand(ops[1], 1, b, "b")
    opcode = instr.opcode
    if opcode in _INT_BINOP_EXPR:
        _bind_int_type(instr.type, b)
        if "bm" in _INT_BINOP_EXPR[opcode]:
            b.append(("bm", instr.type.bits - 1))
        code += f"r = {_int_wrap_expr(_INT_BINOP_EXPR[opcode])}\n"
    elif opcode in _INT_DIV_EXPR:
        _bind_int_type(instr.type, b)
        b.append(("opc", opcode))
        if opcode == "sdiv":
            b.append(("c_div", c_div))
        elif opcode == "srem":
            b.append(("c_rem", c_rem))
        code += (
            "if b == 0:\n"
            "    raise ArithmeticTrap(opc, -1)\n"
            f"r = {_int_wrap_expr(_INT_DIV_EXPR[opcode])}\n"
        )
    else:
        if opcode == "fdiv":
            b.append(("fd", float_div))
        elif opcode == "frem":
            from .ops import FLOAT_BINOP_EVAL

            b.append(("fr", FLOAT_BINOP_EVAL["frem"]))
        code += f"r = {_FLOAT_BINOP_EXPR[opcode]}\n"
    b.append(("kr", id(instr)))
    code += "vals[kr] = r\n"
    code += _post(instr, track, hooked, b)
    code += "return None\n"
    return b, code


def _compile_load(instr, track, hooked):
    b: List[Tuple[str, object]] = []
    code = _operand(instr._operands[0], 0, b, "p")
    t = instr.type
    if isinstance(t, IntType):
        b.append(("sz", t.size_bytes))
        _bind_int_type(t, b)
        raw = "from_bytes(seg.data[off:off + sz], 'little')"
        code += (
            "seg, off = I._mem_locate(p, sz)\n"
            f"r = {_int_wrap_expr(raw)}\n"
        )
    elif isinstance(t, FloatType):
        b.append(("sz", t.size_bytes))
        b.append(("st", _F64_STRUCT if t is F64 else _F32_STRUCT))
        code += (
            "seg, off = I._mem_locate(p, sz)\n"
            "r = st.unpack_from(seg.data, off)[0]\n"
        )
    elif isinstance(t, PointerType):
        code += (
            "seg, off = I._mem_locate(p, 8)\n"
            "r = from_bytes(seg.data[off:off + 8], 'little')\n"
        )
    else:  # pragma: no cover - mirrors Memory.load's TypeError
        b.append(("t", t))
        code += "r = I.memory.load(t, p)\n"
    b.append(("kr", id(instr)))
    code += "vals[kr] = r\n"
    code += _post(instr, track, hooked, b)
    code += "return None\n"
    return b, code


def _compile_store(instr, track, hooked):
    b: List[Tuple[str, object]] = []
    ops = instr._operands
    code = _operand(ops[0], 0, b, "v") + _operand(ops[1], 1, b, "p")
    t = ops[0].type
    if isinstance(t, IntType):
        b.append(("sz", t.size_bytes))
        b.append(("m", t.mask))
        code += (
            "seg, off = I._mem_store_locate(p, sz)\n"
            "seg.data[off:off + sz] = (v & m).to_bytes(sz, 'little')\n"
        )
    elif isinstance(t, FloatType):
        b.append(("sz", t.size_bytes))
        b.append(("st", _F64_STRUCT if t is F64 else _F32_STRUCT))
        b.append(("inf", float("inf")))
        b.append(("ninf", float("-inf")))
        code += (
            "seg, off = I._mem_store_locate(p, sz)\n"
            "try:\n"
            "    st.pack_into(seg.data, off, v)\n"
            "except (OverflowError, ValueError):\n"
            "    st.pack_into(seg.data, off, inf if v > 0 else ninf)\n"
        )
    elif isinstance(t, PointerType):
        code += (
            "seg, off = I._mem_store_locate(p, 8)\n"
            "seg.data[off:off + 8] = (v & 0xFFFFFFFFFFFFFFFF)"
            ".to_bytes(8, 'little')\n"
        )
    else:  # pragma: no cover - mirrors Memory.store's TypeError
        b.append(("t", t))
        code += "I.memory.store(t, p, v)\n"
    code += "return None\n"
    return b, code


def _compile_gep(instr, track, hooked):
    b: List[Tuple[str, object]] = []
    ops = instr._operands
    code = _operand(ops[0], 0, b, "a") + _operand(ops[1], 1, b, "b")
    b.append(("esz", instr.elem_size))
    b.append(("kr", id(instr)))
    code += "vals[kr] = (a + b * esz) & 0xFFFFFFFFFFFFFFFF\n"
    code += _post(instr, track, hooked, b, hook=False)
    code += "return None\n"
    return b, code


def _compile_icmp(instr, track, hooked):
    b: List[Tuple[str, object]] = []
    ops = instr._operands
    code = _operand(ops[0], 0, b, "a") + _operand(ops[1], 1, b, "b")
    expr = _ICMP_EXPR[instr.predicate]
    if instr.predicate in ("ult", "ule", "ugt", "uge"):
        mask = getattr(ops[0].type, "mask", None)
        if mask is None:
            # Unsigned predicate on a maskless type: defer to the shared
            # evaluator so the failure mode matches the reference loop.
            b.append(("pred", ICMP_EVAL[instr.predicate]))
            b.append(("t", ops[0].type))
            expr = "pred(a, b, t)"
        else:
            b.append(("m", mask))
    code += f"r = 1 if {expr} else 0\n"
    b.append(("kr", id(instr)))
    code += "vals[kr] = r\n"
    code += _post(instr, track, hooked, b)
    code += "return None\n"
    return b, code


def _compile_fcmp(instr, track, hooked):
    b: List[Tuple[str, object]] = []
    ops = instr._operands
    code = _operand(ops[0], 0, b, "a") + _operand(ops[1], 1, b, "b")
    code += f"r = 1 if {_FCMP_EXPR[instr.predicate]} else 0\n"
    b.append(("kr", id(instr)))
    code += "vals[kr] = r\n"
    code += _post(instr, track, hooked, b)
    code += "return None\n"
    return b, code


def _compile_cast(instr, track, hooked):
    b: List[Tuple[str, object]] = []
    code = _operand(instr._operands[0], 0, b, "v")
    opcode = instr.opcode
    t = instr.type
    if opcode in ("trunc", "sext", "ptrtoint"):
        _bind_int_type(t, b)
        code += f"r = {_int_wrap_expr('v')}\n"
    elif opcode == "zext":
        _bind_int_type(t, b)
        b.append(("fm", instr._operands[0].type.mask))
        code += f"r = {_int_wrap_expr('v & fm')}\n"
    elif opcode == "sitofp":
        if t is F32:
            b.append(("f32", _f32_round))
            code += "r = f32(float(v))\n"
        else:
            code += "r = float(v)\n"
    elif opcode == "fptosi":
        b.append(("hi", t.max_signed))
        b.append(("lo", t.min_signed))
        code += (
            "if v != v:\n"
            "    r = 0\n"
            "elif v >= hi:\n"
            "    r = hi\n"
            "elif v <= lo:\n"
            "    r = lo\n"
            "else:\n"
            "    r = int(v)\n"
        )
    elif opcode == "fpext":
        code += "r = float(v)\n"
    elif opcode == "fptrunc":
        b.append(("f32", _f32_round))
        b.append(("inf", float("inf")))
        b.append(("ninf", float("-inf")))
        code += (
            "try:\n"
            "    r = f32(v)\n"
            "except (OverflowError, ValueError):\n"
            "    r = inf if v > 0 else ninf\n"
        )
    elif opcode == "inttoptr":
        code += "r = v & 0xFFFFFFFFFFFFFFFF\n"
    elif opcode == "bitcast":
        code += "r = v\n"
    else:  # pragma: no cover - mirrors the reference RuntimeError
        b.append(("opc", opcode))
        code += "raise RuntimeError(f'unhandled cast {opc}')\n"
    b.append(("kr", id(instr)))
    code += "vals[kr] = r\n"
    code += _post(instr, track, hooked, b)
    code += "return None\n"
    return b, code


def _indent(code: str) -> str:
    return "".join(
        "    " + line + "\n" for line in code.rstrip("\n").split("\n")
    )


def _compile_select(instr, track, hooked):
    b: List[Tuple[str, object]] = []
    ops = instr._operands
    code = _operand(ops[0], 0, b, "c")
    # Arms stay lazy: the reference loop only fetches the taken operand, so an
    # unbound value on the untaken side must not raise.
    true_frag = _operand(ops[1], 1, b, "r")
    false_frag = _operand(ops[2], 2, b, "r")
    code += "if c & 1:\n" + _indent(true_frag)
    code += "else:\n" + _indent(false_frag)
    b.append(("kr", id(instr)))
    code += "vals[kr] = r\n"
    code += _post(instr, track, hooked, b)
    code += "return None\n"
    return b, code


def _compile_intrinsic(instr, track, hooked):
    b: List[Tuple[str, object]] = []
    ops = instr._operands
    code = ""
    argv = []
    for i, op in enumerate(ops):
        code += _operand(op, i, b, f"a{i}")
        argv.append(f"a{i}")
    impl = INTRINSIC_EVAL.get(instr.intrinsic)
    if impl is None:  # pragma: no cover - mirrors the reference KeyError
        b.append(("tbl", INTRINSIC_EVAL))
        b.append(("nm", instr.intrinsic))
        code += f"r = tbl[nm]({', '.join(argv)})\n"
    else:
        b.append(("fn", impl))
        code += f"r = fn({', '.join(argv)})\n"
    b.append(("kr", id(instr)))
    code += "vals[kr] = r\n"
    code += _post(instr, track, hooked, b)
    code += "return None\n"
    return b, code


_GUARD_RAISE = (
    "    if I._guard_detect and I._guard_armed and gid not in I.disabled_guards:\n"
)


def _compile_guard_eq(instr, track, hooked):
    b: List[Tuple[str, object]] = []
    ops = instr._operands
    code = "gs = I.guard_stats\ngs.evaluations += 1\n"
    code += _operand(ops[0], 0, b, "a") + _operand(ops[1], 1, b, "b")
    b.append(("gid", instr.guard_id))
    code += (
        "if a != b:\n"
        "    gs.record_failure(gid)\n"
        + _GUARD_RAISE
        + "        raise GuardTrap(gid, 'eq', -1)\n"
        "return None\n"
    )
    return b, code


def _compile_guard_range(instr, track, hooked):
    b: List[Tuple[str, object]] = []
    ops = instr._operands
    code = "gs = I.guard_stats\ngs.evaluations += 1\n"
    code += _operand(ops[0], 0, b, "v")
    for name, op in (("lo", ops[1]), ("hi", ops[2])):
        if op.__class__ is Constant:
            b.append((name, op.value))
        else:  # pragma: no cover - transforms always emit constant bounds
            b.append((f"{name}_op", op))
            code += f"{name} = {name}_op.value\n"
    b.append(("gid", instr.guard_id))
    # NaN comparisons are False, so ``not (lo <= v <= hi)`` already covers the
    # reference loop's explicit isnan clause.
    code += (
        "if not (lo <= v <= hi):\n"
        "    gs.record_failure(gid)\n"
        + _GUARD_RAISE
        + "        raise GuardTrap(gid, 'range', -1)\n"
        "return None\n"
    )
    return b, code


def _compile_guard_values(instr, track, hooked):
    b: List[Tuple[str, object]] = []
    ops = instr._operands
    code = "gs = I.guard_stats\ngs.evaluations += 1\n"
    code += _operand(ops[0], 0, b, "v")
    if all(op.__class__ is Constant for op in ops[1:]):
        terms = []
        for i, op in enumerate(ops[1:]):
            b.append((f"e{i}", op.value))
            terms.append(f"v == e{i}")
        cond = " or ".join(terms) if terms else "False"
    else:  # pragma: no cover - transforms always emit constant expecteds
        b.append(("cs", tuple(ops[1:])))
        cond = "any(v == c.value for c in cs)"
    b.append(("gid", instr.guard_id))
    code += (
        f"if not ({cond}):\n"
        "    gs.record_failure(gid)\n"
        + _GUARD_RAISE
        + "        raise GuardTrap(gid, 'values', -1)\n"
        "return None\n"
    )
    return b, code


def _compile_br(instr, cf, track, hooked):
    b: List[Tuple[str, object]] = [("cbt", cf.blocks[instr.target])]
    code = (
        "if I._pending_control_fault:\n"
        "    return I._corrupt_cb(frame, cbt)\n"
        "return cbt\n"
    )
    return b, code


def _compile_condbr(instr, cf, track, hooked):
    b: List[Tuple[str, object]] = []
    code = _operand(instr._operands[0], 0, b, "c")
    b.append(("cbt", cf.blocks[instr.if_true]))
    b.append(("cbf", cf.blocks[instr.if_false]))
    code += (
        "cb = cbt if c & 1 else cbf\n"
        "if I._pending_control_fault:\n"
        "    return I._corrupt_cb(frame, cb)\n"
        "return cb\n"
    )
    return b, code


def _compile_call(instr, pos, own_cb, cm, track, hooked):
    callee = instr.callee
    callee_cf = cm.functions[callee]
    b: List[Tuple[str, object]] = [
        ("callee", callee),
        ("ins", instr),
        ("rcb", own_cb),
        ("ridx", pos + 1),
        ("ecb", callee_cf.entry_cb),
        ("hr", instr.has_result),
        ("rk", id(instr)),
    ]
    code = (
        "frames = I._frames\n"
        "if len(frames) >= I._max_depth:\n"
        "    raise StackOverflowTrap(-1)\n"
        "nf = Frame(callee, ins, I._stack_sp)\n"
        "nv = nf.values\n"
    )
    for i, (formal, op) in enumerate(zip(callee.args, instr._operands)):
        b.append((f"f{i}", id(formal)))
        code += _operand(op, i, b, f"a{i}")
        code += f"nv[f{i}] = a{i}\n"
    code += (
        "nf.ret_cb = rcb\n"
        "nf.ret_idx = ridx\n"
        "nf.ret_has_result = hr\n"
        "nf.ret_key = rk\n"
        "frame.index = ridx\n"
        "frames.append(nf)\n"
        "I._frame = nf\n"
        "I._resume_cb = ecb\n"
        "I._resume_idx = 0\n"
        "return UNWIND\n"
    )
    return b, code


def _compile_ret(instr, track, hooked):
    b: List[Tuple[str, object]] = []
    if instr._operands:
        code = _operand(instr._operands[0], 0, b, "v")
    else:
        code = "v = None\n"
    code += (
        "frame.active = False\n"
        "frames = I._frames\n"
        "frames.pop()\n"
        "I._stack_sp = frame.stack_mark\n"
        "if not frames:\n"
        "    I._ret_value = v\n"
        "    return STOP\n"
        "caller = frames[-1]\n"
        "if frame.ret_has_result:\n"
        "    caller.values[frame.ret_key] = v\n"
    )
    if track:
        code += "    I._rf_log.append((caller, frame.call_instr))\n"
    if hooked:
        code += "    I.value_hook(frame.call_instr, v)\n"
    code += (
        "I._frame = caller\n"
        "I._resume_cb = frame.ret_cb\n"
        "I._resume_idx = frame.ret_idx\n"
        "return UNWIND\n"
    )
    return b, code


def _compile_alloca(instr, track, hooked):
    b: List[Tuple[str, object]] = [("sz", instr.size_bytes), ("kr", id(instr))]
    code = (
        "sp = (I._stack_sp + 7) & -8\n"
        "if sp + sz > I._stack_limit:\n"
        "    raise StackOverflowTrap(-1)\n"
        "vals[kr] = sp\n"
        "I._stack_sp = sp + sz\n"
    )
    code += _post(instr, track, hooked, b, hook=False)
    code += "return None\n"
    return b, code


def _compile_unhandled(instr):  # pragma: no cover - verifier prevents
    b: List[Tuple[str, object]] = [("ins", instr)]
    code = "raise RuntimeError(f'unhandled instruction {ins.format()}')\n"
    return b, code


_SIMPLE_COMPILERS = {
    BinaryOp: _compile_binop,
    Load: _compile_load,
    Store: _compile_store,
    GetElementPtr: _compile_gep,
    ICmp: _compile_icmp,
    FCmp: _compile_fcmp,
    Cast: _compile_cast,
    Select: _compile_select,
    IntrinsicCall: _compile_intrinsic,
    GuardEq: _compile_guard_eq,
    GuardRange: _compile_guard_range,
    GuardValues: _compile_guard_values,
    Ret: _compile_ret,
    Alloca: _compile_alloca,
}

#: Instruction classes whose step fragments always fall through (``return
#: None``) — the only ones eligible for superblock fusion.  Control transfers
#: (Br/CondBr/Call/Ret) and phis need the driving loop.
_LINEAR_CLASSES = frozenset(_SIMPLE_COMPILERS) - {Ret}

_DIV_OPCODES = frozenset({"sdiv", "udiv", "srem", "urem"})


def _can_trap(instr) -> bool:
    """Can this (linear) instruction raise a :class:`SimTrap`?

    Integer div/rem raise :class:`ArithmeticTrap`, memory ops raise
    :class:`MemoryTrap` via ``I._mem_locate``, guards raise
    :class:`GuardTrap`, and alloca raises :class:`StackOverflowTrap`.
    Everything else either cannot raise or raises non-``SimTrap`` exceptions
    that need no cycle re-timing (identical on the reference path).
    """
    cls = instr.__class__
    if cls is BinaryOp:
        return instr.opcode in _DIV_OPCODES
    return cls in (Load, Store, GuardEq, GuardRange, GuardValues, Alloca)


def _rename_bindings(
    j: int, b: List[Tuple[str, object]], code: str
) -> Tuple[List[Tuple[str, object]], str]:
    """Namespace fragment ``j``'s binding names as ``i{j}_name``.

    Only the *bindings* (closure cells) need renaming — fragment-local
    temporaries (``a``, ``r``, ``seg``, ...) are assigned-before-use within
    every fragment, so they may safely shadow each other across fragments.
    """
    if not b:
        return b, code
    names = sorted((name for name, _ in b), key=len, reverse=True)
    pattern = re.compile(r"\b(?:" + "|".join(map(re.escape, names)) + r")\b")
    code = pattern.sub(lambda m: f"i{j}_{m.group(0)}", code)
    return [(f"i{j}_{name}", value) for name, value in b], code


def _build_fused(
    parts: List[Tuple[List[Tuple[str, object]], str, bool]],
    terminator: Optional[Tuple[List[Tuple[str, object]], str]] = None,
):
    """Fuse per-instruction fragments into one superblock closure.

    Each part is ``(bindings, code, can_trap)`` as produced by the per-kind
    compilers.  Before every instruction that can raise a
    :class:`SimTrap`, the body records its 1-based position in ``I._sbk`` —
    the driving loop re-times an escaping trap to ``run_start_cycle +
    I._sbk``.  When the run extends to the end of its block, ``terminator``
    is the Br/CondBr/Ret fragment (all of which cannot trap): its own
    ``return`` statement becomes the superblock's return value, which the
    driving loop dispatches exactly like a single-step result.

    Returns ``(closure, n_instructions)``.
    """
    bindings: List[Tuple[str, object]] = []
    body: List[str] = []
    for j, (b, code, traps) in enumerate(parts):
        b, code = _rename_bindings(j, b, code)
        bindings.extend(b)
        assert code.endswith("return None\n"), code
        code = code[: -len("return None\n")]
        if traps:
            body.append(f"I._sbk = {j + 1}\n")
        body.append(code)
    if terminator is None:
        body.append("return None\n")
    else:
        b, code = _rename_bindings(len(parts), terminator[0], terminator[1])
        bindings.extend(b)
        body.append(code)
    n = len(parts) + (terminator is not None)
    return _build_step(bindings, "".join(body)), n


# ---------------------------------------------------------------------------
# Module compilation
# ---------------------------------------------------------------------------


def _fill_block(cb: CompiledBlock, cf: CompiledFunction, cm: CompiledModule,
                track: bool, hooked: bool) -> None:
    instrs = cb.block.instructions
    code: List[Optional[Callable]] = [None] * len(instrs)
    fused: List[Optional[Tuple[Callable, int]]] = [None] * len(instrs)
    phis = []
    run_start: Optional[int] = None
    run_parts: List[Tuple[List[Tuple[str, object]], str, bool]] = []

    for pos, instr in enumerate(instrs):
        cls = instr.__class__
        if cls is Phi:
            phis.append(instr)
            continue
        compiler = _SIMPLE_COMPILERS.get(cls)
        if compiler is not None:
            b, frag = compiler(instr, track, hooked)
        elif cls is Br:
            b, frag = _compile_br(instr, cf, track, hooked)
        elif cls is CondBr:
            b, frag = _compile_condbr(instr, cf, track, hooked)
        elif cls is Call:
            b, frag = _compile_call(instr, pos, cb, cm, track, hooked)
        else:  # pragma: no cover - verifier prevents
            b, frag = _compile_unhandled(instr)
        code[pos] = _build_step(b, frag)
        if cls in _LINEAR_CLASSES:
            if run_start is None:
                run_start = pos
            run_parts.append((b, frag, _can_trap(instr)))
            continue
        # Run broken: Br/CondBr/Ret (which cannot trap) join the run as its
        # returning tail; a Call cannot — its return-resume point lands
        # *inside* the run, which a closure cannot re-enter.
        if run_start is not None:
            if cls in (Br, CondBr, Ret):
                fused[run_start] = _build_fused(run_parts, (b, frag))
            elif len(run_parts) >= 2:
                fused[run_start] = _build_fused(run_parts)
        run_start, run_parts = None, []
    cb.code = code
    cb.fused = fused
    cb.n_phis = len(phis)
    if not phis:
        return
    preds: List[BasicBlock] = []
    for phi in phis:
        for pred in phi.incoming_blocks:
            if pred not in preds:
                preds.append(pred)
    n = len(phis)
    for pred in preds:
        incomings = []
        for phi in phis:
            try:
                incomings.append(phi.incoming_for(pred))
            except KeyError:
                incomings.append(phi._operands[0])
        fallback = tuple(
            (_getter(op), id(phi), phi) for op, phi in zip(incomings, phis)
        )
        cb.phi_stages[pred] = (
            _build_commit(incomings, phis, fallback, track, hooked), n,
        )
    firsts = [phi._operands[0] for phi in phis]
    fb0 = tuple((_getter(op), id(phi), phi) for op, phi in zip(firsts, phis))
    cb.phi_fallback = (_build_commit(firsts, phis, fb0, track, hooked), n)


def compile_module(module: Module, track: bool, hooked: bool) -> CompiledModule:
    """Return (building and caching as needed) the compiled form of ``module``.

    ``track`` bakes in register-file bookkeeping (fault-injection runs);
    ``hooked`` bakes in value-hook dispatch (profiling/tracing runs).  The
    cache lives on the module object and is invalidated whenever the structure
    token changes — i.e. after any in-place transform.
    """
    if "Frame" not in _ENV:
        from .interpreter import Frame

        _ENV["Frame"] = Frame
    pinned = _snapshot(module)
    token = tuple(map(id, pinned))
    cache = getattr(module, "_compiled_cache", None)
    if cache is None or cache.get("token") != token:
        cache = {"token": token}
        module._compiled_cache = cache
    variant = (track, hooked)
    cm = cache.get(variant)
    registry = _obs_registry()
    if cm is None:
        from ..obs import trace as _trace_mod

        with _trace_mod.current().span(
            "compile_module", cat="compile", track=track, hooked=hooked
        ):
            cm = CompiledModule(module, variant, token, pinned)
            for fn in module.functions.values():
                cm.functions[fn] = CompiledFunction(fn)
            n_blocks = n_superblocks = 0
            for cf in cm.functions.values():
                for cb in cf.blocks.values():
                    _fill_block(cb, cf, cm, track, hooked)
                    n_blocks += 1
                    n_superblocks += sum(
                        1 for sb in cb.fused if sb is not None
                    )
            cache[variant] = cm
        if registry.enabled:
            registry.counter("sim.compile.modules").inc()
            registry.counter("sim.compile.blocks").inc(n_blocks)
            registry.counter("sim.compile.superblocks").inc(n_superblocks)
    elif registry.enabled:
        registry.counter("sim.compile.cache_hits").inc()
    return cm


def superblock_stats(cm: CompiledModule) -> Tuple[int, int]:
    """``(instructions inside fused superblocks, total instructions)``.

    A static measure of how much of the module executes as straight-line
    fused runs — the portion a batched lane sweep can stride through without
    per-instruction dispatch.  The ratio bounds the vectorizable fraction of
    a lock-step batch between injection stops.
    """
    covered = total = 0
    for cf in cm.functions.values():
        for cb in cf.blocks.values():
            total += len(cb.code)
            covered += sum(sb[1] for sb in cb.fused if sb is not None)
    return covered, total
