"""Segmented, bounds-checked memory for the simulator.

Every global array and every stack frame lives in its own segment, separated
by unmapped guard gaps.  Any access outside a mapped segment raises a
:class:`~repro.sim.events.MemoryTrap` — the analogue of the page faults the
paper uses as hardware symptoms for soft-error detection.

Layout: segment ``i`` occupies addresses ``[(i+1) << SEGMENT_SHIFT, ... )``.
Address 0 is never mapped, so null-pointer dereferences always trap.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from ..ir.types import F32, F64, FloatType, IntType, IRType, PointerType
from .events import MemoryTrap

#: log2 of the per-segment address stride (1 MiB).
SEGMENT_SHIFT = 20
SEGMENT_STRIDE = 1 << SEGMENT_SHIFT

_F32_STRUCT = struct.Struct("<f")
_F64_STRUCT = struct.Struct("<d")


class MemoryFaultError(Exception):
    """A fault model addressed memory it cannot corrupt (offset outside a
    segment, unmapped alias, occupancy/layout mismatch).

    Deliberately *not* a :class:`~repro.sim.events.SimTrap`: this is a
    harness-side inconsistency, not a simulated hardware symptom.  Raised
    after the injection record exists, it is contained by the interpreter's
    exception boundary and classified as ``contained:MemoryFaultError``
    instead of escaping the trial.
    """

#: element size → struct format char for bulk (unsigned) integer array I/O
_BULK_INT_FMT = {1: "B", 2: "H", 4: "I", 8: "Q"}


class Segment:
    """One contiguous mapped region."""

    __slots__ = ("name", "base", "size", "data")

    def __init__(self, name: str, base: int, size: int) -> None:
        self.name = name
        self.base = base
        self.size = size
        self.data = bytearray(size)

    def __repr__(self) -> str:
        return f"<Segment {self.name} @{self.base:#x} +{self.size}>"


class Memory:
    """The simulated address space.

    The interpreter timestamps accesses; this class knows nothing about
    cycles — it raises traps with ``cycle=-1`` and the interpreter re-raises
    with the current cycle filled in.
    """

    def __init__(self) -> None:
        self._segments: Dict[int, Segment] = {}
        self._next_index = 1
        #: optional undo journal: when set to a list, every word-level fault
        #: mutation appends ``("word", seg, offset, before)`` before writing,
        #: so a batched lane sweep can roll the strike back byte-exactly
        #: (see :mod:`repro.sim.batched`).  ``None`` (the default) is free.
        self._journal = None

    # -- mapping -----------------------------------------------------------------

    def map_segment(self, name: str, size: int) -> Segment:
        """Allocate a fresh segment of at least ``size`` bytes."""
        if size <= 0:
            raise ValueError("segment size must be positive")
        index = self._next_index
        span = (size + SEGMENT_STRIDE - 1) >> SEGMENT_SHIFT
        self._next_index += span
        seg = Segment(name, index << SEGMENT_SHIFT, size)
        for i in range(index, index + span):
            self._segments[i] = seg
        return seg

    def unmap_segment(self, seg: Segment) -> None:
        span = (seg.size + SEGMENT_STRIDE - 1) >> SEGMENT_SHIFT
        start = seg.base >> SEGMENT_SHIFT
        for i in range(start, start + span):
            self._segments.pop(i, None)

    def unique_segments(self) -> List[Segment]:
        """Every mapped segment once, in deterministic index order.

        Spanning segments occupy several index entries; the fault models that
        draw a random memory word must see each exactly once, in an order
        that is stable for a given mapping history.
        """
        out: List[Segment] = []
        seen = set()
        for index in sorted(self._segments):
            seg = self._segments[index]
            if id(seg) not in seen:
                seen.add(id(seg))
                out.append(seg)
        return out

    @staticmethod
    def _check_word(seg: Segment, offset: int) -> None:
        if offset < 0 or offset + 4 > seg.size:
            raise MemoryFaultError(
                f"word offset {offset:#x} outside segment {seg.name!r} "
                f"(+{seg.size:#x})"
            )

    def flip_word_bit(self, seg: Segment, offset: int, bit: int) -> Tuple[int, int]:
        """Flip one bit of the 32-bit word at ``offset`` inside ``seg``.

        Returns ``(before, after)`` as raw unsigned words.  Used by the
        memory-hierarchy fault models; ``bit`` is taken modulo 32.  An
        out-of-range offset raises :class:`MemoryFaultError` (contained and
        classified, never an escaped trial).
        """
        self._check_word(seg, offset)
        before = int.from_bytes(seg.data[offset : offset + 4], "little")
        after = before ^ (1 << (bit % 32))
        if self._journal is not None:
            self._journal.append(("word", seg, offset, before))
        seg.data[offset : offset + 4] = after.to_bytes(4, "little")
        return before, after

    def force_word_bit(
        self, seg: Segment, offset: int, bit: int, stuck: int
    ) -> Tuple[int, int]:
        """Force one bit of the word at ``offset`` to ``stuck`` (0 or 1).

        The ``mem_stuck_at`` model calls this at injection and on every
        reapply tick; like :meth:`flip_word_bit`, bad offsets raise
        :class:`MemoryFaultError`.
        """
        self._check_word(seg, offset)
        before = int.from_bytes(seg.data[offset : offset + 4], "little")
        mask = 1 << (bit % 32)
        after = (before | mask) if stuck else (before & ~mask)
        if self._journal is not None:
            self._journal.append(("word", seg, offset, before))
        seg.data[offset : offset + 4] = after.to_bytes(4, "little")
        return before, after

    def locate_fault_word(self, address: int) -> Tuple[Segment, int]:
        """Resolve ``address`` to its aligned backing word for a fault model.

        Unlike :meth:`_locate` this raises :class:`MemoryFaultError` (a
        contained harness error) rather than a :class:`MemoryTrap` — a
        fault model addressing a guard gap is a modelling inconsistency,
        not a simulated page fault.
        """
        seg = self.segment_at(address)
        if seg is None:
            raise MemoryFaultError(f"no mapped segment at {address:#x}")
        offset = (address - seg.base) & ~3
        self._check_word(seg, offset)
        return seg, offset

    def segment_at(self, address: int) -> Optional[Segment]:
        seg = self._segments.get(address >> SEGMENT_SHIFT)
        if seg is None:
            return None
        if address < seg.base or address >= seg.base + seg.size:
            return None
        return seg

    # -- typed access ----------------------------------------------------------------

    def _locate(self, address: int, size: int) -> Tuple[Segment, int]:
        if address <= 0:
            raise MemoryTrap("null", address, -1)
        seg = self._segments.get(address >> SEGMENT_SHIFT)
        if seg is None:
            raise MemoryTrap("unmapped", address, -1)
        offset = address - seg.base
        if offset < 0 or offset + size > seg.size:
            raise MemoryTrap("out-of-bounds", address, -1)
        return seg, offset

    def load(self, type_: IRType, address: int):
        """Read one value of ``type_`` (little-endian) at ``address``."""
        if isinstance(type_, IntType):
            size = type_.size_bytes
            seg, off = self._locate(address, size)
            raw = int.from_bytes(seg.data[off : off + size], "little")
            return type_.wrap(raw)
        if isinstance(type_, FloatType):
            size = type_.size_bytes
            seg, off = self._locate(address, size)
            st = _F64_STRUCT if type_ is F64 else _F32_STRUCT
            return st.unpack_from(seg.data, off)[0]
        if isinstance(type_, PointerType):
            seg, off = self._locate(address, 8)
            return int.from_bytes(seg.data[off : off + 8], "little")
        raise TypeError(f"cannot load value of type {type_}")

    def store(self, type_: IRType, address: int, value) -> None:
        """Write one value of ``type_`` (little-endian) at ``address``."""
        if isinstance(type_, IntType):
            size = type_.size_bytes
            seg, off = self._locate(address, size)
            seg.data[off : off + size] = (value & type_.mask).to_bytes(size, "little")
            return
        if isinstance(type_, FloatType):
            size = type_.size_bytes
            seg, off = self._locate(address, size)
            st = _F64_STRUCT if type_ is F64 else _F32_STRUCT
            try:
                st.pack_into(seg.data, off, value)
            except (OverflowError, ValueError):
                # f32 overflow from a corrupted f64 value saturates to +-inf,
                # as a hardware down-conversion would.
                st.pack_into(seg.data, off, float("inf") if value > 0 else float("-inf"))
            return
        if isinstance(type_, PointerType):
            seg, off = self._locate(address, 8)
            seg.data[off : off + 8] = (value & ((1 << 64) - 1)).to_bytes(8, "little")
            return
        raise TypeError(f"cannot store value of type {type_}")

    # -- bulk access (harness I/O) -----------------------------------------------------

    def write_array(self, seg: Segment, elem_type: IRType, values) -> None:
        """Fill a segment with ``values`` starting at its base.

        Bulk-packs the whole array in one ``struct`` call when possible
        (every trial re-binds its input globals, so this is per-trial hot
        path); falls back to the element-wise typed path for odd element
        sizes, overflowing f32 values (which saturate per element), or
        arrays that do not fit the segment (which must trap at the exact
        offending element, like the reference path).
        """
        if not isinstance(values, (list, tuple)):
            values = list(values)
        n = len(values)
        step = elem_type.size_bytes  # type: ignore[attr-defined]
        if n and n * step <= seg.size:
            if isinstance(elem_type, IntType):
                fmt = _BULK_INT_FMT.get(step)
                if fmt is not None:
                    mask = elem_type.mask
                    struct.pack_into(
                        f"<{n}{fmt}", seg.data, 0, *[v & mask for v in values]
                    )
                    return
            elif isinstance(elem_type, FloatType):
                try:
                    struct.pack_into(
                        f"<{n}{'d' if elem_type is F64 else 'f'}",
                        seg.data, 0, *values,
                    )
                    return
                except (OverflowError, ValueError):
                    pass  # f32 saturation handled element-wise below
        addr = seg.base
        for v in values:
            self.store(elem_type, addr, v)
            addr += step

    def read_array(self, seg: Segment, elem_type: IRType, count: int) -> List:
        """Read ``count`` elements from the start of a segment.

        Bulk-unpacked counterpart of :meth:`write_array`, with the same
        element-wise fallback; integer elements get the identical
        two's-complement normalisation as :meth:`load`.
        """
        step = elem_type.size_bytes  # type: ignore[attr-defined]
        if count and count * step <= seg.size:
            if isinstance(elem_type, IntType):
                fmt = _BULK_INT_FMT.get(step)
                if fmt is not None:
                    raw = struct.unpack_from(f"<{count}{fmt}", seg.data, 0)
                    mask = elem_type.mask
                    sign = elem_type.sign_bit if elem_type.bits > 1 else 0
                    return [((x & mask) ^ sign) - sign for x in raw]
            elif isinstance(elem_type, FloatType):
                return list(struct.unpack_from(
                    f"<{count}{'d' if elem_type is F64 else 'f'}", seg.data, 0
                ))
        addr = seg.base
        out = []
        for _ in range(count):
            out.append(self.load(elem_type, addr))
            addr += step
        return out
