"""IR interpreter with cycle counting, fault injection, and optional hooks.

This is the execution substrate standing in for the paper's gem5 setup:

* **atomic model** — each retired IR instruction advances the cycle counter by
  one; fault-coverage campaigns use this mode (fast), matching the paper's use
  of gem5's atomic CPU for coverage runs;
* **timing model** — attach a :class:`~repro.sim.timing.TimingModel` and the
  run also produces an out-of-order cycle estimate (the paper's Figure 12
  performance numbers come from the detailed CPU; ours from this model);
* **fault injection** — pass an :class:`~repro.sim.faults.InjectionPlan`; at
  the planned cycle a random occupied physical register is chosen and one bit
  flipped (see :mod:`repro.sim.regfile`);
* **hooks** — a value hook receives every (instruction, value) pair produced,
  which is how value profiling (:mod:`repro.profiling`) observes the program.

Guards run in one of two modes: ``detect`` raises :class:`GuardTrap` on the
first failure (a fault-injection trial ends in SWDetect), while ``count``
records failures and continues (used on fault-free runs to measure the
false-positive rate, modelling the paper's recover-once-then-ignore policy).
"""

from __future__ import annotations

import math
import os
import random
import struct
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    GetElementPtr,
    GuardEq,
    GuardRange,
    GuardValues,
    ICmp,
    Instruction,
    IntrinsicCall,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from ..ir.module import Module
from ..ir.types import F32, FloatType, IntType, PointerType
from ..ir.values import Argument, Constant, GlobalVariable, UndefValue, Value
from ..obs.metrics import global_registry as _obs_registry
from . import ops
from .compiled import STOP, UNWIND, CompiledBlock, compile_module
from .config import SimConfig
from .events import (
    ArithmeticTrap,
    GuardStats,
    GuardTrap,
    HarnessContainedTrap,
    MemoryTrap,
    RunResult,
    SimTrap,
    StackOverflowTrap,
    TimeoutTrap,
)
from .faults import InjectionPlan, InjectionRecord, flip_bit, get_fault_model
from .memory import Memory, Segment
from .regfile import RegisterFile
from .snapshot import Snapshot, SnapshotRecorder, TriageMasked, value_dead_after
from .timing import TimingModel

_MISSING = object()
_F32_STRUCT = struct.Struct("<f")

# Backwards-compatible aliases: the evaluator tables moved to
# :mod:`repro.sim.ops` so the fast path (:mod:`repro.sim.compiled`) can share
# them without importing this module.
_c_div = ops.c_div
_c_rem = ops.c_rem
_float_div = ops.float_div
_INT_BINOPS = ops.INT_BINOP_EVAL
_FLOAT_BINOPS = ops.FLOAT_BINOP_EVAL
_ICMP = ops.ICMP_EVAL
_FCMP = ops.FCMP_EVAL
_INTRINSICS_IMPL = ops.INTRINSIC_EVAL
_safe_sqrt = ops.safe_sqrt
_safe_exp = ops.safe_exp
_safe_log = ops.safe_log
_safe_pow = ops.safe_pow


def _default_fastpath() -> bool:
    """Fast path on unless ``REPRO_FASTPATH`` disables it (escape hatch)."""
    return os.environ.get("REPRO_FASTPATH", "1").strip().lower() not in (
        "0", "off", "false", "no",
    )


def _retime_trap(trap, cycle: int):
    """Rebuild a closure-raised trap (``cycle=-1``) with the real cycle.

    :class:`SimTrap` formats its message at construction, so re-timing must
    reconstruct rather than mutate.
    """
    cls = trap.__class__
    if cls is MemoryTrap:
        return MemoryTrap(trap.kind, trap.address, cycle)
    if cls is ArithmeticTrap:
        return ArithmeticTrap(trap.operation, cycle)
    if cls is GuardTrap:
        return GuardTrap(trap.guard_id, trap.guard_kind, cycle)
    if cls is StackOverflowTrap:
        return StackOverflowTrap(cycle)
    trap.cycle = cycle  # pragma: no cover - no other trap carries -1
    return trap


class Frame:
    """One activation record.

    The ``ret_*`` fields are the fast path's pre-resolved return linkage
    (where to resume in the caller's compiled code); the reference loop
    ignores them.
    """

    __slots__ = ("function", "values", "block", "prev_block", "index",
                 "call_instr", "stack_mark", "active",
                 "ret_cb", "ret_idx", "ret_has_result", "ret_key")

    def __init__(self, function: Function, call_instr: Optional[Call], stack_mark: int) -> None:
        self.function = function
        self.values: Dict[int, object] = {}
        self.block: BasicBlock = function.entry
        self.prev_block: Optional[BasicBlock] = None
        self.index = 0
        self.call_instr = call_instr
        self.stack_mark = stack_mark
        self.active = True
        self.ret_cb = None
        self.ret_idx = 0
        self.ret_has_result = False
        self.ret_key = None


class Interpreter:
    """Executes a module; one instance may run many times (segments are
    remapped per run, so runs are independent)."""

    def __init__(
        self,
        module: Module,
        config: Optional[SimConfig] = None,
        guard_mode: str = "detect",
        value_hook: Optional[Callable[[Instruction, object], None]] = None,
        timing: Optional[TimingModel] = None,
        disabled_guards: Optional[set] = None,
        fastpath: Optional[bool] = None,
    ) -> None:
        if guard_mode not in ("detect", "count"):
            raise ValueError("guard_mode must be 'detect' or 'count'")
        self.module = module
        self.config = config or SimConfig()
        self.guard_mode = guard_mode
        self._guard_detect = guard_mode == "detect"
        #: compiled-dispatch fast path (see :mod:`repro.sim.compiled`);
        #: timing-model runs always use the reference loop, which observes
        #: every retired instruction (the detailed-CPU analogue).
        self.fastpath = _default_fastpath() if fastpath is None else fastpath
        #: guard ids whose failures never raise — the paper's recover-once
        #: policy: a check that also fails after recovery (i.e. in the golden
        #: run) stops triggering recoveries
        self.disabled_guards = disabled_guards or set()
        self.value_hook = value_hook
        self.timing = timing
        self.memory: Optional[Memory] = None
        self.global_segments: Dict[str, Segment] = {}
        self._global_addr: Dict[str, int] = {}
        self.cycle = 0
        self.guard_stats = GuardStats()
        self.injection_record: Optional[InjectionRecord] = None
        self._regfile: Optional[RegisterFile] = None
        self._rng: Optional[random.Random] = None
        self._pending_control_fault = False
        self._control_fault_fired = False
        #: live stuck-at fault binding: (frame, value_key, value_obj, bit,
        #: stuck, deadline_cycle); see StuckAtFault
        self._stuck_fault = None
        #: live memory stuck-at binding: (seg, offset, bit, stuck,
        #: deadline_cycle); see MemStuckAtFault
        self._stuck_mem_fault = None
        #: golden-run OccupancyMap for the memory-hierarchy fault models
        #: (run_trial attaches it from the PreparedWorkload; None otherwise)
        self._occupancy = None
        #: undo journal for register/byte-level fault mutations, mirroring
        #: ``Memory._journal`` for word strikes — only the batched lane sweep
        #: (:mod:`repro.sim.batched`) ever sets it; ``None`` is free
        self._undo_log = None
        # Fast-path execution state (see _run_compiled).
        self._frames: List[Frame] = []
        self._frame: Optional[Frame] = None
        self._stack_sp = 0
        self._stack_limit = 0
        self._max_depth = self.config.max_call_depth
        self._mem_locate = None
        #: store-side address translation; normally the same bound method as
        #: _mem_locate, swapped independently by the occupancy capture pass
        self._mem_store_locate = None
        self._cm = None
        self._untracked_cm = None
        self._rf_log: List = []
        #: lazy-regfile writes dropped before the log's first entry (restored
        #: runs start mid-history; see _materialize_regfile)
        self._rf_base = 0
        #: short-circuit provably-dead flips to TriageMasked (trial runs only)
        self._triage = False
        self._resume_cb = None
        self._resume_idx = 0
        self._ret_value: object = None
        #: intra-superblock progress marker (see :func:`compiled._build_fused`)
        self._sbk = 0

    # -- setup ---------------------------------------------------------------------

    def _bind_globals(self, inputs: Optional[Dict[str, Sequence]]) -> None:
        assert self.memory is not None
        self.global_segments = {}
        self._global_addr = {}
        for gv in self.module.globals.values():
            seg = self.memory.map_segment(gv.name, gv.size_bytes)
            self.global_segments[gv.name] = seg
            self._global_addr[gv.name] = seg.base
            data = None
            if inputs is not None and gv.name in inputs:
                data = inputs[gv.name]
            elif gv.initializer is not None:
                data = gv.initializer
            if data is not None:
                if len(data) > gv.count:
                    raise ValueError(
                        f"input for @{gv.name} has {len(data)} elements, max {gv.count}"
                    )
                self.memory.write_array(seg, gv.elem_type, data)

    def read_global(self, name: str) -> List:
        """Read a global array's contents after a run (harness output API)."""
        gv = self.module.global_var(name)
        seg = self.global_segments[name]
        assert self.memory is not None
        return self.memory.read_array(seg, gv.elem_type, gv.count)

    # -- fault injection --------------------------------------------------------------

    def _liveness_for(self, fn: Function):
        """Static liveness, cached on the function (shared across trials)."""
        cache = getattr(fn, "_liveness_cache", None)
        if cache is None:
            from ..analysis.liveness import compute_liveness

            cache = compute_liveness(fn)
            fn._liveness_cache = cache
        return cache

    def _slot_is_live(self, slot) -> bool:
        """Will the value in this register be read again (approximately)?

        True when the owning frame is active and the value is statically live
        into the frame's current block, or is used later within that block.
        """
        frame: Frame = slot.frame
        if not frame.active or slot.value_key not in frame.values:
            return False
        value = slot.value_obj
        block = frame.block
        liveness = self._liveness_for(frame.function)
        if value in liveness.live_in.get(block, ()):  # pragma: no branch
            return True
        instrs = block.instructions
        for user, _ in value.uses:
            if user.parent is block:
                try:
                    if instrs.index(user) >= frame.index:
                        return True
                except ValueError:  # pragma: no cover - stale use list
                    continue
        return False

    def _pick_injection_slot(self):
        """Live-biased random occupied register slot (None before any retire).

        The RNG call sequence lives in :meth:`RegisterFile.pick_biased`; the
        fault models call this at injection time so every model shares the
        paper's site-selection distribution.
        """
        assert self._regfile is not None and self._rng is not None
        return self._regfile.pick_biased(
            self._rng,
            self.config.injection_recent_window,
            self.config.injection_live_bias,
            self._slot_is_live,
        )

    def _triage_short_circuit(self) -> None:
        """End the trial as Masked now (flip landed dead or nowhere)."""
        if self._triage:
            raise TriageMasked()

    def _triage_flip(self, slot, top_frame, next_index: int) -> None:
        """Short-circuit a live flip whose value is provably never read.

        ``top_frame``/``next_index`` locate the next instruction to execute
        (the top frame's ``index`` field is only synced lazily); they feed
        :func:`~repro.sim.snapshot.value_dead_after`, and a flip proven
        unreadable raises :class:`TriageMasked` *after* the injection record
        was filled exactly as a full run would — the short-circuit changes
        when the trial ends, never what it records.
        """
        if not self._triage or top_frame is None:
            return
        frame: Frame = slot.frame
        ni = next_index if frame is top_frame else frame.index
        if ni >= 0 and value_dead_after(
            self._liveness_for(frame.function), frame.block, ni, slot.value_obj
        ):
            raise TriageMasked()

    def _do_injection(
        self,
        plan: InjectionPlan,
        top_frame: Optional[Frame] = None,
        next_index: int = -1,
    ) -> int:
        """Perform (or re-apply) the planned fault at the current cycle.

        Dispatches to the plan's :class:`~repro.sim.faults.FaultModel`.
        Returns the cycle at which the fault should fire again (stuck-at
        faults re-force their bit on a cadence) or -1 for one-shot faults —
        the run loops feed this back into their pending-injection check.
        """
        if self.injection_record is not None:
            # Already injected: this is a re-fire (stuck-at cadence).
            return get_fault_model(plan.model).reapply(self, plan)
        # Wall-clock stamp of the first injection, read only by the tracing
        # sidecar (replay/detect phase split) — never by trial classification.
        self.trace_inject_ns = time.perf_counter_ns()
        record = InjectionRecord(plan=plan, landed=False)
        self.injection_record = record
        self._guard_armed = True
        if plan.kind == "control":
            # Arm a branch-target corruption: the next branch jumps wrong.
            # Never triaged: the wrong-target draw happens later, so a dead
            # verdict here could not be proven.
            self._pending_control_fault = True
            record.value_name = "<branch-target>"
            record.type_name = "ptr"
            return -1
        assert self._regfile is not None and self._rng is not None
        return get_fault_model(plan.model).inject(
            self, plan, record, top_frame, next_index
        )

    # -- execution -----------------------------------------------------------------------

    def run(
        self,
        entry: str = "main",
        args: Sequence[object] = (),
        inputs: Optional[Dict[str, Sequence]] = None,
        injection: Optional[InjectionPlan] = None,
        max_instructions: int = 50_000_000,
        restore_from: Optional[Snapshot] = None,
        capture: Optional[SnapshotRecorder] = None,
        triage: bool = False,
    ) -> RunResult:
        """Execute ``entry`` to completion.

        Raises a :class:`~repro.sim.events.SimTrap` subclass on any
        run-terminating event (memory trap, arithmetic trap, guard detection,
        timeout); returns a :class:`~repro.sim.events.RunResult` otherwise.

        Dispatches to the compiled fast path unless a timing model is
        attached (the detailed-CPU analogue observes every retired
        instruction, so it keeps the reference loop) or the fast path is
        disabled (``fastpath=False`` / ``REPRO_FASTPATH=0``).  Both paths are
        bit-identical — same results, traps, guard statistics, and injection
        behaviour.

        ``restore_from`` fast-forwards an injection run from a golden-run
        :class:`~repro.sim.snapshot.Snapshot` (bit-identical by
        construction); ``capture`` records snapshots during a fault-free run;
        ``triage`` short-circuits provably-dead flips by raising
        :class:`~repro.sim.snapshot.TriageMasked`.  All three are fast-path
        features: on the reference loop (or with a value hook, whose
        callbacks would be skipped over the restored prefix) they are
        silently ignored, preserving from-scratch semantics.
        """
        fn = self.module.function(entry)
        if len(args) != len(fn.args):
            raise ValueError(
                f"@{entry} expects {len(fn.args)} args, got {len(args)}"
            )
        use_fast = self.fastpath and self.timing is None
        if not use_fast or self.value_hook is not None:
            restore_from = None
            capture = None
        if restore_from is not None and (
            injection is None or restore_from.cycle >= injection.cycle
        ):
            restore_from = None
        self._triage = bool(triage) and injection is not None
        registry = _obs_registry()
        if not registry.enabled:
            return self._dispatch_contained(
                use_fast, fn, args, inputs, injection, max_instructions,
                capture, restore_from,
            )
        # Observability: per-run accounting only (never per-instruction), so
        # the instrumented path stays within noise of the bare one.  Both
        # dispatch paths report through this single funnel, which keeps the
        # fast path's events structurally identical to the reference path's.
        path = "fastpath" if use_fast else "reference"
        try:
            with registry.timer(f"sim.run.{path}").time():
                result = self._dispatch_contained(
                    use_fast, fn, args, inputs, injection, max_instructions,
                    capture, restore_from,
                )
        except SimTrap as trap:
            registry.counter(f"sim.trap.{trap.__class__.__name__}").inc()
            self._record_run_metrics(registry, path)
            raise
        except TriageMasked:
            registry.counter("sim.triaged").inc()
            self._record_run_metrics(registry, path)
            raise
        self._record_run_metrics(registry, path)
        return result

    def _dispatch_contained(
        self,
        use_fast: bool,
        fn: Function,
        args: Sequence[object],
        inputs: Optional[Dict[str, Sequence]],
        injection: Optional[InjectionPlan],
        max_instructions: int,
        capture: Optional[SnapshotRecorder],
        restore_from: Optional[Snapshot],
    ) -> RunResult:
        """Dispatch to a run loop inside the crash-containment boundary.

        Injected corruption can drive evaluator code into arbitrary Python
        exceptions (``RecursionError`` from a corrupted call target,
        ``struct.error``/``OverflowError`` from out-of-range packs, ...).
        Once a fault has landed, any non-trap exception becomes a classified
        :class:`HarnessContainedTrap` instead of escaping the trial; before
        injection the run is golden, so exceptions there re-raise unchanged —
        they are harness bugs, not fault effects.
        """
        try:
            if use_fast:
                return self._run_compiled(
                    fn, args, inputs, injection, max_instructions,
                    capture, restore_from,
                )
            return self._run_reference(
                fn, args, inputs, injection, max_instructions
            )
        except (SimTrap, TriageMasked):
            raise
        except Exception as err:
            if injection is None or self.injection_record is None:
                raise
            raise HarnessContainedTrap(
                type(err).__name__, str(err), self.cycle
            ) from err

    def _record_run_metrics(self, registry, path: str) -> None:
        registry.counter(f"sim.runs.{path}").inc()
        registry.counter("sim.instructions").inc(self.cycle)
        registry.counter("sim.guard_evaluations").inc(self.guard_stats.evaluations)
        registry.counter("sim.guard_failures").inc(self.guard_stats.total_failures)

    def _setup_run(self, inputs, injection) -> int:
        """Shared run prologue; returns the pending injection cycle (or -1)."""
        self.memory = Memory()
        self._bind_globals(inputs)
        stack_seg = self.memory.map_segment("__stack__", self.config.stack_segment_bytes)
        self._stack_sp = stack_seg.base
        self._stack_limit = stack_seg.base + stack_seg.size

        self.cycle = 0
        self.guard_stats = GuardStats()
        self.injection_record = None
        self.trace_inject_ns = None
        # Guards only *raise* (in detect mode) once the fault has been
        # injected: a check that fails before any fault exists is a false
        # positive, which the paper's recover-once policy absorbs instead of
        # aborting the run.  Without an injection plan guards are always armed.
        self._guard_armed = injection is None
        self._pending_control_fault = False
        self._control_fault_fired = False
        self._stuck_fault = None
        self._stuck_mem_fault = None
        inject_cycle = -1
        if injection is not None:
            self._regfile = RegisterFile(self.config.phys_int_registers)
            self._rng = random.Random(injection.seed)
            inject_cycle = injection.cycle
        else:
            self._regfile = None
            self._rng = None
        return inject_cycle

    def _run_reference(
        self,
        fn: Function,
        args: Sequence[object],
        inputs: Optional[Dict[str, Sequence]],
        injection: Optional[InjectionPlan],
        max_instructions: int,
    ) -> RunResult:
        """The original per-instruction dispatch loop.

        Retained as the semantic ground truth for the compiled fast path and
        as the only loop that drives a :class:`TimingModel` (its observe
        callbacks need every retired instruction).
        """
        inject_cycle = self._setup_run(inputs, injection)
        stack_sp = self._stack_sp
        stack_limit = self._stack_limit

        track_registers = self._regfile is not None
        regfile = self._regfile
        timing = self.timing
        value_hook = self.value_hook
        guard_detect = self.guard_mode == "detect"
        disabled_guards = self.disabled_guards
        memory = self.memory

        frame = Frame(fn, None, stack_sp)
        for formal, actual in zip(fn.args, args):
            frame.values[id(formal)] = actual
        frames: List[Frame] = [frame]

        fetch = self._fetch
        return_value: object = None

        while True:
            block_instrs = frame.block.instructions
            idx = frame.index
            if idx >= len(block_instrs):  # pragma: no cover - verifier prevents
                raise RuntimeError(f"fell off block %{frame.block.name}")
            instr = block_instrs[idx]
            frame.index = idx + 1

            self.cycle += 1
            cycle = self.cycle
            if cycle > max_instructions:
                raise TimeoutTrap(max_instructions, cycle)
            if inject_cycle >= 0 and cycle >= inject_cycle:
                # The loop keeps the stack pointer in a local for speed; the
                # stack_frame fault model reads it off the interpreter.
                self._stack_sp = stack_sp
                inject_cycle = self._do_injection(injection, frame, idx)  # type: ignore[arg-type]

            cls = instr.__class__

            # ---- arithmetic / logic -------------------------------------------
            if cls is BinaryOp:
                ops = instr._operands
                a = fetch(frame, ops[0])
                b = fetch(frame, ops[1])
                opcode = instr.opcode
                fn_int = _INT_BINOPS.get(opcode)
                try:
                    if fn_int is not None:
                        result = fn_int(a, b, instr.type)
                    else:
                        result = _FLOAT_BINOPS[opcode](a, b)
                except ZeroDivisionError:
                    raise ArithmeticTrap(opcode, cycle) from None
                frame.values[id(instr)] = result
                if track_registers:
                    regfile.write(frame, instr)
                if value_hook is not None:
                    value_hook(instr, result)
                if timing is not None:
                    timing.observe(instr)
                continue

            if cls is Load:
                addr = fetch(frame, instr._operands[0])
                try:
                    result = memory.load(instr.type, addr)
                except MemoryTrap as trap:
                    raise MemoryTrap(trap.kind, trap.address, cycle) from None
                frame.values[id(instr)] = result
                if track_registers:
                    regfile.write(frame, instr)
                if value_hook is not None:
                    value_hook(instr, result)
                if timing is not None:
                    timing.observe_load(instr, addr)
                continue

            if cls is Store:
                ops = instr._operands
                value = fetch(frame, ops[0])
                addr = fetch(frame, ops[1])
                try:
                    memory.store(ops[0].type, addr, value)
                except MemoryTrap as trap:
                    raise MemoryTrap(trap.kind, trap.address, cycle) from None
                if timing is not None:
                    timing.observe_store(instr, addr)
                continue

            if cls is GetElementPtr:
                ops = instr._operands
                base = fetch(frame, ops[0])
                index = fetch(frame, ops[1])
                result = (base + index * instr.elem_size) & 0xFFFFFFFFFFFFFFFF
                frame.values[id(instr)] = result
                if track_registers:
                    regfile.write(frame, instr)
                if timing is not None:
                    timing.observe(instr)
                continue

            if cls is ICmp:
                ops = instr._operands
                a = fetch(frame, ops[0])
                b = fetch(frame, ops[1])
                result = 1 if _ICMP[instr.predicate](a, b, ops[0].type) else 0
                frame.values[id(instr)] = result
                if track_registers:
                    regfile.write(frame, instr)
                if value_hook is not None:
                    value_hook(instr, result)
                if timing is not None:
                    timing.observe(instr)
                continue

            if cls is CondBr:
                cond = fetch(frame, instr._operands[0])
                taken = bool(cond & 1)
                target = instr.if_true if taken else instr.if_false
                if self._pending_control_fault:
                    target = self._corrupt_target(frame, target)
                if timing is not None:
                    timing.observe_branch(instr, taken)
                self._enter_block(frame, target, track_registers, value_hook, timing)
                # timeout/injection bookkeeping done inside _enter_block via cycles
                if inject_cycle >= 0 and self.cycle >= inject_cycle:
                    inject_cycle = self._do_injection(injection, frame, frame.index)  # type: ignore[arg-type]
                continue

            if cls is Br:
                target = instr.target
                if self._pending_control_fault:
                    target = self._corrupt_target(frame, target)
                if timing is not None:
                    timing.observe_jump(instr)
                self._enter_block(frame, target, track_registers, value_hook, timing)
                if inject_cycle >= 0 and self.cycle >= inject_cycle:
                    inject_cycle = self._do_injection(injection, frame, frame.index)  # type: ignore[arg-type]
                continue

            if cls is Cast:
                result = self._eval_cast(instr, fetch(frame, instr._operands[0]))
                frame.values[id(instr)] = result
                if track_registers:
                    regfile.write(frame, instr)
                if value_hook is not None:
                    value_hook(instr, result)
                if timing is not None:
                    timing.observe(instr)
                continue

            if cls is Select:
                ops = instr._operands
                cond = fetch(frame, ops[0])
                result = fetch(frame, ops[1]) if (cond & 1) else fetch(frame, ops[2])
                frame.values[id(instr)] = result
                if track_registers:
                    regfile.write(frame, instr)
                if value_hook is not None:
                    value_hook(instr, result)
                if timing is not None:
                    timing.observe(instr)
                continue

            if cls is FCmp:
                ops = instr._operands
                a = fetch(frame, ops[0])
                b = fetch(frame, ops[1])
                result = 1 if _FCMP[instr.predicate](a, b) else 0
                frame.values[id(instr)] = result
                if track_registers:
                    regfile.write(frame, instr)
                if value_hook is not None:
                    value_hook(instr, result)
                if timing is not None:
                    timing.observe(instr)
                continue

            if cls is IntrinsicCall:
                argv = [fetch(frame, op) for op in instr._operands]
                result = _INTRINSICS_IMPL[instr.intrinsic](*argv)
                frame.values[id(instr)] = result
                if track_registers:
                    regfile.write(frame, instr)
                if value_hook is not None:
                    value_hook(instr, result)
                if timing is not None:
                    timing.observe(instr)
                continue

            # ---- guards ----------------------------------------------------------
            if cls is GuardEq:
                ops = instr._operands
                self.guard_stats.evaluations += 1
                if fetch(frame, ops[0]) != fetch(frame, ops[1]):
                    self.guard_stats.record_failure(instr.guard_id)
                    if (
                        guard_detect
                        and self._guard_armed
                        and instr.guard_id not in disabled_guards
                    ):
                        raise GuardTrap(instr.guard_id, "eq", cycle)
                if timing is not None:
                    timing.observe_guard(instr)
                continue

            if cls is GuardRange:
                ops = instr._operands
                self.guard_stats.evaluations += 1
                v = fetch(frame, ops[0])
                lo = ops[1].value
                hi = ops[2].value
                failed = not (lo <= v <= hi)
                if isinstance(v, float) and math.isnan(v):
                    failed = True
                if failed:
                    self.guard_stats.record_failure(instr.guard_id)
                    if (
                        guard_detect
                        and self._guard_armed
                        and instr.guard_id not in disabled_guards
                    ):
                        raise GuardTrap(instr.guard_id, "range", cycle)
                if timing is not None:
                    timing.observe_guard(instr)
                continue

            if cls is GuardValues:
                ops = instr._operands
                self.guard_stats.evaluations += 1
                v = fetch(frame, ops[0])
                ok = any(v == c.value for c in ops[1:])
                if not ok:
                    self.guard_stats.record_failure(instr.guard_id)
                    if (
                        guard_detect
                        and self._guard_armed
                        and instr.guard_id not in disabled_guards
                    ):
                        raise GuardTrap(instr.guard_id, "values", cycle)
                if timing is not None:
                    timing.observe_guard(instr)
                continue

            # ---- calls / returns --------------------------------------------------
            if cls is Call:
                callee = instr.callee
                if len(frames) >= self.config.max_call_depth:
                    raise StackOverflowTrap(cycle)
                if timing is not None:
                    timing.observe_call(instr)
                new_frame = Frame(callee, instr, stack_sp)
                for formal, op in zip(callee.args, instr._operands):
                    new_frame.values[id(formal)] = fetch(frame, op)
                frames.append(new_frame)
                frame = new_frame
                continue

            if cls is Ret:
                value = fetch(frame, instr._operands[0]) if instr._operands else None
                frame.active = False
                stack_sp = frame.stack_mark
                frames.pop()
                if not frames:
                    return_value = value
                    break
                caller = frames[-1]
                call_instr = frame.call_instr
                if call_instr is not None and call_instr.has_result:
                    caller.values[id(call_instr)] = value
                    if track_registers:
                        regfile.write(caller, call_instr)
                    if value_hook is not None:
                        value_hook(call_instr, value)
                if timing is not None:
                    timing.observe_return(call_instr)
                frame = caller
                continue

            if cls is Alloca:
                size = instr.size_bytes
                aligned = (stack_sp + 7) & ~7
                if aligned + size > stack_limit:
                    raise StackOverflowTrap(cycle)
                frame.values[id(instr)] = aligned
                stack_sp = aligned + size
                if track_registers:
                    regfile.write(frame, instr)
                if timing is not None:
                    timing.observe(instr)
                continue

            raise RuntimeError(f"unhandled instruction {instr.format()}")  # pragma: no cover

        return RunResult(
            return_value=return_value,
            instructions=self.cycle,
            guard_stats=self.guard_stats,
            injection=self.injection_record,
            cycles=timing.cycles if timing is not None else None,
        )

    def _run_compiled(
        self,
        fn: Function,
        args: Sequence[object],
        inputs: Optional[Dict[str, Sequence]],
        injection: Optional[InjectionPlan],
        max_instructions: int,
        capture: Optional[SnapshotRecorder] = None,
        restore: Optional[Snapshot] = None,
    ) -> RunResult:
        """Drive the pre-compiled step closures (see :mod:`repro.sim.compiled`).

        Bit-identical to :meth:`_run_reference`; the loop only handles
        sequencing (cycle count, timeout, injection timing, jumps with phi
        moves, call/return unwinding) while each closure performs one
        instruction.  ``self.cycle`` is synced at injection points, trap
        exits, and run end; closures raise traps with ``cycle=-1`` and the
        loop re-times them.

        ``capture`` snapshots the full state whenever the cycle counter
        passes its due mark (checked at the loop top only, so a snapshot may
        overshoot the cadence by one superblock — restore uses the stored
        cycle, so this is harmless).  ``restore`` replaces the from-scratch
        prologue with a deep-copied snapshot of the golden run, resuming at
        its recorded compiled block; tracked variants are compiled either
        way, so snapshot block references stay valid here.
        """
        track = injection is not None or capture is not None
        hooked = self.value_hook is not None
        cm = compile_module(self.module, track, hooked)
        self._cm = cm
        # Injection *commits* at most once; everything the tracked variant
        # records after that instant is dead bookkeeping, so the loop swaps in
        # the untracked variant the moment the fault lands (for a batched lane
        # sweep: the moment the final lane's fault lands — the rolled-back
        # strikes before it leave ``injection_record`` unset and keep tracking
        # alive for the next lane's register-file materialization).
        self._untracked_cm = (
            compile_module(self.module, False, hooked)
            if injection is not None else None
        )
        self._rf_log = []
        self._rf_base = 0
        self._max_depth = self.config.max_call_depth
        self._stuck_fault = None
        self._stuck_mem_fault = None

        if restore is not None:
            cb, idx, cycle = restore.install(self, injection)
            inject_cycle = injection.cycle  # type: ignore[union-attr]
            frame = self._frame
        else:
            inject_cycle = self._setup_run(inputs, injection)
            self._mem_locate = self.memory._locate
            self._mem_store_locate = self.memory._locate
            bind_occupancy = getattr(capture, "bind_occupancy", None)
            if bind_occupancy is not None:
                # Occupancy capture pass: the recorder wraps both address
                # translators with its access-tracking hooks.
                self._mem_locate, self._mem_store_locate = bind_occupancy(self)

            frame = Frame(fn, None, self._stack_sp)
            for formal, actual in zip(fn.args, args):
                frame.values[id(formal)] = actual
            self._frames = [frame]
            self._frame = frame
            self._ret_value = None
            self._resume_cb = None
            self._resume_idx = 0

            cb = cm.functions[fn].entry_cb
            idx = 0
            cycle = 0
        code = cb.code
        fused = cb.fused
        vals = frame.values
        snap_due = capture.next_due if capture is not None else (1 << 62)

        try:
            while True:
                if snap_due <= cycle:
                    snap_due = capture.take(self, cb, idx, cycle)
                sb = fused[idx]
                if sb is not None and cycle + sb[1] <= max_instructions and (
                    inject_cycle < 0 or cycle + sb[1] < inject_cycle
                ):
                    # Superblock fast path: one call executes the whole
                    # straight-line run (possibly including the block
                    # terminator, whose return value dispatches below).
                    # Entered only when neither the pending injection nor
                    # the instruction budget falls inside the run —
                    # otherwise single-step so the per-instruction event
                    # checks fire at the exact cycle.
                    try:
                        ret = sb[0](self, frame, vals)
                    except Exception:
                        # Re-time from the intra-run progress marker; the
                        # outer handler reads the corrected local (for traps
                        # and contained harness exceptions alike).
                        cycle += self._sbk
                        raise
                    cycle += sb[1]
                    if ret is None:
                        idx += sb[1]
                        continue
                else:
                    cycle += 1
                    if cycle > max_instructions:
                        raise TimeoutTrap(max_instructions, cycle)
                    if 0 <= inject_cycle <= cycle:
                        self.cycle = cycle
                        frame.index = idx + 1
                        self._materialize_regfile()
                        inject_cycle = self._do_injection(injection, frame, idx)  # type: ignore[arg-type]
                        if track and self.injection_record is not None:
                            track = False
                            cb = self._switch_to_untracked(cb)
                            code = cb.code
                            fused = cb.fused
                    step = code[idx]
                    idx += 1
                    ret = step(self, frame, vals)
                    if ret is None:
                        continue
                if ret.__class__ is CompiledBlock:
                    prev = frame.block
                    frame.block = ret.block
                    frame.prev_block = prev
                    commit = ret.phi_stages.get(prev)
                    if commit is None:
                        commit = ret.phi_fallback
                    if commit is not None:
                        commit_fn, n = commit
                        commit_fn(self, frame, vals)
                        cycle += n
                    cb = ret
                    code = ret.code
                    fused = ret.fused
                    idx = ret.n_phis
                    if 0 <= inject_cycle <= cycle:
                        self.cycle = cycle
                        frame.index = idx
                        self._materialize_regfile()
                        inject_cycle = self._do_injection(injection, frame, idx)  # type: ignore[arg-type]
                        if track and self.injection_record is not None:
                            track = False
                            cb = self._switch_to_untracked(cb)
                            code = cb.code
                            fused = cb.fused
                    continue
                if ret is UNWIND:
                    frame = self._frame
                    vals = frame.values
                    cb = self._resume_cb
                    code = cb.code
                    fused = cb.fused
                    idx = self._resume_idx
                    continue
                break  # STOP: entry function returned
        except SimTrap as trap:
            self.cycle = cycle
            if trap.cycle < 0:
                raise _retime_trap(trap, cycle) from None
            raise
        except Exception:
            # Sync the cycle so the containment boundary stamps any
            # HarnessContainedTrap with the true progress point.
            self.cycle = cycle
            raise

        self.cycle = cycle
        return RunResult(
            return_value=self._ret_value,
            instructions=cycle,
            guard_stats=self.guard_stats,
            injection=self.injection_record,
            cycles=None,
        )

    # -- helpers ---------------------------------------------------------------------------

    def _materialize_regfile(self) -> None:
        """Replay the lazy write log into the real register file.

        The fast path records retirements as ``(frame, producer)`` appends;
        only the injection instant reads the register file, so the slots are
        materialized here.  Replaying the last ``capacity`` entries with
        ``_writes`` pre-advanced to the drop count reproduces the eager
        path's slot assignment, tags, and cursor exactly (write ``i`` always
        lands in slot ``i % capacity``).
        """
        log = self._rf_log
        if not log:
            return
        regfile = self._regfile
        assert regfile is not None
        cap = len(regfile.slots)
        # A restored run starts mid-history: _rf_base writes were already
        # dropped from the log at capture time (only the newest `cap` can
        # occupy a slot), so tags/cursor continue from the absolute count.
        total = self._rf_base + len(log)
        start = len(log) - cap if total > cap else 0
        regfile._writes = total - cap if total > cap else 0
        regfile._cursor = regfile._writes % cap
        write = regfile.write
        for frame, obj in log[start:]:
            write(frame, obj)
        self._rf_log = []
        self._rf_base = 0

    def _switch_to_untracked(self, cb):
        """Swap the run onto the untracked compiled variant after injection.

        Remaps the current block and every pending return-resume block onto
        the untracked :class:`CompiledModule` so the rest of the run skips
        register-file logging entirely.
        """
        ucm = self._untracked_cm
        if ucm is None:
            return cb
        frames = self._frames
        for i in range(1, len(frames)):
            fr = frames[i]
            if fr.ret_cb is not None:
                fr.ret_cb = (
                    ucm.functions[frames[i - 1].function].blocks[fr.ret_cb.block]
                )
        self._cm = ucm
        return ucm.functions[frames[-1].function].blocks[cb.block]

    def _corrupt_cb(self, frame: Frame, correct_cb):
        """Fast-path control-fault resolution: CompiledBlock-level wrapper."""
        wrong = self._corrupt_target(frame, correct_cb.block)
        if wrong is correct_cb.block:
            return correct_cb
        return self._cm.functions[frame.function].blocks[wrong]

    def _corrupt_target(self, frame: Frame, correct: BasicBlock) -> BasicBlock:
        """Resolve a pending control fault: jump to a random wrong block."""
        self._pending_control_fault = False
        record = self.injection_record
        blocks = [b for b in frame.function.blocks if b is not correct]
        if not blocks:
            return correct
        assert self._rng is not None
        wrong = blocks[self._rng.randrange(len(blocks))]
        self._control_fault_fired = True
        if record is not None:
            record.landed = True
            record.was_live = True
            record.function = frame.function.name
        return wrong

    def _enter_block(
        self,
        frame: Frame,
        target: BasicBlock,
        track_registers: bool,
        value_hook,
        timing,
    ) -> None:
        """Transfer control to ``target``, executing its phis as parallel copies."""
        prev = frame.block
        frame.block = target
        frame.prev_block = prev
        instrs = target.instructions
        n_phis = 0
        staged = []
        fetch = self._fetch
        # Parallel-copy semantics: fetch every incoming before committing any
        # phi result (a header phi may use a sibling phi's *old* value).
        for instr in instrs:
            if instr.__class__ is not Phi:
                break
            n_phis += 1
            try:
                incoming = instr.incoming_for(prev)
            except KeyError:
                # Only reachable after a control fault landed us on a block
                # whose phis have no incoming for the (wrong) predecessor;
                # hardware would read garbage — model it as the first incoming.
                incoming = instr.operands[0]
            staged.append((instr, fetch(frame, incoming), incoming))
        for instr, value, incoming in staged:
            frame.values[id(instr)] = value
            if track_registers:
                self._regfile.write(frame, instr)  # type: ignore[union-attr]
            if value_hook is not None:
                value_hook(instr, value)
            if timing is not None:
                timing.observe_phi(instr, incoming)
        self.cycle += n_phis
        frame.index = n_phis

    def _fetch(self, frame: Frame, value: Value):
        v = frame.values.get(id(value), _MISSING)
        if v is not _MISSING:
            return v
        cls = value.__class__
        if cls is Constant:
            return value.value
        if cls is GlobalVariable:
            return self._global_addr[value.name]
        if cls is UndefValue:
            return 0
        if self._control_fault_fired:
            # A wrong-target jump can reach code whose inputs were never
            # computed; the hardware would read whatever the register holds.
            return 0 if not value.type.is_float else 0.0
        raise RuntimeError(
            f"value {value.short()} has no binding in frame of @{frame.function.name}"
        )

    def _eval_cast(self, instr: Cast, value):
        opcode = instr.opcode
        to_type = instr.type
        if opcode == "trunc":
            return to_type.wrap(value)
        if opcode == "zext":
            return to_type.wrap(value & instr._operands[0].type.mask)
        if opcode == "sext":
            return to_type.wrap(value)
        if opcode == "sitofp":
            result = float(value)
            if to_type is F32:
                result = _F32_STRUCT.unpack(_F32_STRUCT.pack(result))[0]
            return result
        if opcode == "fptosi":
            if math.isnan(value):
                return 0
            if value >= to_type.max_signed:
                return to_type.max_signed
            if value <= to_type.min_signed:
                return to_type.min_signed
            return int(value)
        if opcode == "fpext":
            return float(value)
        if opcode == "fptrunc":
            try:
                return _F32_STRUCT.unpack(_F32_STRUCT.pack(value))[0]
            except (OverflowError, ValueError):
                return math.inf if value > 0 else -math.inf
        if opcode == "ptrtoint":
            return to_type.wrap(value)
        if opcode == "inttoptr":
            return value & 0xFFFFFFFFFFFFFFFF
        if opcode == "bitcast":
            return value
        raise RuntimeError(f"unhandled cast {opcode}")  # pragma: no cover
