"""Execution substrate: IR interpreter, segmented memory, register-file fault
model, caches, and the out-of-order timing estimator (paper Table II)."""

from .cache import BranchPredictor, SetAssociativeCache
from .config import CacheConfig, SimConfig
from .events import (
    ArithmeticTrap,
    GuardStats,
    GuardTrap,
    MemoryTrap,
    RunResult,
    SimTrap,
    StackOverflowTrap,
    TimeoutTrap,
)
from .faults import (
    LARGE_CHANGE_THRESHOLD,
    InjectionPlan,
    InjectionRecord,
    flip_bit,
    value_change_magnitude,
)
from .interpreter import Frame, Interpreter
from .memory import Memory, Segment
from .regfile import RegisterFile, RegisterSlot
from .timing import TimingModel
from .trace import TraceEvent, Tracer, first_divergence, trace_run

__all__ = [
    "BranchPredictor", "SetAssociativeCache",
    "CacheConfig", "SimConfig",
    "ArithmeticTrap", "GuardStats", "GuardTrap", "MemoryTrap", "RunResult",
    "SimTrap", "StackOverflowTrap", "TimeoutTrap",
    "LARGE_CHANGE_THRESHOLD", "InjectionPlan", "InjectionRecord", "flip_bit",
    "value_change_magnitude",
    "Frame", "Interpreter",
    "Memory", "Segment",
    "RegisterFile", "RegisterSlot",
    "TimingModel",
    "TraceEvent", "Tracer", "first_divergence", "trace_run",
]
