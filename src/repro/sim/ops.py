"""Pure evaluator tables for IR operations.

Shared by the two interpreter execution paths: the reference loop in
:mod:`repro.sim.interpreter` looks evaluators up per retired instruction,
while the fast path in :mod:`repro.sim.compiled` resolves them once per
instruction at pre-compilation time.  Keeping one table guarantees the two
paths cannot drift apart semantically.
"""

from __future__ import annotations

import math
from typing import Callable, Dict


def c_div(a: int, b: int) -> int:
    """C-style truncating division."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def c_rem(a: int, b: int) -> int:
    """C-style remainder (sign of the dividend)."""
    return a - c_div(a, b) * b


def float_div(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        return math.inf if (a > 0) == (math.copysign(1.0, b) > 0) else -math.inf
    return a / b


def _make_int_binops() -> Dict[str, Callable]:
    """Opcode → (a, b, type) evaluators with two's-complement wrap."""

    def add(a, b, t):
        return t.wrap(a + b)

    def sub(a, b, t):
        return t.wrap(a - b)

    def mul(a, b, t):
        return t.wrap(a * b)

    def sdiv(a, b, t):
        if b == 0:
            raise ZeroDivisionError
        return t.wrap(c_div(a, b))

    def udiv(a, b, t):
        if b == 0:
            raise ZeroDivisionError
        return t.wrap((a & t.mask) // (b & t.mask))

    def srem(a, b, t):
        if b == 0:
            raise ZeroDivisionError
        return t.wrap(c_rem(a, b))

    def urem(a, b, t):
        if b == 0:
            raise ZeroDivisionError
        return t.wrap((a & t.mask) % (b & t.mask))

    def and_(a, b, t):
        return t.wrap(a & b)

    def or_(a, b, t):
        return t.wrap(a | b)

    def xor(a, b, t):
        return t.wrap(a ^ b)

    def shl(a, b, t):
        return t.wrap(a << (b & (t.bits - 1)))

    def lshr(a, b, t):
        return t.wrap((a & t.mask) >> (b & (t.bits - 1)))

    def ashr(a, b, t):
        return t.wrap(a >> (b & (t.bits - 1)))

    return {
        "add": add, "sub": sub, "mul": mul, "sdiv": sdiv, "udiv": udiv,
        "srem": srem, "urem": urem, "and": and_, "or": or_, "xor": xor,
        "shl": shl, "lshr": lshr, "ashr": ashr,
    }


def _make_float_binops() -> Dict[str, Callable]:
    return {
        "fadd": lambda a, b: a + b,
        "fsub": lambda a, b: a - b,
        "fmul": lambda a, b: a * b,
        "fdiv": float_div,
        "frem": lambda a, b: math.fmod(a, b) if b != 0.0 else math.nan,
    }


INT_BINOP_EVAL = _make_int_binops()
FLOAT_BINOP_EVAL = _make_float_binops()

ICMP_EVAL = {
    "eq": lambda a, b, t: a == b,
    "ne": lambda a, b, t: a != b,
    "slt": lambda a, b, t: a < b,
    "sle": lambda a, b, t: a <= b,
    "sgt": lambda a, b, t: a > b,
    "sge": lambda a, b, t: a >= b,
    "ult": lambda a, b, t: (a & t.mask) < (b & t.mask),
    "ule": lambda a, b, t: (a & t.mask) <= (b & t.mask),
    "ugt": lambda a, b, t: (a & t.mask) > (b & t.mask),
    "uge": lambda a, b, t: (a & t.mask) >= (b & t.mask),
}

FCMP_EVAL = {
    "oeq": lambda a, b: a == b,
    "one": lambda a, b: a != b and not (math.isnan(a) or math.isnan(b)),
    "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
}


def safe_sqrt(x: float) -> float:
    return math.sqrt(x) if x >= 0.0 else math.nan


def safe_exp(x: float) -> float:
    try:
        return math.exp(x)
    except OverflowError:
        return math.inf


def safe_log(x: float) -> float:
    if x > 0.0:
        return math.log(x)
    return -math.inf if x == 0.0 else math.nan


def safe_pow(a: float, b: float):
    try:
        return math.pow(a, b)
    except (OverflowError, ValueError):
        return math.nan


INTRINSIC_EVAL = {
    "sqrt": safe_sqrt,
    "exp": safe_exp,
    "log": safe_log,
    "sin": math.sin,
    "cos": math.cos,
    "fabs": abs,
    "abs": abs,
    "min": min,
    "max": max,
    "floor": lambda x: float(math.floor(x)),
    "pow": safe_pow,
}
