"""Transient-fault models (paper Section IV-C and beyond).

The paper's fault model is the traditional single bit flip, randomized in
time (a uniformly random dynamic cycle within the golden run length) and
space (a uniformly random occupied physical register, then a uniformly
random bit of that register).  That model remains the default — and stays
bit-identical to the historical implementation — but detector-coverage
conclusions are sensitive to the fault model (DETOx; Azambuja et al.), so
this module generalises it into a pluggable :class:`FaultModel` hierarchy:

* ``single_bit`` — the paper's model (default);
* ``double_bit`` — two independent bit flips, in the same or distinct
  occupied registers (a double-event upset);
* ``burst`` — a contiguous window of 2–:data:`BURST_MAX_BITS` flipped bits
  within one register (a multi-cell upset along a physical row);
* ``stuck_at`` — one register bit forced to 0 or 1, re-applied on a cadence
  for :data:`STUCK_WINDOW_CYCLES` cycles (an intermittent/stuck fault);
* ``memory_word`` — a single bit flip in a uniformly random mapped 32-bit
  word of simulated :class:`~repro.sim.memory.Memory` (an unprotected-SRAM
  upset, bypassing the register file entirely).

``chaos`` is a *plan-level* pseudo-model: each trial draws one of the
concrete models above from the campaign RNG.  It never reaches the
interpreter — plans always carry a concrete model name.

**Determinism.**  A model may need more randomness than the pre-drawn
(cycle, bit, seed) triple; every extra draw comes from the trial's private
:class:`random.Random` (seeded from the plan's ``seed``) *at injection
time*, never from shared state, so ``jobs=N`` campaigns stay byte-identical
to serial ones for every model.  ``single_bit`` performs exactly the
historical RNG call sequence — its plans, trials, and cache keys are
bit-identical to the pre-hierarchy implementation.

:func:`flip_bit` implements the per-type single-bit-flip semantics;
:class:`InjectionPlan` describes one planned injection; :class:`InjectionRecord`
captures what actually happened, including the before/after values used by the
Figure 2 large-vs-small value-change analysis.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from ..ir.types import FloatType, IntType, IRType, PointerType

_F64 = struct.Struct("<d")
_F32 = struct.Struct("<f")
_MISSING = object()

#: burst-model window width is drawn uniformly from [BURST_MIN_BITS,
#: BURST_MAX_BITS] — module constants rather than :class:`SimConfig` fields
#: on purpose: SimConfig is part of every campaign cache key, and the burst
#: parameters must only fragment keys for campaigns that actually use them
#: (the fault-model name in the key covers that).
BURST_MIN_BITS = 2
BURST_MAX_BITS = 8

#: stuck-at faults persist for this many cycles after injection ...
STUCK_WINDOW_CYCLES = 256
#: ... re-forcing the bit every this many cycles (the profiled window).
STUCK_REAPPLY_EVERY = 16

#: memory-word faults rejection-sample up to this many candidate words
#: looking for an occupied (non-zero) one, so flips hit live data instead of
#: the untouched expanse of the stack segment.
MEMORY_WORD_PROBES = 64


def flip_bit(type_: IRType, value, bit: int, pointer_bits: int = 32):
    """Return ``value`` with ``bit`` flipped, respecting the type's encoding.

    * integers: two's-complement flip within the type's width (``bit`` taken
      modulo the width);
    * floats: IEEE-754 bit flip (f64 = 64 bits); NaN results are kept — they
      propagate like hardware NaNs;
    * pointers: flip within the low ``pointer_bits`` bits (ARMv7-a registers
      are 32-bit).
    """
    if isinstance(type_, IntType):
        bit %= type_.bits
        return type_.wrap((value & type_.mask) ^ (1 << bit))
    if isinstance(type_, FloatType):
        # Packing an f64 is idempotent, so one pack suffices: flip the bit
        # directly in the IEEE-754 image of the value.
        bit %= 64
        bits = struct.unpack("<Q", _F64.pack(float(value)))[0] ^ (1 << bit)
        return struct.unpack("<d", struct.pack("<Q", bits))[0]
    if isinstance(type_, PointerType):
        bit %= pointer_bits
        return (int(value) ^ (1 << bit)) & ((1 << 64) - 1)
    raise TypeError(f"cannot flip a bit of type {type_}")


def _window_mask(bits: int, start: int, width: int) -> int:
    """XOR mask of ``width`` contiguous bits from ``start``, wrapping at
    ``bits`` (a burst crossing the top bit wraps to bit 0, like a physical
    row of cells adjacent modulo the register width)."""
    mask = 0
    for i in range(width):
        mask |= 1 << ((start + i) % bits)
    return mask


def flip_bits_window(
    type_: IRType, value, start_bit: int, width: int, pointer_bits: int = 32
):
    """Return ``value`` with a contiguous ``width``-bit window flipped.

    The window starts at ``start_bit`` (taken modulo the type's encoded
    width, like :func:`flip_bit`) and wraps around the top bit.
    """
    if isinstance(type_, IntType):
        mask = _window_mask(type_.bits, start_bit % type_.bits, width)
        return type_.wrap((value & type_.mask) ^ mask)
    if isinstance(type_, FloatType):
        mask = _window_mask(64, start_bit % 64, width)
        bits = struct.unpack("<Q", _F64.pack(float(value)))[0] ^ mask
        return struct.unpack("<d", struct.pack("<Q", bits))[0]
    if isinstance(type_, PointerType):
        mask = _window_mask(pointer_bits, start_bit % pointer_bits, width)
        return (int(value) ^ mask) & ((1 << 64) - 1)
    raise TypeError(f"cannot flip bits of type {type_}")


def force_bit(type_: IRType, value, bit: int, stuck: int, pointer_bits: int = 32):
    """Return ``value`` with ``bit`` forced to ``stuck`` (0 or 1).

    The stuck-at analogue of :func:`flip_bit`: idempotent, so re-applying it
    over the stuck window models a cell that cannot change state.
    """
    if isinstance(type_, IntType):
        bit %= type_.bits
        raw = value & type_.mask
        raw = raw | (1 << bit) if stuck else raw & ~(1 << bit)
        return type_.wrap(raw)
    if isinstance(type_, FloatType):
        bit %= 64
        bits = struct.unpack("<Q", _F64.pack(float(value)))[0]
        bits = bits | (1 << bit) if stuck else bits & ~(1 << bit)
        return struct.unpack("<d", struct.pack("<Q", bits))[0]
    if isinstance(type_, PointerType):
        bit %= pointer_bits
        raw = int(value)
        raw = raw | (1 << bit) if stuck else raw & ~(1 << bit)
        return raw & ((1 << 64) - 1)
    raise TypeError(f"cannot force a bit of type {type_}")


def value_change_magnitude(type_: IRType, before, after) -> float:
    """Relative magnitude of a value corruption, for the ASDC/USDC large-vs-
    small split of Figure 2.

    Defined as ``|after - before| / max(|before|, 1)`` for numeric types.
    Non-finite floats count as an infinite change.
    """
    if isinstance(type_, (IntType, PointerType)):
        b, a = int(before), int(after)
        return abs(a - b) / max(abs(b), 1)
    if isinstance(type_, FloatType):
        b, a = float(before), float(after)
        if not math.isfinite(a) or not math.isfinite(b):
            return math.inf
        return abs(a - b) / max(abs(b), 1.0)
    raise TypeError(f"no change magnitude for type {type_}")


@dataclass
class InjectionPlan:
    """A fault to inject at dynamic cycle ``cycle``.

    ``kind`` selects the fault *site* class:

    * ``"register"`` (default, the paper's model): corrupt state picked at
      injection time per the plan's fault ``model`` (register flips for most
      models, a memory word for ``memory_word``);
    * ``"control"``: corrupt the target of the next branch — the jump lands
      on a uniformly random wrong block of the executing function.  This is
      the branch-target fault class the paper explicitly excludes from its
      own coverage and defers to signature-based schemes (Section IV-C);
      the :mod:`repro.transforms.cfcss` transform protects against it.

    ``model`` names a concrete :class:`FaultModel` (``"chaos"`` is resolved
    to a concrete model at plan-drawing time and never appears here).
    """

    cycle: int
    bit: int
    seed: int = 0
    kind: str = "register"
    model: str = "single_bit"

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError("injection cycle must be non-negative")
        if self.bit < 0:
            raise ValueError("injection bit must be non-negative")
        if self.kind not in ("register", "control"):
            raise ValueError(f"unknown injection kind {self.kind!r}")
        if self.model not in FAULT_MODELS:
            raise ValueError(f"unknown fault model {self.model!r}")


@dataclass
class InjectionRecord:
    """What an injection actually did (filled in by the interpreter)."""

    plan: InjectionPlan
    landed: bool
    #: name of the IR value whose register was corrupted ('' if none
    #: occupied; ``a+b`` when a double-bit fault hit two registers;
    #: ``<mem:seg+off>`` for memory-word faults)
    value_name: str = ""
    type_name: str = ""
    #: function whose frame owned the flipped register (program region)
    function: str = ""
    before: object = None
    after: object = None
    #: True when the flipped register's value was still live (frame active and
    #: not yet overwritten); dead flips are naturally masked.
    was_live: bool = False

    @property
    def change_magnitude(self) -> float:
        """Relative corruption size (0.0 when the flip landed nowhere)."""
        if not self.landed or self.before is None:
            return 0.0
        from ..ir.types import parse_type

        return value_change_magnitude(parse_type(self.type_name), self.before, self.after)


#: Threshold on :func:`value_change_magnitude` above which a corruption counts
#: as a "large value change" in the Figure 2 analysis.
LARGE_CHANGE_THRESHOLD = 4.0


# ---------------------------------------------------------------------------
# fault-model hierarchy
# ---------------------------------------------------------------------------


def _corrupt_slot(interp, record: InjectionRecord, slot, mutate) -> bool:
    """Apply ``mutate(type_, current)`` to one register slot's value.

    Fills ``record`` exactly like the historical single-bit path: a stale
    slot (owning frame returned, or value overwritten) records a landed but
    dead flip and is left untouched.  Returns True when the value was live
    and actually mutated.
    """
    value_obj = slot.value_obj
    frame = slot.frame
    record.value_name = getattr(value_obj, "name", "")
    record.type_name = value_obj.type.name
    record.function = frame.function.name
    current = frame.values.get(slot.value_key, _MISSING)
    if not frame.active or current is _MISSING:
        # Stale register (frame returned): flip is architecturally dead.
        record.landed = True
        record.was_live = False
        return False
    mutated = mutate(value_obj.type, current)
    frame.values[slot.value_key] = mutated
    record.landed = True
    record.was_live = True
    record.before = current
    record.after = mutated
    return True


class FaultModel:
    """One way of corrupting simulator state at the injection instant.

    ``inject`` receives the interpreter (whose private per-trial RNG supplies
    any extra randomness the model needs), the plan, a fresh
    :class:`InjectionRecord` to fill, and the location of the next
    instruction (for the single-bit model's dead-flip triage).  It returns
    the cycle at which the model wants to fire again (stuck-at
    re-application) or -1 for one-shot faults.  ``reapply`` handles those
    re-fires and returns the next one (or -1).
    """

    name = ""

    def inject(self, interp, plan, record, top_frame, next_index) -> int:
        raise NotImplementedError

    def reapply(self, interp, plan) -> int:  # pragma: no cover - one-shot default
        return -1


class SingleBitFault(FaultModel):
    """The paper's model: one bit of one occupied physical register.

    Performs the exact historical RNG call sequence (live-biased slot pick,
    then :func:`flip_bit`), so single-bit campaigns are bit-identical to the
    pre-hierarchy implementation — the default model must never perturb
    existing plans, results, or cache keys.  The only model eligible for
    dead-flip triage: its corruption is a single register binding, so
    next-use liveness proves deadness.
    """

    name = "single_bit"

    def inject(self, interp, plan, record, top_frame, next_index) -> int:
        slot = interp._pick_injection_slot()
        if slot is None:
            # No register has retired yet: nothing to corrupt, Masked.
            interp._triage_short_circuit()
            return -1
        live = _corrupt_slot(
            interp, record, slot,
            lambda t, v: flip_bit(t, v, plan.bit, interp.config.register_flip_bits),
        )
        if not live:
            interp._triage_short_circuit()
            return -1
        interp._triage_flip(slot, top_frame, next_index)
        return -1


class DoubleBitFault(FaultModel):
    """Two independent bit flips (a double-event upset).

    The first flip is the plan's ``bit`` in a slot picked exactly like
    ``single_bit``; the second draws a fresh bit from the trial RNG and
    picks again — the same slot may be chosen twice (two flips in one
    register) or two registers may each take one.  The record keeps the
    first landed flip's before/after (for the Figure 2 magnitude analysis)
    and joins both register names with ``+``.
    """

    name = "double_bit"

    def inject(self, interp, plan, record, top_frame, next_index) -> int:
        width = interp.config.register_flip_bits
        slot = interp._pick_injection_slot()
        if slot is not None:
            _corrupt_slot(
                interp, record, slot,
                lambda t, v: flip_bit(t, v, plan.bit, width),
            )
        second_bit = interp._rng.randrange(width)
        slot2 = interp._pick_injection_slot()
        if slot2 is None:
            return -1
        second = InjectionRecord(plan=plan, landed=False)
        _corrupt_slot(
            interp, second, slot2,
            lambda t, v: flip_bit(t, v, second_bit, width),
        )
        if second.value_name and second.value_name != record.value_name:
            record.value_name = (
                f"{record.value_name}+{second.value_name}"
                if record.value_name else second.value_name
            )
        if not record.function:
            record.function = second.function
        if record.before is None and second.before is not None:
            record.type_name = second.type_name
            record.before = second.before
            record.after = second.after
        record.landed = record.landed or second.landed
        record.was_live = record.was_live or second.was_live
        return -1


class BurstFault(FaultModel):
    """A contiguous window of flipped bits within one register.

    The window width is drawn uniformly from [:data:`BURST_MIN_BITS`,
    :data:`BURST_MAX_BITS`] out of the trial RNG; the window starts at the
    plan's ``bit`` and wraps around the register width (see
    :func:`flip_bits_window`).
    """

    name = "burst"

    def inject(self, interp, plan, record, top_frame, next_index) -> int:
        width = BURST_MIN_BITS + interp._rng.randrange(
            BURST_MAX_BITS - BURST_MIN_BITS + 1
        )
        slot = interp._pick_injection_slot()
        if slot is None:
            return -1
        _corrupt_slot(
            interp, record, slot,
            lambda t, v: flip_bits_window(
                t, v, plan.bit, width, interp.config.register_flip_bits
            ),
        )
        return -1


class StuckAtFault(FaultModel):
    """One register bit forced to 0 or 1 for a window of cycles.

    The stuck polarity is drawn from the trial RNG; the bit is forced at
    injection and re-forced every :data:`STUCK_REAPPLY_EVERY` cycles for
    :data:`STUCK_WINDOW_CYCLES` cycles, so a program that rewrites the
    register keeps losing that bit — an intermittent fault rather than a
    transient one.  Re-application stops early when the owning frame
    returns or the binding is overwritten out of the frame.
    """

    name = "stuck_at"

    def inject(self, interp, plan, record, top_frame, next_index) -> int:
        stuck = interp._rng.randrange(2)
        slot = interp._pick_injection_slot()
        if slot is None:
            return -1
        live = _corrupt_slot(
            interp, record, slot,
            lambda t, v: force_bit(
                t, v, plan.bit, stuck, interp.config.register_flip_bits
            ),
        )
        if not live:
            return -1
        interp._stuck_fault = (
            slot.frame, slot.value_key, slot.value_obj, plan.bit, stuck,
            interp.cycle + STUCK_WINDOW_CYCLES,
        )
        return interp.cycle + STUCK_REAPPLY_EVERY

    def reapply(self, interp, plan) -> int:
        binding = interp._stuck_fault
        if binding is None:
            return -1
        frame, value_key, value_obj, bit, stuck, deadline = binding
        if interp.cycle > deadline or not frame.active:
            interp._stuck_fault = None
            return -1
        current = frame.values.get(value_key, _MISSING)
        if current is not _MISSING:
            frame.values[value_key] = force_bit(
                value_obj.type, current, bit, stuck,
                interp.config.register_flip_bits,
            )
        next_cycle = interp.cycle + STUCK_REAPPLY_EVERY
        if next_cycle > deadline:
            interp._stuck_fault = None
            return -1
        return next_cycle


class MemoryWordFault(FaultModel):
    """A single bit flip in a random *live* mapped 32-bit memory word.

    Bypasses the register file: candidate words are drawn over every mapped
    segment (globals and the stack) in deterministic segment order,
    modelling an upset in unprotected SRAM rather than the core.  Because
    the stack segment is overwhelmingly untouched zeros, a uniform draw
    would almost always hit dead space and mask; instead up to
    :data:`MEMORY_WORD_PROBES` candidates are rejection-sampled until one
    holds non-zero data (falling back to the first draw if none does) — a
    flip in an occupied word, which is the interesting case.  The plan's
    ``bit`` selects the bit within the word (modulo 32).
    """

    name = "memory_word"

    def inject(self, interp, plan, record, top_frame, next_index) -> int:
        memory = interp.memory
        segments = memory.unique_segments()
        total_words = sum(seg.size // 4 for seg in segments)
        if total_words == 0:  # pragma: no cover - the stack is always mapped
            return -1

        def locate(word: int):
            for seg in segments:  # pragma: no branch - word < total_words
                words = seg.size // 4
                if word < words:
                    return seg, word * 4
                word -= words

        first = None
        seg = offset = None
        for _ in range(MEMORY_WORD_PROBES):
            candidate = interp._rng.randrange(total_words)
            if first is None:
                first = candidate
            seg, offset = locate(candidate)
            if seg.data[offset:offset + 4] != b"\x00\x00\x00\x00":
                break
        else:
            seg, offset = locate(first)
        before, after = memory.flip_word_bit(seg, offset, plan.bit)
        record.landed = True
        record.was_live = True
        record.value_name = f"<mem:{seg.name}+{offset:#x}>"
        record.type_name = "i32"
        record.before = before
        record.after = after
        frame = top_frame if top_frame is not None else interp._frame
        if frame is not None:
            record.function = frame.function.name
        return -1


#: name -> concrete model instance (insertion order is the canonical listing
#: order used by the chaos mix and the CLIs)
FAULT_MODELS = {
    model.name: model
    for model in (
        SingleBitFault(),
        DoubleBitFault(),
        BurstFault(),
        StuckAtFault(),
        MemoryWordFault(),
    )
}

#: the concrete model names, in canonical order
CONCRETE_FAULT_MODELS = tuple(FAULT_MODELS)

#: plan-level pseudo-model: each trial draws a concrete model from the
#: campaign RNG (see :func:`repro.faultinjection.campaign.draw_plans`)
CHAOS_FAULT_MODEL = "chaos"


def get_fault_model(name: str) -> FaultModel:
    """The concrete :class:`FaultModel` registered under ``name``."""
    try:
        return FAULT_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault model {name!r} (known: "
            f"{', '.join(CONCRETE_FAULT_MODELS)})"
        ) from None
