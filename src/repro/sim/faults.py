"""Transient-fault models (paper Section IV-C).

The fault model is the traditional single bit flip, randomized in time (a
uniformly random dynamic cycle within the golden run length) and space (a
uniformly random occupied physical register, then a uniformly random bit of
that register).  :func:`flip_bit` implements the per-type bit-flip semantics;
:class:`InjectionPlan` describes one planned injection; :class:`InjectionRecord`
captures what actually happened, including the before/after values used by the
Figure 2 large-vs-small value-change analysis.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from ..ir.types import FloatType, IntType, IRType, PointerType

_F64 = struct.Struct("<d")
_F32 = struct.Struct("<f")


def flip_bit(type_: IRType, value, bit: int, pointer_bits: int = 32):
    """Return ``value`` with ``bit`` flipped, respecting the type's encoding.

    * integers: two's-complement flip within the type's width (``bit`` taken
      modulo the width);
    * floats: IEEE-754 bit flip (f64 = 64 bits); NaN results are kept — they
      propagate like hardware NaNs;
    * pointers: flip within the low ``pointer_bits`` bits (ARMv7-a registers
      are 32-bit).
    """
    if isinstance(type_, IntType):
        bit %= type_.bits
        return type_.wrap((value & type_.mask) ^ (1 << bit))
    if isinstance(type_, FloatType):
        # Packing an f64 is idempotent, so one pack suffices: flip the bit
        # directly in the IEEE-754 image of the value.
        bit %= 64
        bits = struct.unpack("<Q", _F64.pack(float(value)))[0] ^ (1 << bit)
        return struct.unpack("<d", struct.pack("<Q", bits))[0]
    if isinstance(type_, PointerType):
        bit %= pointer_bits
        return (int(value) ^ (1 << bit)) & ((1 << 64) - 1)
    raise TypeError(f"cannot flip a bit of type {type_}")


def value_change_magnitude(type_: IRType, before, after) -> float:
    """Relative magnitude of a value corruption, for the ASDC/USDC large-vs-
    small split of Figure 2.

    Defined as ``|after - before| / max(|before|, 1)`` for numeric types.
    Non-finite floats count as an infinite change.
    """
    if isinstance(type_, (IntType, PointerType)):
        b, a = int(before), int(after)
        return abs(a - b) / max(abs(b), 1)
    if isinstance(type_, FloatType):
        b, a = float(before), float(after)
        if not math.isfinite(a) or not math.isfinite(b):
            return math.inf
        return abs(a - b) / max(abs(b), 1.0)
    raise TypeError(f"no change magnitude for type {type_}")


@dataclass
class InjectionPlan:
    """A fault to inject at dynamic cycle ``cycle``.

    ``kind`` selects the fault model:

    * ``"register"`` (default, the paper's model): flip bit ``bit`` of a
      randomly chosen occupied physical register (the register is drawn at
      injection time so the population is the live one);
    * ``"control"``: corrupt the target of the next branch — the jump lands
      on a uniformly random wrong block of the executing function.  This is
      the branch-target fault class the paper explicitly excludes from its
      own coverage and defers to signature-based schemes (Section IV-C);
      the :mod:`repro.transforms.cfcss` transform protects against it.
    """

    cycle: int
    bit: int
    seed: int = 0
    kind: str = "register"

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError("injection cycle must be non-negative")
        if self.bit < 0:
            raise ValueError("injection bit must be non-negative")
        if self.kind not in ("register", "control"):
            raise ValueError(f"unknown injection kind {self.kind!r}")


@dataclass
class InjectionRecord:
    """What an injection actually did (filled in by the interpreter)."""

    plan: InjectionPlan
    landed: bool
    #: name of the IR value whose register was flipped ('' if none occupied)
    value_name: str = ""
    type_name: str = ""
    #: function whose frame owned the flipped register (program region)
    function: str = ""
    before: object = None
    after: object = None
    #: True when the flipped register's value was still live (frame active and
    #: not yet overwritten); dead flips are naturally masked.
    was_live: bool = False

    @property
    def change_magnitude(self) -> float:
        """Relative corruption size (0.0 when the flip landed nowhere)."""
        if not self.landed or self.before is None:
            return 0.0
        from ..ir.types import parse_type

        return value_change_magnitude(parse_type(self.type_name), self.before, self.after)


#: Threshold on :func:`value_change_magnitude` above which a corruption counts
#: as a "large value change" in the Figure 2 analysis.
LARGE_CHANGE_THRESHOLD = 4.0
