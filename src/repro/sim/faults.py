"""Transient-fault models (paper Section IV-C and beyond).

The paper's fault model is the traditional single bit flip, randomized in
time (a uniformly random dynamic cycle within the golden run length) and
space (a uniformly random occupied physical register, then a uniformly
random bit of that register).  That model remains the default — and stays
bit-identical to the historical implementation — but detector-coverage
conclusions are sensitive to the fault model (DETOx; Azambuja et al.), so
this module generalises it into a pluggable :class:`FaultModel` hierarchy:

* ``single_bit`` — the paper's model (default);
* ``double_bit`` — two independent bit flips, in the same or distinct
  occupied registers (a double-event upset);
* ``burst`` — a contiguous window of 2–:data:`BURST_MAX_BITS` flipped bits
  within one register (a multi-cell upset along a physical row);
* ``stuck_at`` — one register bit forced to 0 or 1, re-applied on a cadence
  for :data:`STUCK_WINDOW_CYCLES` cycles (an intermittent/stuck fault);
* ``memory_word`` — a single bit flip in a mapped 32-bit word of simulated
  :class:`~repro.sim.memory.Memory` (an unprotected-SRAM upset, bypassing
  the register file entirely); drawn over *occupied* words when the
  golden-run occupancy map is available, rejection-sampled over the raw
  address space otherwise;
* ``mem_transient`` / ``mem_stuck_at`` / ``cache_line`` / ``stack_frame`` —
  the memory-hierarchy suite: occupied-word transient, forced memory bit
  with reapply-on-write semantics, resident-L1D-line data/tag corruption,
  and active-stack-frame spill flips.  All draw from the golden-run
  occupancy maps built by :mod:`repro.sim.memfaults`, and provably-dead
  hits short-circuit to Masked through the triage path.

``chaos`` is a *plan-level* pseudo-model: each trial draws one of the
concrete models above from the campaign RNG.  It never reaches the
interpreter — plans always carry a concrete model name.

**Determinism.**  A model may need more randomness than the pre-drawn
(cycle, bit, seed) triple; every extra draw comes from the trial's private
:class:`random.Random` (seeded from the plan's ``seed``) *at injection
time*, never from shared state, so ``jobs=N`` campaigns stay byte-identical
to serial ones for every model.  ``single_bit`` performs exactly the
historical RNG call sequence — its plans, trials, and cache keys are
bit-identical to the pre-hierarchy implementation.

:func:`flip_bit` implements the per-type single-bit-flip semantics;
:class:`InjectionPlan` describes one planned injection; :class:`InjectionRecord`
captures what actually happened, including the before/after values used by the
Figure 2 large-vs-small value-change analysis.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from ..ir.types import FloatType, IntType, IRType, PointerType
from .memfaults import (
    draw_occupied_word,
    fill_memory_record,
    probe_any_word,
    triage_dead_memory,
)

_F64 = struct.Struct("<d")
_F32 = struct.Struct("<f")
_MISSING = object()

#: burst-model window width is drawn uniformly from [BURST_MIN_BITS,
#: BURST_MAX_BITS] — module constants rather than :class:`SimConfig` fields
#: on purpose: SimConfig is part of every campaign cache key, and the burst
#: parameters must only fragment keys for campaigns that actually use them
#: (the fault-model name in the key covers that).
BURST_MIN_BITS = 2
BURST_MAX_BITS = 8

#: stuck-at faults persist for this many cycles after injection ...
STUCK_WINDOW_CYCLES = 256
#: ... re-forcing the bit every this many cycles (the profiled window).
STUCK_REAPPLY_EVERY = 16

#: memory-word faults rejection-sample up to this many candidate words
#: looking for an occupied (non-zero) one, so flips hit live data instead of
#: the untouched expanse of the stack segment.
MEMORY_WORD_PROBES = 64


def flip_bit(type_: IRType, value, bit: int, pointer_bits: int = 32):
    """Return ``value`` with ``bit`` flipped, respecting the type's encoding.

    * integers: two's-complement flip within the type's width (``bit`` taken
      modulo the width);
    * floats: IEEE-754 bit flip (f64 = 64 bits); NaN results are kept — they
      propagate like hardware NaNs;
    * pointers: flip within the low ``pointer_bits`` bits (ARMv7-a registers
      are 32-bit).
    """
    if isinstance(type_, IntType):
        bit %= type_.bits
        return type_.wrap((value & type_.mask) ^ (1 << bit))
    if isinstance(type_, FloatType):
        # Packing an f64 is idempotent, so one pack suffices: flip the bit
        # directly in the IEEE-754 image of the value.
        bit %= 64
        bits = struct.unpack("<Q", _F64.pack(float(value)))[0] ^ (1 << bit)
        return struct.unpack("<d", struct.pack("<Q", bits))[0]
    if isinstance(type_, PointerType):
        bit %= pointer_bits
        return (int(value) ^ (1 << bit)) & ((1 << 64) - 1)
    raise TypeError(f"cannot flip a bit of type {type_}")


def _window_mask(bits: int, start: int, width: int) -> int:
    """XOR mask of ``width`` contiguous bits from ``start``, wrapping at
    ``bits`` (a burst crossing the top bit wraps to bit 0, like a physical
    row of cells adjacent modulo the register width)."""
    mask = 0
    for i in range(width):
        mask |= 1 << ((start + i) % bits)
    return mask


def flip_bits_window(
    type_: IRType, value, start_bit: int, width: int, pointer_bits: int = 32
):
    """Return ``value`` with a contiguous ``width``-bit window flipped.

    The window starts at ``start_bit`` (taken modulo the type's encoded
    width, like :func:`flip_bit`) and wraps around the top bit.
    """
    if isinstance(type_, IntType):
        mask = _window_mask(type_.bits, start_bit % type_.bits, width)
        return type_.wrap((value & type_.mask) ^ mask)
    if isinstance(type_, FloatType):
        mask = _window_mask(64, start_bit % 64, width)
        bits = struct.unpack("<Q", _F64.pack(float(value)))[0] ^ mask
        return struct.unpack("<d", struct.pack("<Q", bits))[0]
    if isinstance(type_, PointerType):
        mask = _window_mask(pointer_bits, start_bit % pointer_bits, width)
        return (int(value) ^ mask) & ((1 << 64) - 1)
    raise TypeError(f"cannot flip bits of type {type_}")


def force_bit(type_: IRType, value, bit: int, stuck: int, pointer_bits: int = 32):
    """Return ``value`` with ``bit`` forced to ``stuck`` (0 or 1).

    The stuck-at analogue of :func:`flip_bit`: idempotent, so re-applying it
    over the stuck window models a cell that cannot change state.
    """
    if isinstance(type_, IntType):
        bit %= type_.bits
        raw = value & type_.mask
        raw = raw | (1 << bit) if stuck else raw & ~(1 << bit)
        return type_.wrap(raw)
    if isinstance(type_, FloatType):
        bit %= 64
        bits = struct.unpack("<Q", _F64.pack(float(value)))[0]
        bits = bits | (1 << bit) if stuck else bits & ~(1 << bit)
        return struct.unpack("<d", struct.pack("<Q", bits))[0]
    if isinstance(type_, PointerType):
        bit %= pointer_bits
        raw = int(value)
        raw = raw | (1 << bit) if stuck else raw & ~(1 << bit)
        return raw & ((1 << 64) - 1)
    raise TypeError(f"cannot force a bit of type {type_}")


def value_change_magnitude(type_: IRType, before, after) -> float:
    """Relative magnitude of a value corruption, for the ASDC/USDC large-vs-
    small split of Figure 2.

    Defined as ``|after - before| / max(|before|, 1)`` for numeric types.
    Non-finite floats count as an infinite change.
    """
    if isinstance(type_, (IntType, PointerType)):
        b, a = int(before), int(after)
        return abs(a - b) / max(abs(b), 1)
    if isinstance(type_, FloatType):
        b, a = float(before), float(after)
        if not math.isfinite(a) or not math.isfinite(b):
            return math.inf
        return abs(a - b) / max(abs(b), 1.0)
    raise TypeError(f"no change magnitude for type {type_}")


@dataclass
class InjectionPlan:
    """A fault to inject at dynamic cycle ``cycle``.

    ``kind`` selects the fault *site* class:

    * ``"register"`` (default, the paper's model): corrupt state picked at
      injection time per the plan's fault ``model`` (register flips for most
      models, a memory word for ``memory_word``);
    * ``"control"``: corrupt the target of the next branch — the jump lands
      on a uniformly random wrong block of the executing function.  This is
      the branch-target fault class the paper explicitly excludes from its
      own coverage and defers to signature-based schemes (Section IV-C);
      the :mod:`repro.transforms.cfcss` transform protects against it.

    ``model`` names a concrete :class:`FaultModel` (``"chaos"`` is resolved
    to a concrete model at plan-drawing time and never appears here).
    """

    cycle: int
    bit: int
    seed: int = 0
    kind: str = "register"
    model: str = "single_bit"

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError("injection cycle must be non-negative")
        if self.bit < 0:
            raise ValueError("injection bit must be non-negative")
        if self.kind not in ("register", "control"):
            raise ValueError(f"unknown injection kind {self.kind!r}")
        if self.model not in FAULT_MODELS:
            raise ValueError(f"unknown fault model {self.model!r}")


@dataclass
class InjectionRecord:
    """What an injection actually did (filled in by the interpreter)."""

    plan: InjectionPlan
    landed: bool
    #: name of the IR value whose register was corrupted ('' if none
    #: occupied; ``a+b`` when a double-bit fault hit two registers;
    #: ``<mem:seg+off>`` for memory-word faults)
    value_name: str = ""
    type_name: str = ""
    #: function whose frame owned the flipped register (program region)
    function: str = ""
    before: object = None
    after: object = None
    #: True when the flipped register's value was still live (frame active and
    #: not yet overwritten); dead flips are naturally masked.
    was_live: bool = False

    @property
    def change_magnitude(self) -> float:
        """Relative corruption size (0.0 when the flip landed nowhere)."""
        if not self.landed or self.before is None:
            return 0.0
        from ..ir.types import parse_type

        return value_change_magnitude(parse_type(self.type_name), self.before, self.after)


#: Threshold on :func:`value_change_magnitude` above which a corruption counts
#: as a "large value change" in the Figure 2 analysis.
LARGE_CHANGE_THRESHOLD = 4.0


# ---------------------------------------------------------------------------
# fault-model hierarchy
# ---------------------------------------------------------------------------


def _corrupt_slot(interp, record: InjectionRecord, slot, mutate) -> bool:
    """Apply ``mutate(type_, current)`` to one register slot's value.

    Fills ``record`` exactly like the historical single-bit path: a stale
    slot (owning frame returned, or value overwritten) records a landed but
    dead flip and is left untouched.  Returns True when the value was live
    and actually mutated.
    """
    value_obj = slot.value_obj
    frame = slot.frame
    record.value_name = getattr(value_obj, "name", "")
    record.type_name = value_obj.type.name
    record.function = frame.function.name
    current = frame.values.get(slot.value_key, _MISSING)
    if not frame.active or current is _MISSING:
        # Stale register (frame returned): flip is architecturally dead.
        record.landed = True
        record.was_live = False
        return False
    mutated = mutate(value_obj.type, current)
    if interp._undo_log is not None:
        # Batched lane sweep: journal the binding so the strike can be
        # rolled back byte-exactly after the lane's verdict is recorded.
        interp._undo_log.append(("reg", frame, slot.value_key, current))
    frame.values[slot.value_key] = mutated
    record.landed = True
    record.was_live = True
    record.before = current
    record.after = mutated
    return True


class FaultModel:
    """One way of corrupting simulator state at the injection instant.

    ``inject`` receives the interpreter (whose private per-trial RNG supplies
    any extra randomness the model needs), the plan, a fresh
    :class:`InjectionRecord` to fill, and the location of the next
    instruction (for the single-bit model's dead-flip triage).  It returns
    the cycle at which the model wants to fire again (stuck-at
    re-application) or -1 for one-shot faults.  ``reapply`` handles those
    re-fires and returns the next one (or -1).
    """

    name = ""

    def inject(self, interp, plan, record, top_frame, next_index) -> int:
        raise NotImplementedError

    def reapply(self, interp, plan) -> int:  # pragma: no cover - one-shot default
        return -1


class SingleBitFault(FaultModel):
    """The paper's model: one bit of one occupied physical register.

    Performs the exact historical RNG call sequence (live-biased slot pick,
    then :func:`flip_bit`), so single-bit campaigns are bit-identical to the
    pre-hierarchy implementation — the default model must never perturb
    existing plans, results, or cache keys.  The only model eligible for
    dead-flip triage: its corruption is a single register binding, so
    next-use liveness proves deadness.
    """

    name = "single_bit"

    def inject(self, interp, plan, record, top_frame, next_index) -> int:
        slot = interp._pick_injection_slot()
        if slot is None:
            # No register has retired yet: nothing to corrupt, Masked.
            interp._triage_short_circuit()
            return -1
        live = _corrupt_slot(
            interp, record, slot,
            lambda t, v: flip_bit(t, v, plan.bit, interp.config.register_flip_bits),
        )
        if not live:
            interp._triage_short_circuit()
            return -1
        interp._triage_flip(slot, top_frame, next_index)
        return -1


class DoubleBitFault(FaultModel):
    """Two independent bit flips (a double-event upset).

    The first flip is the plan's ``bit`` in a slot picked exactly like
    ``single_bit``; the second draws a fresh bit from the trial RNG and
    picks again — the same slot may be chosen twice (two flips in one
    register) or two registers may each take one.  The record keeps the
    first landed flip's before/after (for the Figure 2 magnitude analysis)
    and joins both register names with ``+``.
    """

    name = "double_bit"

    def inject(self, interp, plan, record, top_frame, next_index) -> int:
        width = interp.config.register_flip_bits
        slot = interp._pick_injection_slot()
        if slot is not None:
            _corrupt_slot(
                interp, record, slot,
                lambda t, v: flip_bit(t, v, plan.bit, width),
            )
        second_bit = interp._rng.randrange(width)
        slot2 = interp._pick_injection_slot()
        if slot2 is None:
            return -1
        second = InjectionRecord(plan=plan, landed=False)
        _corrupt_slot(
            interp, second, slot2,
            lambda t, v: flip_bit(t, v, second_bit, width),
        )
        if second.value_name and second.value_name != record.value_name:
            record.value_name = (
                f"{record.value_name}+{second.value_name}"
                if record.value_name else second.value_name
            )
        if not record.function:
            record.function = second.function
        if record.before is None and second.before is not None:
            record.type_name = second.type_name
            record.before = second.before
            record.after = second.after
        record.landed = record.landed or second.landed
        record.was_live = record.was_live or second.was_live
        return -1


class BurstFault(FaultModel):
    """A contiguous window of flipped bits within one register.

    The window width is drawn uniformly from [:data:`BURST_MIN_BITS`,
    :data:`BURST_MAX_BITS`] out of the trial RNG; the window starts at the
    plan's ``bit`` and wraps around the register width (see
    :func:`flip_bits_window`).
    """

    name = "burst"

    def inject(self, interp, plan, record, top_frame, next_index) -> int:
        width = BURST_MIN_BITS + interp._rng.randrange(
            BURST_MAX_BITS - BURST_MIN_BITS + 1
        )
        slot = interp._pick_injection_slot()
        if slot is None:
            return -1
        _corrupt_slot(
            interp, record, slot,
            lambda t, v: flip_bits_window(
                t, v, plan.bit, width, interp.config.register_flip_bits
            ),
        )
        return -1


class StuckAtFault(FaultModel):
    """One register bit forced to 0 or 1 for a window of cycles.

    The stuck polarity is drawn from the trial RNG; the bit is forced at
    injection and re-forced every :data:`STUCK_REAPPLY_EVERY` cycles for
    :data:`STUCK_WINDOW_CYCLES` cycles, so a program that rewrites the
    register keeps losing that bit — an intermittent fault rather than a
    transient one.  Re-application stops early when the owning frame
    returns or the binding is overwritten out of the frame.
    """

    name = "stuck_at"

    def inject(self, interp, plan, record, top_frame, next_index) -> int:
        stuck = interp._rng.randrange(2)
        slot = interp._pick_injection_slot()
        if slot is None:
            return -1
        live = _corrupt_slot(
            interp, record, slot,
            lambda t, v: force_bit(
                t, v, plan.bit, stuck, interp.config.register_flip_bits
            ),
        )
        if not live:
            return -1
        interp._stuck_fault = (
            slot.frame, slot.value_key, slot.value_obj, plan.bit, stuck,
            interp.cycle + STUCK_WINDOW_CYCLES,
        )
        return interp.cycle + STUCK_REAPPLY_EVERY

    def reapply(self, interp, plan) -> int:
        binding = interp._stuck_fault
        if binding is None:
            return -1
        frame, value_key, value_obj, bit, stuck, deadline = binding
        if interp.cycle > deadline or not frame.active:
            interp._stuck_fault = None
            return -1
        current = frame.values.get(value_key, _MISSING)
        if current is not _MISSING:
            frame.values[value_key] = force_bit(
                value_obj.type, current, bit, stuck,
                interp.config.register_flip_bits,
            )
        next_cycle = interp.cycle + STUCK_REAPPLY_EVERY
        if next_cycle > deadline:
            interp._stuck_fault = None
            return -1
        return next_cycle


class MemoryWordFault(FaultModel):
    """A single bit flip in a random *live* mapped 32-bit memory word.

    Bypasses the register file: candidate words are drawn over every mapped
    segment (globals and the stack) in deterministic segment order,
    modelling an upset in unprotected SRAM rather than the core.  Because
    the stack segment is overwhelmingly untouched zeros, a uniform draw
    would almost always hit dead space and mask; instead up to
    :data:`MEMORY_WORD_PROBES` candidates are rejection-sampled until one
    holds non-zero data (falling back to the first draw if none does) — a
    flip in an occupied word, which is the interesting case.  The plan's
    ``bit`` selects the bit within the word (modulo 32).
    """

    name = "memory_word"

    def inject(self, interp, plan, record, top_frame, next_index) -> int:
        memory = interp.memory
        if interp._occupancy is not None:
            # Occupancy map available: draw uniformly over occupied words —
            # no wasted probes, and a provably-dead hit triages to Masked.
            drawn = draw_occupied_word(interp, plan)
            if drawn is None:  # pragma: no cover - outputs are always live
                interp._triage_short_circuit()
                return -1
            seg, offset, dead = drawn
            before, after = memory.flip_word_bit(seg, offset, plan.bit)
            fill_memory_record(
                record, interp, top_frame, seg, offset, before, after, dead
            )
            if dead:
                triage_dead_memory(interp)
            return -1

        segments = memory.unique_segments()
        total_words = sum(seg.size // 4 for seg in segments)
        if total_words == 0:  # pragma: no cover - the stack is always mapped
            return -1

        def locate(word: int):
            for seg in segments:  # pragma: no branch - word < total_words
                words = seg.size // 4
                if word < words:
                    return seg, word * 4
                word -= words

        first = None
        seg = offset = None
        skips = 0
        for _ in range(MEMORY_WORD_PROBES):
            candidate = interp._rng.randrange(total_words)
            if first is None:
                first = candidate
            seg, offset = locate(candidate)
            if seg.data[offset:offset + 4] != b"\x00\x00\x00\x00":
                break
            skips += 1
        else:
            seg, offset = locate(first)
        if skips:
            # Wasted dead-region probes, visible when observability is on
            # (null instrument otherwise — results cannot depend on it).
            from ..obs.metrics import global_registry

            global_registry().counter("memfault.dead_region_skips").inc(skips)
        before, after = memory.flip_word_bit(seg, offset, plan.bit)
        record.landed = True
        record.was_live = True
        record.value_name = f"<mem:{seg.name}+{offset:#x}>"
        record.type_name = "i32"
        record.before = before
        record.after = after
        frame = top_frame if top_frame is not None else interp._frame
        if frame is not None:
            record.function = frame.function.name
        return -1


class MemTransientFault(FaultModel):
    """``mem_transient``: one bit flip in an *occupied* memory word.

    The particle-strike analogue of ``single_bit`` for the memory system.
    The target is drawn uniformly over words the golden run actually uses
    (the occupancy map from :mod:`repro.sim.memfaults`), so trials stop
    wasting draws on the vast empty address space; with no map
    (``REPRO_OCCUPANCY=0`` or fast path off at prepare time) it degrades to
    a blind uniform word.  Provably-dead hits triage to Masked with
    ``reason="dead_memory"``.
    """

    name = "mem_transient"

    def inject(self, interp, plan, record, top_frame, next_index) -> int:
        if interp._occupancy is not None:
            drawn = draw_occupied_word(interp, plan)
            if drawn is None:  # pragma: no cover - see draw_occupied_word
                interp._triage_short_circuit()
                return -1
            seg, offset, dead = drawn
        else:
            probed = probe_any_word(interp)
            if probed is None:  # pragma: no cover - memory always mapped
                interp._triage_short_circuit()
                return -1
            seg, offset = probed
            dead = False
        before, after = interp.memory.flip_word_bit(seg, offset, plan.bit)
        fill_memory_record(
            record, interp, top_frame, seg, offset, before, after, dead
        )
        if dead:
            triage_dead_memory(interp)
        return -1


class MemStuckAtFault(FaultModel):
    """``mem_stuck_at``: a memory bit forced to 0/1 with reapply semantics.

    Polarity comes first from the trial RNG (mirroring the register
    ``stuck_at`` draw order), then the target word.  The binding is
    re-forced every :data:`STUCK_REAPPLY_EVERY` cycles for
    :data:`STUCK_WINDOW_CYCLES` — approximating reapply-on-write: any store
    to the word is overridden within at most 16 cycles while the window
    lasts.  A provably-dead word (never read again) triages to Masked:
    re-forcing an unread word is invisible by the same argument as a
    transient dead hit.
    """

    name = "mem_stuck_at"

    def inject(self, interp, plan, record, top_frame, next_index) -> int:
        stuck = interp._rng.randrange(2)
        if interp._occupancy is not None:
            drawn = draw_occupied_word(interp, plan)
            if drawn is None:  # pragma: no cover - see draw_occupied_word
                interp._triage_short_circuit()
                return -1
            seg, offset, dead = drawn
        else:
            probed = probe_any_word(interp)
            if probed is None:  # pragma: no cover - memory always mapped
                interp._triage_short_circuit()
                return -1
            seg, offset = probed
            dead = False
        before, after = interp.memory.force_word_bit(
            seg, offset, plan.bit, stuck
        )
        fill_memory_record(
            record, interp, top_frame, seg, offset, before, after, dead
        )
        if dead:
            triage_dead_memory(interp)
            return -1
        interp._stuck_mem_fault = (
            seg, offset, plan.bit, stuck, interp.cycle + STUCK_WINDOW_CYCLES
        )
        return interp.cycle + STUCK_REAPPLY_EVERY

    def reapply(self, interp, plan) -> int:
        binding = interp._stuck_mem_fault
        if binding is None:
            return -1
        seg, offset, bit, stuck, deadline = binding
        if interp.cycle >= deadline:
            interp._stuck_mem_fault = None
            return -1
        interp.memory.force_word_bit(seg, offset, bit, stuck)
        return interp.cycle + STUCK_REAPPLY_EVERY


class CacheLineFault(FaultModel):
    """``cache_line``: corrupt a line resident in the modelled L1D.

    The struck line comes from the golden run's residency snapshot nearest
    the injection cycle.  A *data* strike flips one bit of one word the
    line caches (surfacing as a wrong-value load); a *tag* strike flips an
    address bit of the line's tag, modelled as the dirty line writing back
    over the aliased address — the original data survives (clean refetch
    from memory) while the aliased region takes the line's bytes.  Strikes
    that resolve to no mapped backing store (empty cache, line tail past
    its segment, alias into a guard gap) are absorbed by the miss path:
    the refetch is clean and the trial is provably Masked.
    """

    name = "cache_line"

    def inject(self, interp, plan, record, top_frame, next_index) -> int:
        occ = interp._occupancy
        if occ is None:
            # No residency model ⇒ treat the cache as empty: the strike
            # hits an invalid line and the refetch is clean.
            interp._triage_short_circuit()
            return -1
        lines = occ.resident_at(plan.cycle)
        rng = interp._rng
        if not lines:
            interp._triage_short_circuit()
            return -1
        line = lines[rng.randrange(len(lines))]
        tag_strike = rng.randrange(2)
        shift = occ.cache_line_shift
        memory = interp.memory
        if tag_strike:
            return self._strike_tag(
                interp, plan, record, top_frame, occ, memory, line, shift
            )
        word_in_line = rng.randrange((1 << shift) // 4)
        address = (line << shift) + word_in_line * 4
        seg = memory.segment_at(address)
        if seg is None or (address - seg.base) + 4 > seg.size:
            # The cached tail of a segment's last line backs no data.
            interp._triage_short_circuit()
            return -1
        offset = address - seg.base
        before, after = memory.flip_word_bit(seg, offset, plan.bit)
        word = occ.word_of(memory, seg, offset)
        dead = word is not None and occ.is_dead(word, plan.cycle)
        fill_memory_record(
            record, interp, top_frame, seg, offset, before, after, dead,
            prefix="cache",
        )
        if dead:
            triage_dead_memory(interp)
        return -1

    def _strike_tag(
        self, interp, plan, record, top_frame, occ, memory, line, shift
    ) -> int:
        line_bytes = 1 << shift
        src = line << shift
        dst = src ^ (1 << (shift + (plan.bit % 16)))
        seg = memory.segment_at(dst)
        if seg is None:
            # Aliased address is unmapped: the misdirected writeback is
            # dropped and the original address refetches clean.
            interp._triage_short_circuit()
            return -1
        offset = dst - seg.base
        end = min(offset + line_bytes, seg.size)
        data = bytearray(end - offset)
        src_seg = memory.segment_at(src)
        if src_seg is not None:
            s_off = src - src_seg.base
            avail = max(0, min(len(data), src_seg.size - s_off))
            data[:avail] = src_seg.data[s_off:s_off + avail]
        before = int.from_bytes(seg.data[offset:offset + 4], "little")
        changed = bytes(seg.data[offset:end]) != bytes(data)
        if interp._undo_log is not None:
            interp._undo_log.append(
                ("bytes", seg, offset, bytes(seg.data[offset:end]))
            )
        seg.data[offset:end] = data
        after = int.from_bytes(seg.data[offset:offset + 4], "little")
        dead = not changed
        if changed:
            # The whole region was overwritten: dead only when *every*
            # touched word is provably never read again.
            touched = [
                occ.word_of(memory, seg, o) for o in range(offset, end, 4)
            ]
            dead = all(
                w is not None and occ.is_dead(w, plan.cycle) for w in touched
            )
        fill_memory_record(
            record, interp, top_frame, seg, offset, before, after, dead,
            prefix="cache:tag",
        )
        if dead:
            triage_dead_memory(interp)
        return -1


class StackFrameFault(FaultModel):
    """``stack_frame``: one bit flip in the active frame's spill area.

    The target word is uniform over ``[top_frame.stack_mark, sp)`` — the
    bytes the current frame has alloca'd.  Leaf frames with no spills widen
    to the whole active stack ``[stack_base, sp)``, and with no active stack
    bytes at all (fully mem2reg-promoted code never moves ``sp``) the strike
    lands anywhere in the stack segment — unallocated stack, which the
    occupancy map proves dead (triaged to Masked) unless some later frame
    genuinely reads it.  Deadness comes from the map when present.
    """

    name = "stack_frame"

    def inject(self, interp, plan, record, top_frame, next_index) -> int:
        memory = interp.memory
        sp = interp._stack_sp
        frame = top_frame if top_frame is not None else interp._frame
        stack_seg = memory.segment_at(sp - 4) or memory.segment_at(sp)
        if stack_seg is None:  # pragma: no cover - stack mapped in _setup_run
            interp._triage_short_circuit()
            return -1
        lo = frame.stack_mark if frame is not None else stack_seg.base
        if sp - lo < 4:
            lo = stack_seg.base
        words = (sp - lo) >> 2
        if words <= 0:
            words = stack_seg.size >> 2
            lo = stack_seg.base
        if words <= 0:  # pragma: no cover - stack segments are never empty
            interp._triage_short_circuit()
            return -1
        address = lo + interp._rng.randrange(words) * 4
        offset = address - stack_seg.base
        before, after = memory.flip_word_bit(stack_seg, offset, plan.bit)
        occ = interp._occupancy
        dead = False
        if occ is not None:
            word = occ.word_of(memory, stack_seg, offset)
            dead = word is not None and occ.is_dead(word, plan.cycle)
        fill_memory_record(
            record, interp, top_frame, stack_seg, offset, before, after, dead,
            prefix="stack",
        )
        if dead:
            triage_dead_memory(interp)
        return -1


#: name -> concrete model instance (insertion order is the canonical listing
#: order used by the chaos mix and the CLIs; the register models come first,
#: the PR-8 memory-hierarchy models after, so older plan streams are stable)
FAULT_MODELS = {
    model.name: model
    for model in (
        SingleBitFault(),
        DoubleBitFault(),
        BurstFault(),
        StuckAtFault(),
        MemoryWordFault(),
        MemTransientFault(),
        MemStuckAtFault(),
        CacheLineFault(),
        StackFrameFault(),
    )
}

#: the concrete model names, in canonical order
CONCRETE_FAULT_MODELS = tuple(FAULT_MODELS)

#: models whose dead-target proofs make triage short-circuits sound: the
#: single-register flip (next-use liveness) and the memory-hierarchy models
#: (occupancy-map last-read intervals).  Multi-site and persistent register
#: models keep the full run.
TRIAGEABLE_FAULT_MODELS = frozenset({
    "single_bit", "memory_word", "mem_transient", "mem_stuck_at",
    "cache_line", "stack_frame",
})

#: plan-level pseudo-model: each trial draws a concrete model from the
#: campaign RNG (see :func:`repro.faultinjection.campaign.draw_plans`)
CHAOS_FAULT_MODEL = "chaos"


def get_fault_model(name: str) -> FaultModel:
    """The concrete :class:`FaultModel` registered under ``name``."""
    try:
        return FAULT_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault model {name!r} (known: "
            f"{', '.join(CONCRETE_FAULT_MODELS)})"
        ) from None
