"""Approximate out-of-order timing model.

Consumes the retired instruction stream from the interpreter and estimates
execution cycles for the Table II core: dependence-limited issue with a finite
issue width, a finite reorder buffer, per-opcode latencies, an L1-D cache, and
a branch predictor.

The model is a dataflow lower bound with structural constraints — the standard
"ideal fetch, finite width/ROB" approximation:

* each retired instruction issues no earlier than its operands are ready;
* no more than ``issue_width`` instructions issue per cycle (tracked as a
  monotonic front);
* an instruction cannot issue before the instruction ``rob_entries`` older
  than it has completed (ROB occupancy);
* loads add the miss penalty on an L1-D miss;
* mispredicted conditional branches stall the issue front by the mispredict
  penalty (flush + refill).

Relative runtimes between an original binary and its protected variants are
what the paper's Figure 12 reports, and those are preserved: shadow chains add
issue-bandwidth pressure (mostly hidden by the OoO window), while checks add
compare+branch work on the critical path.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..ir.instructions import (
    BinaryOp,
    Call,
    Cast,
    CondBr,
    FCmp,
    GuardEq,
    GuardRange,
    GuardValues,
    Instruction,
    IntrinsicCall,
    Load,
    Store,
)
from .cache import BranchPredictor, SetAssociativeCache
from .config import SimConfig


class TimingModel:
    """Online cycle estimator attached to an interpreter run."""

    def __init__(self, config: Optional[SimConfig] = None) -> None:
        self.config = config or SimConfig()
        self.dcache = SetAssociativeCache(self.config.l1d)
        self.branch_predictor = BranchPredictor()
        self._latencies = self.config.latencies
        self._slot_costs = self.config.slot_costs
        self.reset()

    def reset(self) -> None:
        #: completion time (cycles, float) per live SSA value id
        self._ready: dict = {}
        #: total issue-slot units consumed (the bandwidth floor is slots/width)
        self._slots = 0.0
        #: no micro-op may issue before this time (mispredict flush point)
        self._serial_gate = 0.0
        #: completion times of the last `rob_entries` instructions
        self._rob: deque = deque()
        #: issue times of the last `issue_queue` micro-ops (scheduler window)
        self._iq: deque = deque()
        self._last_completion = 0.0
        self.retired = 0
        self.dcache.reset()
        self.branch_predictor.reset()

    # -- core issue mechanics ---------------------------------------------------

    def _issue(self, earliest: float, slots: int, latency: float) -> float:
        """Issue a micro-op no earlier than ``earliest``; returns completion time.

        The issue time is the max of four constraints:

        * operand readiness (``earliest``),
        * the aggregate bandwidth floor (total slots so far / issue width) —
          out-of-order back-filling of stall gaps is allowed, but total
          throughput never exceeds the width,
        * the scheduler window (cannot issue before the micro-op
          ``issue_queue`` older issued) and the ROB (cannot issue before the
          micro-op ``rob_entries`` older completed),
        * the serial gate left behind by the last mispredict flush.
        """
        cfg = self.config
        if len(self._rob) >= cfg.rob_entries:
            oldest_done = self._rob.popleft()
            if oldest_done > earliest:
                earliest = oldest_done
        if len(self._iq) >= cfg.issue_queue:
            window_gate = self._iq.popleft()
            if window_gate > earliest:
                earliest = window_gate
        if self._serial_gate > earliest:
            earliest = self._serial_gate

        width_floor = self._slots / cfg.issue_width
        issue_at = earliest if earliest > width_floor else width_floor
        self._slots += slots

        done = issue_at + latency
        self._iq.append(issue_at)
        self._rob.append(done)
        if done > self._last_completion:
            self._last_completion = done
        self.retired += 1
        return done

    def _operands_ready(self, instr: Instruction) -> float:
        ready = 0.0
        get = self._ready.get
        for op in instr.operands:
            t = get(id(op))
            if t is not None and t > ready:
                ready = t
        return ready

    # -- public observation API (called by the interpreter) -----------------------

    def observe(self, instr: Instruction) -> None:
        """Plain ALU/cast/compare/phi/etc. retirement."""
        latency = self._latencies.get(instr.opcode, 1)
        slots = 1
        if isinstance(instr, IntrinsicCall):
            latency = self._latencies.get(instr.intrinsic, 10)
            slots = self._slot_costs.get("intrinsic", 4)
        done = self._issue(self._operands_ready(instr), slots, latency)
        if instr.has_result:
            self._ready[id(instr)] = done

    def observe_load(self, instr: Load, address: int) -> None:
        latency = self._latencies.get("load", 2)
        if not self.dcache.access(address):
            latency += self.config.miss_penalty
        slots = self._slot_costs.get("load", 2)
        done = self._issue(self._operands_ready(instr), slots, latency)
        self._ready[id(instr)] = done

    def observe_store(self, instr: Store, address: int) -> None:
        # Stores retire through the store buffer; a miss is buffered and does
        # not stall retirement, but it still occupies the cache.
        self.dcache.access(address)
        self._issue(self._operands_ready(instr), self._slot_costs.get("store", 2), 1)

    def observe_branch(self, instr: CondBr, taken: bool) -> None:
        ready = self._operands_ready(instr)
        done = self._issue(ready, 1, 1)
        if not self.branch_predictor.predict_and_update(id(instr), taken):
            # Flush: nothing issues until the branch resolves + refill delay,
            # and the bandwidth of those dead cycles is destroyed.
            stall_until = done + self.config.mispredict_penalty
            if stall_until > self._serial_gate:
                self._serial_gate = stall_until
            floor_slots = stall_until * self.config.issue_width
            if floor_slots > self._slots:
                self._slots = floor_slots
        elif taken:
            self._end_fetch_group()

    def observe_jump(self, instr) -> None:
        """Unconditional branch: 1 slot, and it ends the fetch group."""
        self._issue(self._operands_ready(instr), 1, 1)
        self._end_fetch_group()

    def _end_fetch_group(self) -> None:
        """A taken branch ends the fetch group on a narrow front end: the
        rest of the current fetch cycle's slots are wasted.  This keeps tight
        loops throughput-bound, so duplicated work cannot hide entirely in
        front-end slack."""
        width = self.config.issue_width
        import math as _math

        self._slots = _math.ceil(self._slots / width) * width

    def observe_guard(self, instr) -> None:
        if isinstance(instr, GuardEq):
            slots = self._slot_costs.get("guard_eq", 2)
        elif isinstance(instr, GuardRange):
            slots = self._slot_costs.get("guard_range", 4)
        elif isinstance(instr, GuardValues):
            key = "guard_values_1" if len(instr.expected) == 1 else "guard_values_2"
            slots = self._slot_costs.get(key, 2)
        else:  # pragma: no cover - only guards reach here
            slots = 2
        # Guards are compare+branch sequences: the branches are
        # highly predictable (they fail essentially never), so latency is 1
        # but they consume issue bandwidth.
        self._issue(self._operands_ready(instr), slots, 1)

    def observe_call(self, instr: Call) -> None:
        self._issue(self._operands_ready(instr), self._slot_costs.get("call", 2), 2)

    def observe_return(self, call_instr: Optional[Call], ret_value_ready: float = 0.0) -> None:
        if call_instr is not None and call_instr.has_result:
            current = self._ready.get(id(call_instr), 0.0)
            self._ready[id(call_instr)] = max(current, ret_value_ready, self._front)

    def value_ready_time(self, value) -> float:
        return self._ready.get(id(value), 0.0)

    def observe_phi(self, phi: Instruction, chosen_value) -> None:
        """Phis are resolved at register rename: zero issue cost, and the phi
        result becomes ready when the *selected* incoming value is."""
        self._ready[id(phi)] = self._ready.get(id(chosen_value), 0.0)

    # -- results ----------------------------------------------------------------------

    @property
    def cycles(self) -> float:
        """Total estimated cycles for everything observed so far."""
        return max(
            self._slots / self.config.issue_width,
            self._last_completion,
            self._serial_gate,
        )
