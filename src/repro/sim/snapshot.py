"""Golden-run snapshots, fast-forward restore, and dead-flip triage.

Every injection trial re-simulates the workload from cycle 0, yet everything
before the injection cycle is fault-free and identical to the golden run.
This module removes that redundancy in two stages:

* **Snapshots.**  One instrumented golden run (``prepare`` drives it) captures
  periodic deep copies of the full interpreter state — memory segments, call
  stack and frames, the lazy register-file write log, cycle and guard
  counters — at a configurable cadence.  Each trial then restores the nearest
  snapshot *strictly before* its injection cycle and replays only the delta.
  Restore is bit-invisible by construction: the restored state is exactly the
  state a from-scratch run reaches at that cycle, so results, traps, guard
  statistics, and obs event logs stay byte-identical (differential tests
  enforce this), and campaign cache keys / checkpoint identity are untouched.

* **Dead-flip triage.**  After the deterministic register pick + flip, a
  static next-use/overwrite liveness check (:func:`value_dead_after`) can
  prove the flipped binding will never be read.  Such trials are short-
  circuited straight to Masked via :class:`TriageMasked` — skipping the whole
  post-injection run and the output comparison — which is sound because a
  provably-dead flip leaves execution identical to the golden run (which
  completed, trap-free, within any trial's instruction budget).

Configuration mirrors the fast path's escape hatches:

* ``REPRO_SNAPSHOT=0`` / ``CampaignConfig.snapshot_every=0`` disables
  snapshotting entirely;
* ``REPRO_SNAPSHOT_EVERY=N`` / ``--snapshot-every N`` sets an explicit
  cadence; the default (:data:`AUTO`) derives one from the golden length;
* ``REPRO_TRIAGE=0`` / ``CampaignConfig.triage=False`` disables triage.
"""

from __future__ import annotations

import bisect
import os
import random
from typing import Dict, List, Optional, Tuple

from ..analysis.liveness import LivenessInfo
from ..ir.basicblock import BasicBlock
from ..ir.instructions import Phi
from ..ir.values import Value
from ..obs import trace as trace_mod
from .events import GuardStats
from .memory import SEGMENT_SHIFT, SEGMENT_STRIDE, Memory, Segment
from .regfile import RegisterFile

__all__ = [
    "AUTO",
    "Snapshot",
    "SnapshotRecorder",
    "SnapshotStore",
    "TriageMasked",
    "auto_cadence",
    "resolve_snapshot_every",
    "resolve_triage",
    "value_dead_after",
]

_FALSEY = ("0", "off", "false", "no")

#: sentinel cadence: derive one from the golden instruction count
AUTO = -1

#: auto mode aims for about this many snapshots per golden run
_TARGET_SNAPSHOTS = 32
#: auto mode never snapshots more often than this (amortisation floor)
_MIN_AUTO_EVERY = 1_000
#: auto mode skips runs too short for restore to pay for the capture run
_MIN_AUTO_GOLDEN = 4_000
#: hard cap on stored snapshots (memory bound; cadence is rounded up to fit)
MAX_SNAPSHOTS = 512


class TriageMasked(Exception):
    """Injection proven dead at flip time; the trial is Masked.

    Deliberately *not* a :class:`~repro.sim.events.SimTrap`: trap handlers
    re-time and classify traps, while this is a verdict, not an event — it
    must propagate straight to the campaign layer.  ``reason`` tells the
    campaign which triage path fired: ``"register"`` for dead-flip register
    triage, ``"dead_memory"`` for occupancy-map dead-region hits.
    """

    def __init__(self, reason: str = "register") -> None:
        super().__init__(reason)
        self.reason = reason


# ---------------------------------------------------------------------------
# configuration resolution (mirrors REPRO_FASTPATH / resolve_obs_config)
# ---------------------------------------------------------------------------


def resolve_snapshot_every(value: Optional[int]) -> int:
    """Resolve a config cadence against the environment.

    An explicit config value (0 = off, :data:`AUTO`, or a positive cadence)
    wins; ``None`` falls back to ``REPRO_SNAPSHOT`` (falsey disables) and
    ``REPRO_SNAPSHOT_EVERY`` (explicit cadence), defaulting to :data:`AUTO`.
    """
    if value is not None:
        return value
    if os.environ.get("REPRO_SNAPSHOT", "1").strip().lower() in _FALSEY:
        return 0
    explicit = os.environ.get("REPRO_SNAPSHOT_EVERY", "").strip()
    if explicit:
        try:
            return max(0, int(explicit))
        except ValueError:
            return AUTO
    return AUTO


def resolve_triage(value: Optional[bool]) -> bool:
    """Explicit config wins; else ``REPRO_TRIAGE`` (default on)."""
    if value is not None:
        return bool(value)
    return os.environ.get("REPRO_TRIAGE", "1").strip().lower() not in _FALSEY


def auto_cadence(golden_instructions: int) -> Optional[int]:
    """Snapshot cadence for a golden run of the given length, or None when
    the run is too short for snapshotting to pay off."""
    if golden_instructions < _MIN_AUTO_GOLDEN:
        return None
    return max(_MIN_AUTO_EVERY, golden_instructions // _TARGET_SNAPSHOTS)


# ---------------------------------------------------------------------------
# dead-flip triage
# ---------------------------------------------------------------------------


def value_dead_after(
    liveness: LivenessInfo, block: BasicBlock, next_index: int, value: Value
) -> bool:
    """Will the current binding of ``value`` ever be read again?

    ``next_index`` is the position in ``block`` of the next instruction to
    execute.  The binding is *dead* (returns True) when no instruction from
    ``next_index`` onwards fetches it before it is overwritten:

    * if ``value``'s own definition sits at or after ``next_index`` in this
      block, straight-line execution re-runs it and overwrites the binding —
      only the instructions strictly before that position can read the old
      value, and block-boundary liveness is irrelevant;
    * otherwise the binding survives the block, so it is live iff some later
      instruction in the block uses it or it is live-out of the block
      (live-out folds in successor-phi edge fetches, including self-loops).

    Phi instructions never appear in the scanned range (``next_index`` is
    always past the phi prefix at every injection site) and their edge
    fetches are accounted for via live-out, but they are skipped defensively.
    Only soundness matters here: returning False (live) for a dead value
    costs a full trial run, returning True for a live one would corrupt the
    campaign — so every approximation errs towards live.
    """
    instrs = block.instructions
    limit = len(instrs)
    check_live_out = True
    if getattr(value, "parent", None) is block:
        for pos in range(next_index, limit):
            if instrs[pos] is value:
                # Re-definition ahead in this block: reads can only happen
                # before it, and the overwritten binding cannot be live-out.
                limit = pos
                check_live_out = False
                break
    for pos in range(next_index, limit):
        instr = instrs[pos]
        if instr.__class__ is Phi:
            continue
        for op in instr.operands:
            if op is value:
                return False
    if check_live_out and value in liveness.live_out.get(block, ()):
        return False
    return True


# ---------------------------------------------------------------------------
# snapshots
# ---------------------------------------------------------------------------


def _copy_segment(seg: Segment) -> Segment:
    """Deep-copy a segment without re-zeroing its backing store."""
    clone = Segment.__new__(Segment)
    clone.name = seg.name
    clone.base = seg.base
    clone.size = seg.size
    clone.data = bytearray(seg.data)
    return clone


def _clone_frame(template, values: Dict) -> object:
    """Instantiate a frame identical to ``template`` with its own ``values``."""
    frame = template.__class__(
        template.function, template.call_instr, template.stack_mark
    )
    frame.values = values
    frame.block = template.block
    frame.prev_block = template.prev_block
    frame.index = template.index
    frame.active = template.active
    frame.ret_cb = template.ret_cb
    frame.ret_idx = template.ret_idx
    frame.ret_has_result = template.ret_has_result
    frame.ret_key = template.ret_key
    return frame


class _LazyRestoredLog(list):
    """Register-file write log seeded from a snapshot, resolved on demand.

    ``Snapshot._install`` used to rebuild the captured log eagerly: one
    fresh ``(frame, producer)`` tuple per captured entry, per trial — paid
    even by trials that never read those entries because enough post-restore
    writes had already pushed them out of the register file.  This subclass
    keeps the captured ``rf_entries`` as an *unresolved prefix*: appends
    land in the real list (the suffix), ``len`` counts both parts, and only
    operations that actually reach into the prefix (full iteration, slices
    or deletes crossing into it) materialize the per-trial tuples.  The two
    hot consumers stay lazy:

    * ``log[start:]`` in ``_materialize_regfile`` skips resolution whenever
      ``start`` lands at or past the prefix — i.e. once writes since the
      restore reach the register-file capacity;
    * ``del log[:drop]`` (the capture-time trim) drops entirely within the
      prefix by slicing the *shared* captured list — no per-trial copy.
    """

    __slots__ = ("_entries", "_frames")

    def __init__(self, rf_entries, frames) -> None:
        list.__init__(self)
        self._entries = rf_entries
        self._frames = frames

    def _pending(self) -> int:
        return len(self._entries) if self._entries is not None else 0

    def _resolve(self) -> None:
        entries = self._entries
        if entries is None:
            return
        frames = self._frames
        self._entries = self._frames = None
        self[:0] = [
            (entry if entry.__class__ is not int else frames[entry], obj)
            for entry, obj in entries
        ]

    def __len__(self) -> int:
        return self._pending() + list.__len__(self)

    def __iter__(self):
        self._resolve()
        return list.__iter__(self)

    def __getitem__(self, key):
        if isinstance(key, slice) and key.step in (None, 1) and \
                key.stop is None:
            start = key.start or 0
            pending = self._pending()
            if start >= pending:
                return list.__getitem__(self, slice(start - pending, None))
        self._resolve()
        return list.__getitem__(self, key)

    def __delitem__(self, key) -> None:
        if isinstance(key, slice) and key.step in (None, 1) and \
                key.start in (None, 0) and isinstance(key.stop, int) \
                and key.stop >= 0:
            pending = self._pending()
            if key.stop >= pending:
                self._entries = self._frames = None
                list.__delitem__(self, slice(0, key.stop - pending))
            else:
                self._entries = self._entries[key.stop:]
            return
        self._resolve()
        list.__delitem__(self, key)


class Snapshot:
    """Deep copy of one fast-path interpreter state at a loop-top boundary.

    ``cycle`` is the number of retired instructions; ``cb``/``idx`` name the
    compiled block and step index to resume at (CompiledBlock objects are
    shared module-level caches, valid in every interpreter of the same
    module).  Register-file history is stored as the lazy write log's tail:
    ``rf_base`` older writes were dropped (they can no longer occupy a slot),
    and each kept entry references either a stack frame by position or a
    shared inactive stub (the frame had already returned — by construction
    nothing ever mutates such a frame).
    """

    __slots__ = (
        "cycle", "cb", "idx", "frames", "frame_values", "rf_entries",
        "rf_base", "segments", "global_index", "global_addr", "next_index",
        "stack_sp", "stack_limit", "guard_evaluations", "guard_failures",
    )

    @classmethod
    def capture(cls, interp, cb, idx: int, cycle: int) -> "Snapshot":
        snap = cls.__new__(cls)
        snap.cycle = cycle
        snap.cb = cb
        snap.idx = idx

        frames = interp._frames
        snap.frames = [_clone_frame(f, {}) for f in frames]
        snap.frame_values = [dict(f.values) for f in frames]

        position = {id(f): i for i, f in enumerate(frames)}
        stubs: Dict[int, object] = {}
        entries: List[Tuple[object, object]] = []
        for frame, obj in interp._rf_log:
            pos = position.get(id(frame))
            if pos is None:
                stub = stubs.get(id(frame))
                if stub is None:
                    stub = _clone_frame(frame, {})
                    stub.active = False
                    stubs[id(frame)] = stub
                entries.append((stub, obj))
            else:
                entries.append((pos, obj))
        snap.rf_entries = entries
        snap.rf_base = interp._rf_base

        memory = interp.memory
        segments: List[Segment] = []
        seen: Dict[int, int] = {}
        for seg in memory._segments.values():
            if id(seg) not in seen:
                seen[id(seg)] = len(segments)
                segments.append(_copy_segment(seg))
        snap.segments = segments
        snap.global_index = [
            (name, seen[id(seg)])
            for name, seg in interp.global_segments.items()
        ]
        snap.global_addr = dict(interp._global_addr)
        snap.next_index = memory._next_index

        snap.stack_sp = interp._stack_sp
        snap.stack_limit = interp._stack_limit
        snap.guard_evaluations = interp.guard_stats.evaluations
        snap.guard_failures = dict(interp.guard_stats.failures_by_guard)
        return snap

    def install(self, interp, injection) -> Tuple[object, int, int]:
        """Load this snapshot into ``interp`` as the state of a pending-
        injection run; returns ``(cb, idx, cycle)`` to resume the loop at.

        Every mutable structure is cloned per trial (trials mutate memory,
        frames, and the write log), so a snapshot can seed any number of
        trials, concurrently across processes and serially within one.
        """
        with trace_mod.current().span(
            "restore", cat="trial", cycles=self.cycle
        ):
            return self._install(interp, injection)

    def _install(self, interp, injection) -> Tuple[object, int, int]:
        frames = [
            _clone_frame(t, dict(v))
            for t, v in zip(self.frames, self.frame_values)
        ]
        interp._frames = frames
        interp._frame = frames[-1]

        memory = Memory()
        segments = [_copy_segment(s) for s in self.segments]
        for seg in segments:
            span = (seg.size + SEGMENT_STRIDE - 1) >> SEGMENT_SHIFT
            start = seg.base >> SEGMENT_SHIFT
            for i in range(start, start + span):
                memory._segments[i] = seg
        memory._next_index = self.next_index
        interp.memory = memory
        interp._mem_locate = memory._locate
        interp._mem_store_locate = memory._locate
        interp.global_segments = {
            name: segments[i] for name, i in self.global_index
        }
        interp._global_addr = dict(self.global_addr)
        interp._stack_sp = self.stack_sp
        interp._stack_limit = self.stack_limit

        interp._rf_log = _LazyRestoredLog(self.rf_entries, frames)
        interp._rf_base = self.rf_base
        interp._regfile = RegisterFile(interp.config.phys_int_registers)
        interp._rng = random.Random(injection.seed)

        interp.cycle = self.cycle
        interp.guard_stats = GuardStats(
            evaluations=self.guard_evaluations,
            failures_by_guard=dict(self.guard_failures),
        )
        interp.injection_record = None
        interp._guard_armed = False
        interp._pending_control_fault = False
        interp._control_fault_fired = False
        interp._ret_value = None
        interp._resume_cb = None
        interp._resume_idx = 0
        interp._sbk = 0
        return self.cb, self.idx, self.cycle


class SnapshotStore:
    """Snapshots of one golden run, ordered by cycle."""

    def __init__(self) -> None:
        self.snapshots: List[Snapshot] = []
        self._cycles: List[int] = []

    def add(self, snapshot: Snapshot) -> None:
        self.snapshots.append(snapshot)
        self._cycles.append(snapshot.cycle)

    def __len__(self) -> int:
        return len(self.snapshots)

    def nearest(self, inject_cycle: int) -> Optional[Snapshot]:
        """Latest snapshot strictly before ``inject_cycle``.

        An injection at cycle C fires at the state after C-1 retired
        instructions, so a snapshot taken *at* C is already too late — the
        usable prefix ends at C-1.
        """
        pos = bisect.bisect_right(self._cycles, inject_cycle - 1)
        if pos == 0:
            return None
        return self.snapshots[pos - 1]


class SnapshotRecorder:
    """Capture hook handed to a golden run (``interp.run(capture=...)``).

    The fast-path loop compares ``next_due`` against the cycle counter at
    each loop top (one integer comparison of overhead) and calls
    :meth:`take` when due.  Snapshots may land a superblock past the nominal
    cadence — harmless, since restore uses the actual stored cycle.
    """

    def __init__(self, every: int, limit: int = MAX_SNAPSHOTS) -> None:
        if every <= 0:
            raise ValueError("snapshot cadence must be positive")
        self.every = every
        self.limit = limit
        self.store = SnapshotStore()
        self.next_due = every

    def take(self, interp, cb, idx: int, cycle: int) -> int:
        """Capture now; returns the next due cycle (huge when full)."""
        with trace_mod.current().span(
            "snapshot.take", cat="prepare", cycle=cycle
        ):
            return self._take(interp, cb, idx, cycle)

    def _take(self, interp, cb, idx: int, cycle: int) -> int:
        log = interp._rf_log
        cap = interp.config.phys_int_registers
        if len(log) > cap:
            # Only the newest `cap` writes can still occupy a register slot;
            # trim the log so capture cost and snapshot size stay bounded.
            drop = len(log) - cap
            interp._rf_base += drop
            del log[:drop]
        self.store.add(Snapshot.capture(interp, cb, idx, cycle))
        if len(self.store) >= self.limit:
            self.next_due = 1 << 62
        else:
            self.next_due = cycle + self.every
        return self.next_due
