"""Batched lane-parallel trial execution: one golden sweep, many verdicts.

A fault-injection campaign replays the same instruction stream once per
trial, and PR 5's triage data shows the common case ends at the injection
instant: the flip lands dead (or lands nowhere) and the trial is Masked
without any post-injection execution.  For those trials the *entire* cost
is the shared golden prefix — which every trial of a batch replays
identically.

The batched backend amortises that prefix.  A batch of trials becomes
*lanes* of **sweep runs**: the lanes are grouped by nearest PR 5 snapshot,
and each group shares one fast-path execution of the golden stream that
fast-forwards to the group's snapshot and stops at each lane's planned
cycle.  Every stop performs that lane's injection against the live
architectural state and immediately classifies it:

* **Masked in place** — the injection proves dead at the strike instant
  (dead register flip, dead memory region, empty register file).  The lane
  is finished; the strike is rolled back byte-exactly via the undo journal
  (``Interpreter._undo_log`` / ``Memory._journal``) and the sweep continues
  along the *golden* path to the next lane.
* **Diverged** — the flip lands on live state, so post-injection execution
  would differ from the golden stream.  The lane is *peeled*: rolled back,
  marked with its divergence reason, and handed to the existing scalar
  fastpath (which restores from the same snapshot) for the full run.
* **Continued** — the *final* lane of a group needs no rollback: nothing
  after it wants the golden state, so its injection commits through the
  scalar ``_do_injection`` machinery and the sweep run simply *becomes*
  that lane's scalar trial, post-injection execution, classification and
  all.  This is what makes a sweep at worst cost-neutral: its replay is
  exactly the replay the final lane's scalar trial would have paid, and
  every earlier verdict rides along free.

Because each lane's verdict uses exactly the scalar path's RNG seeding,
slot-pick sequence, fault-model strike, and triage proof — against
architectural state that is bit-identical to what the scalar trial sees at
the same cycle — batched results, obs logs, cache keys, and checkpoints are
**byte-identical** to the scalar fastpath for every fault model and any
jobs count (differential tests pin this).  Batch composition is immaterial:
a lane's verdict never depends on which lanes share its sweep, which is
what lets serial and parallel chunking batch differently yet agree byte
for byte.

Escape hatches: any unexpected exception inside a sweep before the final
lane commits peels that window's lanes to the scalar path (correct by
construction, slower), as does a missing compiled fast path.  Lanes whose
fault model has no sound strike-time verdict (``double_bit``, ``burst``,
register ``stuck_at``, control faults, or memory models without an
occupancy map) are peeled up front.

Enabled via ``CampaignConfig.batch`` / ``--batch`` / ``REPRO_BATCH`` (see
:mod:`repro.faultinjection.campaign`); ``docs/PERFORMANCE.md`` has the
layer-by-layer performance story.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import trace as trace_mod
from .faults import (
    TRIAGEABLE_FAULT_MODELS,
    InjectionPlan,
    InjectionRecord,
    get_fault_model,
)
from .interpreter import Interpreter
from .regfile import RegisterFile
from .snapshot import TriageMasked

__all__ = [
    "BatchedSweep",
    "Lane",
    "SweepInfo",
    "lane_eligible",
    "sweep_batch",
]


class Lane:
    """One trial riding a batched sweep."""

    __slots__ = ("index", "plan", "masked", "reason", "record")

    def __init__(self, index: int, plan: InjectionPlan) -> None:
        self.index = index
        self.plan = plan
        #: True when the strike proved dead at injection time (verdict:
        #: Masked, identical to the scalar triage short-circuit)
        self.masked = False
        #: triage reason ("register" / "dead_memory") for masked lanes,
        #: "continued" for the committed final lane, a divergence reason
        #: ("live_strike" / "inject_error") for peeled ones
        self.reason = ""
        #: the injection record, filled exactly as a scalar trial would
        self.record: Optional[InjectionRecord] = None


class SweepInfo:
    """What one batch's sweeps did (feeds campaign stats and the obs
    sidecar)."""

    __slots__ = ("lanes", "masked", "vector_cycles", "fallback", "divergence")

    def __init__(self) -> None:
        self.lanes = 0
        #: lanes whose Masked verdict was decided in-sweep (continued final
        #: lanes that triage-masked included)
        self.masked = 0
        #: golden cycles the sweeps executed in lock-step (restore point to
        #: final-lane commit, summed over the batch's window sweeps)
        self.vector_cycles = 0
        #: True when a sweep aborted and peeled its lanes
        self.fallback = False
        #: peel/divergence reason → lane count (``continued`` = final lanes
        #: that committed live in-sweep; every non-masked lane lands here)
        self.divergence: Dict[str, int] = {}


def lane_eligible(plan: InjectionPlan, occupancy) -> bool:
    """Can this plan's verdict be decided at strike time inside a sweep?

    Exactly the models whose dead-strike proof is sound (the triageable
    set); the memory-hierarchy members additionally need the golden-run
    occupancy map (without it their dead-region proof degrades to probing,
    which has no verdict).  Everything else peels to the scalar path.
    """
    return (
        plan.kind == "register"
        and plan.model in TRIAGEABLE_FAULT_MODELS
        and (plan.model == "single_bit" or occupancy is not None)
    )


class BatchedSweep(Interpreter):
    """Interpreter variant that drives one golden run through many lanes.

    Reuses the scalar fast path's injection plumbing wholesale: the compiled
    loop stops at ``inject_cycle`` and calls :meth:`_do_injection`, which
    here processes every lane due at the current cycle and returns the next
    lane's cycle (the loop's pending-injection check does the scheduling).
    The *final* lane is not swept — its injection is delegated to the
    scalar ``Interpreter._do_injection`` and commits, at which point this
    run stops being a sweep and becomes that lane's ordinary scalar trial
    (guards armed, containment active, stuck-fault refires dispatched on
    the lane's real plan).

    Deviations from the scalar interpreter while sweeping:

    * earlier lanes never fill ``self.injection_record`` or arm the guards —
      the sweep stays a golden run between strikes, so guards cannot raise
      and containment stays out of the way until the final commit;
    * ``_materialize_regfile`` is non-destructive: each stop materializes a
      fresh register file from the (trimmed, never cleared) lazy write log,
      so later stops see the identical slot/tag/cursor state the scalar
      path would;
    * register-file tracking stays on until the final commit (the run loop's
      untracked swap keys on ``injection_record``, which the rolled-back
      strikes never set), so every stop can materialize the scalar-identical
      register file; the post-commit tail runs untracked, exactly like a
      scalar trial's post-injection execution.
    """

    def __init__(self, module, lanes: Sequence[Lane], **kwargs) -> None:
        super().__init__(module, **kwargs)
        #: lanes in (cycle, index) order; _lane_pos is the first unprocessed
        self._lanes = list(lanes)
        self._lane_pos = 0
        #: the committed final lane's plan (refire dispatch target)
        self._live_plan: Optional[InjectionPlan] = None

    def run(self, entry: str = "main", args: Sequence[object] = (),
            inputs=None, injection=None, **kwargs):
        """Swap the (final-lane) injection plan for a first-stop pseudo-plan.

        The scalar trial driver passes the final lane's plan; the loop's
        pending-injection check must instead stop at the *earliest* lane.
        The pseudo-plan only schedules that first stop — `_do_injection`
        ignores it in favour of the real lane plans — and the per-lane RNG
        is re-seeded at each strike, so its bit/seed are immaterial.
        """
        first = self._lanes[0].plan
        pseudo = InjectionPlan(
            cycle=first.cycle, bit=0, seed=0, model=first.model
        )
        return super().run(
            entry=entry, args=args, inputs=inputs, injection=pseudo, **kwargs
        )

    # -- injection scheduling ------------------------------------------------

    def _do_injection(self, plan, top_frame=None, next_index: int = -1) -> int:
        """Strike every lane due at the current cycle; schedule the next.

        ``plan`` is the sweep's pseudo-plan and is ignored — the real plans
        live in the lanes.  The final lane commits via the scalar
        superclass implementation and its return value (one-shot -1, or a
        stuck-fault refire cadence) flows back to the loop unchanged.
        """
        if self.injection_record is not None:
            # Refire cadence of the committed final lane's persistent fault.
            return get_fault_model(self._live_plan.model).reapply(
                self, self._live_plan
            )
        lanes = self._lanes
        pos = self._lane_pos
        last = len(lanes) - 1
        while pos < len(lanes) and lanes[pos].plan.cycle <= self.cycle:
            lane = lanes[pos]
            if pos == last:
                self._lane_pos = pos + 1
                return self._commit_final_lane(lane, top_frame, next_index)
            self._strike_lane(lane, top_frame, next_index)
            pos += 1
        self._lane_pos = pos
        return lanes[pos].plan.cycle

    def _commit_final_lane(self, lane: Lane, top_frame,
                           next_index: int) -> int:
        """Run the scalar injection for the last lane — no rollback.

        Nothing after this lane needs the golden state, so the scalar
        ``_do_injection`` runs verbatim on it: record filled and installed,
        guards armed, the strike left in place.  A dead strike raises
        :class:`TriageMasked` through to the scalar trial classifier; a
        live one lets the run continue to its ordinary verdict.  Either
        way this run produces the final lane's scalar trial bit-for-bit.
        """
        self._live_plan = lane.plan
        self._rng = random.Random(lane.plan.seed)
        try:
            ret = Interpreter._do_injection(self, lane.plan, top_frame,
                                            next_index)
        except TriageMasked as masked:
            lane.masked = True
            lane.reason = masked.reason
            lane.record = self.injection_record
            raise
        except BaseException:
            lane.reason = "continued"
            lane.record = self.injection_record
            raise
        lane.reason = "continued"
        lane.record = self.injection_record
        return ret

    def _strike_lane(self, lane: Lane, top_frame, next_index: int) -> None:
        """One lane's injection against the live golden state, rolled back.

        Byte-exact replica of the scalar trial's injection instant: fresh
        per-trial RNG from the plan seed, the model's own ``inject`` with a
        fresh record, and the triage machinery deciding dead-vs-live.  Every
        mutation the model makes (register binding, memory word, tag bytes)
        lands in the undo journal and is reverted before the sweep resumes,
        so inter-stop execution stays golden.
        """
        plan = lane.plan
        self._rng = random.Random(plan.seed)
        record = InjectionRecord(plan=plan, landed=False)
        journal: List[Tuple] = []
        self._undo_log = journal
        self.memory._journal = journal
        try:
            try:
                get_fault_model(plan.model).inject(
                    self, plan, record, top_frame, next_index
                )
            except TriageMasked as masked:
                lane.masked = True
                lane.reason = masked.reason
            except Exception:
                # A strike-time harness error (MemoryFaultError etc.): the
                # scalar path classifies it via containment, so peel.
                lane.reason = "inject_error"
            else:
                # Live strike: post-injection execution would diverge from
                # the golden stream — peel to the scalar fastpath.
                lane.reason = "live_strike"
        finally:
            for kind, target, key, before in reversed(journal):
                if kind == "reg":
                    target.values[key] = before
                elif kind == "word":
                    target.data[key:key + 4] = before.to_bytes(4, "little")
                else:  # "bytes" (tag strikes)
                    target.data[key:key + len(before)] = before
            self._undo_log = None
            self.memory._journal = None
            # Persistent-fault bindings must not leak into later lanes.
            self._stuck_fault = None
            self._stuck_mem_fault = None
            self._pending_control_fault = False
        lane.record = record

    # -- state materialization ------------------------------------------------

    def _materialize_regfile(self) -> None:
        """Non-destructive variant: fresh register file per stop.

        The scalar path replays the lazy write log into the run's register
        file once (its single injection) and clears the log.  A sweep stops
        many times, so each stop builds a *fresh* file from the log — same
        absolute write counts via ``_rf_base``, hence identical slots, tags,
        and cursor — then trims the log to the newest ``capacity`` entries
        (exactly the snapshot recorder's bound: older writes can never
        occupy a slot) instead of clearing it.
        """
        log = self._rf_log
        if not log:
            return
        cap = self.config.phys_int_registers
        regfile = RegisterFile(cap)
        total = self._rf_base + len(log)
        start = len(log) - cap if total > cap else 0
        regfile._writes = total - cap if total > cap else 0
        regfile._cursor = regfile._writes % cap
        write = regfile.write
        for frame, obj in log[start:]:
            write(frame, obj)
        self._regfile = regfile
        if len(log) > cap:
            drop = len(log) - cap
            self._rf_base += drop
            del log[:drop]


def sweep_batch(
    prepared,
    items: Sequence[Tuple[int, InjectionPlan]],
    config,
    classify: Callable,
) -> Tuple[List[Lane], List[Tuple[int, InjectionPlan, str]], List[Tuple],
           SweepInfo]:
    """Run one batch of ``(index, plan)`` trials through lane sweeps.

    ``classify(plan, interp)`` is the campaign's scalar trial driver
    (restore resolution, the run itself, trap/output classification,
    containment): each snapshot-window group of lanes is executed by
    handing its :class:`BatchedSweep` to ``classify`` under the *final*
    lane's plan, so the group's sweep doubles as that lane's scalar trial.

    Returns ``(masked_lanes, peeled, continued, info)``:

    * ``masked_lanes`` — non-final lanes whose Masked verdict was decided
      in-sweep (their ``record`` is the scalar trial's, byte for byte);
    * ``peeled`` — ``(index, plan, reason)`` trials that must run on the
      scalar fastpath;
    * ``continued`` — ``(index, TrialResult)`` for each group's final lane,
      classified by ``classify`` in-sweep;
    * ``info`` — the batch's accounting.

    Any abnormal sweep termination peels that window's lanes — the batched
    path may only ever be *faster* than scalar, never different.
    """
    info = SweepInfo()
    info.lanes = len(items)
    occupancy = prepared.occupancy
    peeled: List[Tuple[int, InjectionPlan, str]] = []
    lanes: List[Lane] = []
    for index, plan in items:
        if lane_eligible(plan, occupancy):
            lanes.append(Lane(index, plan))
        else:
            peeled.append((index, plan, "ineligible"))
    if not lanes:
        _finish_info(info, peeled, 0)
        return [], peeled, [], info
    lanes.sort(key=lambda lane: (lane.plan.cycle, lane.index))

    # Partition the lanes into snapshot windows: lanes sharing a nearest
    # snapshot ride one sweep, which fast-forwards to that snapshot and
    # executes only the window delta — the same delta the scalar path would
    # replay for the window's final lane alone.  One sweep for the whole
    # batch would instead span first-to-last injection cycle (most of the
    # golden run for uniformly drawn cycles) and lose to scalar triage
    # whenever the batch is smaller than ~2x the snapshot count.
    from . import snapshot as snapshot_mod

    use_snapshots = (
        prepared.snapshots is not None
        and snapshot_mod.resolve_snapshot_every(config.snapshot_every) != 0
    )
    groups: List[List[Lane]] = []
    last_key = None
    for lane in lanes:
        snap = (
            prepared.snapshots.nearest(lane.plan.cycle)
            if use_snapshots else None
        )
        key = snap.cycle if snap is not None else 0
        if groups and key == last_key:
            groups[-1].append(lane)
        else:
            groups.append([lane])
            last_key = key

    masked: List[Lane] = []
    continued: List[Tuple] = []
    continued_live = 0
    for at, group in enumerate(groups):
        sweep = BatchedSweep(
            prepared.module,
            group,
            config=config.sim,
            guard_mode="detect",
            disabled_guards=set(prepared.noisy_guards),
        )
        if not sweep.fastpath:
            # Module/config property, identical for every group: peel the
            # whole batch up front.
            peeled.extend(
                (lane.index, lane.plan, "no_fastpath")
                for rest in groups[at:] for lane in rest
            )
            info.fallback = True
            _finish_info(info, peeled, continued_live)
            return masked, peeled, continued, info
        sweep._occupancy = occupancy
        final = group[-1]
        with trace_mod.current().span(
            "batch.sweep", cat="batch", lanes=len(group),
            first_cycle=group[0].plan.cycle,
        ):
            try:
                trial = classify(final.plan, sweep)
            except Exception:
                # Sweep-level escape hatch (the classifier re-raises
                # anything that happened before the final lane committed):
                # peel this window's lanes.  The scalar reruns are
                # byte-identical by construction, so an aborted sweep costs
                # time, never correctness.
                peeled.extend(
                    (lane.index, lane.plan, "sweep_error") for lane in group
                )
                info.fallback = True
                continue
        from_cycle = 0
        if use_snapshots:
            snap = prepared.snapshots.nearest(final.plan.cycle)
            if snap is not None:
                from_cycle = snap.cycle
        info.vector_cycles += final.plan.cycle - from_cycle
        for lane in group[:-1]:
            if lane.masked:
                masked.append(lane)
            elif lane.record is None and not lane.reason:
                # Defensive: a sweep that classified without striking this
                # lane (cannot happen — lane cycles never exceed the final
                # lane's, and the injection check precedes each retire).
                peeled.append((lane.index, lane.plan, "undrained"))
            else:
                peeled.append((lane.index, lane.plan, lane.reason))
        if final.masked:
            info.masked += 1
        else:
            continued_live += 1
        continued.append((final.index, trial))
    info.masked += len(masked)
    _finish_info(info, peeled, continued_live)
    return masked, peeled, continued, info


def _finish_info(
    info: SweepInfo,
    peeled: List[Tuple[int, InjectionPlan, str]],
    continued_live: int,
) -> None:
    """Fold the peel reasons (and live continuations) into the info.

    Every lane lands in exactly one bucket: ``info.masked`` (verdict decided
    in-sweep) or ``info.divergence`` (peel reasons, plus ``continued`` for
    final lanes whose live injection committed in-sweep), so
    ``masked + sum(divergence) == lanes`` always holds.
    """
    divergence: Dict[str, int] = {}
    for _, _, reason in peeled:
        divergence[reason] = divergence.get(reason, 0) + 1
    if continued_live:
        divergence["continued"] = continued_live
    info.divergence = divergence
