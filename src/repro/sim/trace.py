"""Execution tracing: a value-history log for debugging kernels and faults.

A :class:`Tracer` attaches to the interpreter's value hook and records the
last N (cycle, function, value name, value) events — enough to answer "what
did the corrupted value do next" when diagnosing an injection outcome, and to
diff a faulty trace against a golden one to find the divergence point.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional, Tuple

from ..ir.instructions import Instruction
from ..ir.module import Module
from .config import SimConfig
from .events import SimTrap
from .interpreter import Interpreter


@dataclass(frozen=True)
class TraceEvent:
    """One retired value: (dynamic index, defining instruction name, value)."""

    index: int
    function: str
    name: str
    value: object

    def __str__(self) -> str:
        return f"[{self.index:>8}] @{self.function} %{self.name} = {self.value!r}"


class Tracer:
    """Bounded value-event recorder; pass :attr:`hook` as the value hook."""

    def __init__(self, limit: int = 100_000) -> None:
        if limit <= 0:
            raise ValueError("trace limit must be positive")
        self.limit = limit
        self.events: Deque[TraceEvent] = deque(maxlen=limit)
        self._index = 0

    def hook(self, instr: Instruction, value) -> None:
        fn = instr.function
        self.events.append(
            TraceEvent(self._index, fn.name if fn else "?", instr.name, value)
        )
        self._index += 1

    # -- queries ---------------------------------------------------------------

    def history_of(self, name: str) -> List[TraceEvent]:
        """All recorded events for one value name (e.g. a state variable)."""
        return [e for e in self.events if e.name == name]

    def tail(self, count: int = 20) -> List[TraceEvent]:
        return list(self.events)[-count:]

    def __len__(self) -> int:
        return len(self.events)


def trace_run(
    module: Module,
    inputs=None,
    entry: str = "main",
    injection=None,
    limit: int = 100_000,
    config: Optional[SimConfig] = None,
    max_instructions: int = 50_000_000,
) -> Tuple[Tracer, Optional[SimTrap]]:
    """Run with tracing; returns (tracer, trap-or-None)."""
    tracer = Tracer(limit)
    interp = Interpreter(
        module, config=config, guard_mode="count", value_hook=tracer.hook
    )
    trap: Optional[SimTrap] = None
    try:
        interp.run(entry=entry, inputs=inputs, injection=injection,
                   max_instructions=max_instructions)
    except SimTrap as caught:
        trap = caught
    return tracer, trap


def first_divergence(
    golden: Iterable[TraceEvent], faulty: Iterable[TraceEvent]
) -> Optional[Tuple[TraceEvent, TraceEvent]]:
    """First (golden, faulty) event pair whose value differs.

    Both traces must come from the same binary and input (so indices align);
    returns None when the recorded windows are value-identical.
    """
    for g, f in zip(golden, faulty):
        if g.name != f.name or g.value != f.value:
            return g, f
    return None
