"""Physical-register-file model for fault injection.

The paper injects single bit flips "randomized in both time and space" into
the register file of the simulated core.  Here every value-producing IR
instruction, when it retires, writes its result into the next slot of a
circular physical register file (:data:`SimConfig.phys_int_registers` entries,
256 by default).  An injection picks a random occupied slot:

* If the slot's value is still live in its frame, the flip corrupts the value
  the program will read — an architecturally visible fault.
* If the value is dead (overwritten in the frame, or the frame has returned),
  the flip lands in a stale register and is naturally masked — reproducing the
  large masked fraction the paper observes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class RegisterSlot:
    """One physical register: which frame/value it holds and a freshness tag."""

    __slots__ = ("frame", "value_key", "value_obj", "tag")

    def __init__(self) -> None:
        self.frame = None
        self.value_key: Optional[int] = None
        self.value_obj = None
        self.tag = -1

    @property
    def occupied(self) -> bool:
        return self.frame is not None


class RegisterFile:
    """Circular allocation of physical registers to retired results."""

    def __init__(self, num_registers: int) -> None:
        if num_registers <= 0:
            raise ValueError("register file must have at least one register")
        self.slots: List[RegisterSlot] = [RegisterSlot() for _ in range(num_registers)]
        self._cursor = 0
        self._writes = 0

    def write(self, frame, value_obj) -> None:
        """Record that ``value_obj``'s result (in ``frame``) now occupies a register."""
        slot = self.slots[self._cursor]
        slot.frame = frame
        slot.value_key = id(value_obj)
        slot.value_obj = value_obj
        slot.tag = self._writes
        self._writes += 1
        self._cursor += 1
        if self._cursor == len(self.slots):
            self._cursor = 0

    def occupied_slots(self) -> List[RegisterSlot]:
        return [s for s in self.slots if s.occupied]

    def pick_biased(
        self, rng, recent_window: int, live_bias: float, is_live
    ) -> Optional[RegisterSlot]:
        """Slot pick with a probability-``live_bias`` preference for slots
        whose value ``is_live`` judges still readable.

        Performs the exact RNG call sequence of the historical in-interpreter
        implementation (one ``random()`` draw, then at most one ``randrange``
        over the live candidates, then :meth:`pick_random` when that misses)
        — injection plans and trial outcomes depend on this sequence being
        stable.
        """
        slot = None
        if rng.random() < live_bias:
            candidates = [
                s for s in self.occupied_slots()
                if (recent_window <= 0 or s.tag >= self._writes - recent_window)
                and is_live(s)
            ]
            if candidates:
                slot = candidates[rng.randrange(len(candidates))]
        if slot is None:
            slot = self.pick_random(rng, recent_window)
        return slot

    def pick_random(self, rng, recent_window: int = 0) -> Optional[RegisterSlot]:
        """Random occupied slot (None when nothing has retired yet).

        With ``recent_window > 0`` the choice is restricted to the most
        recently written ``recent_window`` registers — the architecturally
        *mapped* portion of the physical register file, where a flip is
        likely to hit a live value.  A uniform choice over all 256 physical
        registers mostly hits stale (unmapped) registers, which are masked by
        construction; real register-file injection studies (Wang et al.,
        cited by the paper) report much higher architectural visibility.
        """
        occupied = self.occupied_slots()
        if not occupied:
            return None
        if recent_window > 0:
            cutoff = self._writes - recent_window
            recent = [s for s in occupied if s.tag >= cutoff]
            if recent:
                occupied = recent
        return occupied[rng.randrange(len(occupied))]

    def reset(self) -> None:
        for slot in self.slots:
            slot.frame = None
            slot.value_key = None
            slot.value_obj = None
            slot.tag = -1
        self._cursor = 0
        self._writes = 0
