"""Lightweight metrics registry: counters, timers, histograms.

The design goal is *near-zero overhead when disabled*: a disabled registry
hands out shared null instruments whose methods are no-op one-liners, and
instrumented code holds the instrument (not the registry), so the per-event
cost in the disabled configuration is a single no-op method call — cheap
enough to leave the instrumentation permanently threaded through the
campaign engine without perturbing BENCH_campaign numbers.

Instruments:

* :class:`Counter` — monotonically increasing count (``inc``);
* :class:`Timer` — wall-clock accumulator (``time()`` context manager or
  explicit ``add_seconds``) with count/total/max;
* :class:`Histogram` — power-of-two bucketed distribution of non-negative
  values (detection latencies in cycles, trial wall-times in µs).  Buckets
  are ``value.bit_length()`` of the integer value, so memory stays O(64)
  regardless of how many observations a million-trial sweep records, while
  still supporting percentile *estimates* (upper bucket bound).

The process-wide default registry (:func:`global_registry`) is enabled when
``REPRO_OBS`` is set (see :mod:`repro.obs.config`); library code records into
it, and :func:`enable_global`/:func:`reset_global` let tests and CLIs control
it explicitly.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "enable_global",
    "global_registry",
    "reset_global",
]


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self):
        return self.value


class Timer:
    """Accumulated wall-clock time with call count and max."""

    __slots__ = ("name", "count", "total_seconds", "max_seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def add_seconds(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def time(self) -> "_TimerContext":
        return _TimerContext(self)

    def snapshot(self):
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "max_seconds": self.max_seconds,
        }


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._timer.add_seconds(time.perf_counter() - self._start)


class Histogram:
    """Power-of-two bucketed histogram of non-negative values.

    Bucket ``b`` holds values whose integer part has bit length ``b`` (i.e.
    value 0 → bucket 0, 1 → 1, 2..3 → 2, 4..7 → 3, ...), so the upper bound
    of bucket ``b`` is ``2**b - 1``.  Exact count/sum/min/max are kept
    alongside, and :meth:`quantile` returns the upper bound of the bucket
    containing the requested rank — a ≤2x overestimate, adequate for
    at-a-glance latency monitoring (exact percentiles come from the JSONL
    trial log, see :mod:`repro.obs.report`).
    """

    __slots__ = ("name", "count", "total", "min_value", "max_value", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value) -> None:
        if value < 0:
            value = 0
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        bucket = int(value).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile observation."""
        if not self.count:
            return 0.0
        rank = max(1, int(q * self.count + 0.999999))
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= rank:
                return float((1 << bucket) - 1)
        return float(self.max_value or 0.0)  # pragma: no cover - defensive

    def snapshot(self):
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class _NullInstrument:
    """Shared do-nothing instrument handed out by disabled registries."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def add_seconds(self, seconds: float) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def time(self) -> "_NullInstrument":
        return self

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def snapshot(self):
        return None


_NULL = _NullInstrument()


class MetricsRegistry:
    """Named instrument store; disabled registries cost one no-op per event."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._timers: Dict[str, Timer] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def timer(self, name: str) -> Timer:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        found = self._timers.get(name)
        if found is None:
            found = self._timers[name] = Timer(name)
        return found

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name)
        return found

    def instruments(self) -> Iterator[Tuple[str, object]]:
        yield from self._counters.items()
        yield from self._timers.items()
        yield from self._histograms.items()

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe dump of every instrument, sorted by name."""
        return {
            name: instrument.snapshot()
            for name, instrument in sorted(self.instruments())
        }

    def reset(self) -> None:
        self._counters.clear()
        self._timers.clear()
        self._histograms.clear()


_GLOBAL: Optional[MetricsRegistry] = None


def global_registry() -> MetricsRegistry:
    """Process-wide registry; enabled iff ``REPRO_OBS`` is set at first use."""
    global _GLOBAL
    if _GLOBAL is None:
        from .config import obs_enabled

        _GLOBAL = MetricsRegistry(enabled=obs_enabled())
    return _GLOBAL


def enable_global(enabled: bool = True) -> MetricsRegistry:
    """Force the global registry on/off (CLIs with ``--obs-log``, tests)."""
    registry = global_registry()
    registry.enabled = enabled
    return registry


def reset_global() -> None:
    """Drop the global registry so the next use re-reads the environment."""
    global _GLOBAL
    _GLOBAL = None
