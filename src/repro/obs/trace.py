"""Hierarchical wall-clock span tracing for campaigns (Chrome trace events).

The performance story of this repo is a stack of layers — fast path,
parallel fan-out, golden-run snapshots, dead-flip triage — and this module
answers *where the wall-clock time actually goes* inside one campaign.  It
records hierarchical spans::

    campaign
      prepare
        build_module / profile / apply_scheme / golden_run / snapshot_capture
      chunk                      (one per worker dispatch unit)
        trial
          restore                (snapshot install)
          replay                 (pre-injection golden prefix)
          detect                 (post-injection execution until verdict)
          classify               (output comparison + fidelity)
      cache.get / cache.put / checkpoint.save / checkpoint.load / ...

and exports them as **Chrome trace-event JSON** — load the file at
https://ui.perfetto.dev (or ``chrome://tracing``) for a flame view per
process, or feed it to ``python -m repro.obs report --trace`` for a
per-phase self-time breakdown and a critical-path summary.

Design rules (the house determinism invariant):

* **Off by default, near-zero overhead when off.**  ``current()`` returns a
  shared null tracer whose ``span``/``instant`` are no-op one-liners unless
  ``REPRO_TRACE``/``--trace`` configured a path, so the instrumentation can
  live permanently in the campaign engine.
* **Wall-clock data never touches results.**  Spans are written to the trace
  file (and worker sidecar files) only — campaign results, the main obs
  JSONL log, cache keys, and checkpoints are byte-identical with tracing on
  or off, for any jobs count (differential tests enforce this).
* **Workers fold into the parent stream by pid.**  Worker processes buffer
  their spans and flush them to ``<trace>.spans-<pid>`` JSONL sidecars after
  each chunk; the parent merges every sidecar at export, and each event
  keeps the pid it was recorded under, so Perfetto shows one track per
  worker process.

Timestamps come from ``time.perf_counter_ns()`` (CLOCK_MONOTONIC), which is
system-wide on the supported platforms, so parent and worker spans share one
timeline.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "TraceSummary",
    "activate",
    "current",
    "load_trace",
    "render_summary",
    "resolve_trace",
    "summarize_trace",
    "trace_path",
    "validate_trace",
]

#: bump on any change to exported event fields or semantics
TRACE_SCHEMA_VERSION = 1

_FALSEY = ("", "0", "off", "false", "no")


def trace_path() -> Optional[str]:
    """Trace output path from ``REPRO_TRACE``, or None when unset/disabled."""
    value = os.environ.get("REPRO_TRACE", "").strip()
    if value.lower() in _FALSEY:
        return None
    return value


def resolve_trace(explicit: Optional[str]) -> Optional[str]:
    """Explicit config/CLI path wins, else ``REPRO_TRACE``, else None."""
    if explicit:
        return explicit
    return trace_path()


# ---------------------------------------------------------------------------
# recording
# ---------------------------------------------------------------------------


class _NullSpan:
    """Shared no-op span handed out by the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def add(self, **args) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager recording one complete ("ph": "X") event on exit."""

    __slots__ = ("_tracer", "name", "cat", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Dict) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        self._tracer.add_complete(
            self.name, self.cat, self._start, time.perf_counter_ns(),
            **self.args,
        )

    def add(self, **args) -> None:
        """Attach args discovered mid-span (e.g. the trial outcome)."""
        self.args.update(args)


class _NullTracer:
    """Disabled tracer: every method is a no-op one-liner."""

    enabled = False
    path: Optional[str] = None

    def span(self, name: str, cat: str = "phase", **args) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "mark", **args) -> None:
        pass

    def add_complete(self, name: str, cat: str, start_ns: int, end_ns: int,
                     **args) -> None:
        pass

    def flush_sidecar(self) -> None:
        pass

    def export(self) -> None:
        pass


_NULL = _NullTracer()


class Tracer:
    """Buffers span events for one trace output path.

    Thread-compatible for the repo's usage (campaigns record from the main
    thread of each process); the buffer append is protected by a lock so
    incidental cross-thread spans cannot corrupt it.
    """

    enabled = True

    def __init__(self, path: str) -> None:
        self.path = path
        self.events: List[Dict] = []
        self._lock = threading.Lock()
        self._owner_pid = os.getpid()

    # -- recording ---------------------------------------------------------

    def span(self, name: str, cat: str = "phase", **args) -> _Span:
        return _Span(self, name, cat, args)

    def add_complete(self, name: str, cat: str, start_ns: int, end_ns: int,
                     **args) -> None:
        """Record one complete event from explicit perf_counter_ns stamps."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": start_ns // 1000,
            "dur": max(0, (end_ns - start_ns) // 1000),
            "pid": os.getpid(),
            "tid": threading.get_ident() % 1_000_000,
        }
        if args:
            event["args"] = args
        with self._lock:
            self.events.append(event)

    def instant(self, name: str, cat: str = "mark", **args) -> None:
        """Record one instant ("ph": "i") event — e.g. a recovery action."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "p",
            "ts": time.perf_counter_ns() // 1000,
            "pid": os.getpid(),
            "tid": threading.get_ident() % 1_000_000,
        }
        if args:
            event["args"] = args
        with self._lock:
            self.events.append(event)

    # -- worker sidecars ---------------------------------------------------

    def sidecar_path(self) -> str:
        return f"{self.path}.spans-{os.getpid()}"

    def flush_sidecar(self) -> None:
        """Move the buffered events into this process's span sidecar.

        Workers call this after each chunk; the parent folds every sidecar
        back into the exported trace.  Best effort: a full disk must never
        fail a campaign.
        """
        with self._lock:
            events, self.events = self.events, []
        if not events:
            return
        try:
            parent = os.path.dirname(os.path.abspath(self.sidecar_path()))
            os.makedirs(parent, exist_ok=True)
            with open(self.sidecar_path(), "a", encoding="utf-8") as fh:
                for event in events:
                    fh.write(json.dumps(event, sort_keys=True) + "\n")
        except OSError:  # pragma: no cover - tracing is best effort
            with self._lock:
                self.events = events + self.events

    def _merge_sidecars(self) -> None:
        """Fold every ``<path>.spans-*`` sidecar into the buffer (parent)."""
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        prefix = os.path.basename(self.path) + ".spans-"
        try:
            names = sorted(
                n for n in os.listdir(directory) if n.startswith(prefix)
            )
        except OSError:  # pragma: no cover - best effort
            return
        merged: List[Dict] = []
        for name in names:
            full = os.path.join(directory, name)
            try:
                with open(full, encoding="utf-8") as fh:
                    for line in fh:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            event = json.loads(line)
                        except ValueError:
                            continue  # torn write from a killed worker
                        if isinstance(event, dict):
                            merged.append(event)
                os.unlink(full)
            except OSError:  # pragma: no cover - best effort
                continue
        if merged:
            with self._lock:
                self.events.extend(merged)

    # -- export ------------------------------------------------------------

    def export(self) -> Optional[str]:
        """Write the Chrome trace-event JSON file (atomic replace).

        Merges worker sidecars first and keeps the merged buffer, so a
        process running several traced campaigns against one path exports a
        cumulative trace.  Returns the path written, or None on failure.
        """
        self._merge_sidecars()
        with self._lock:
            events = list(self.events)
        pids = sorted({e.get("pid") for e in events if "pid" in e})
        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": ("campaign" if i == 0
                                  else f"worker-{pid}")},
            }
            for i, pid in enumerate(pids)
        ]
        document = {
            "traceEvents": meta + events,
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": TRACE_SCHEMA_VERSION,
                "generator": "repro.obs.trace",
            },
        }
        try:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            tmp = f"{self.path}.tmp-{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(document, fh)
            os.replace(tmp, self.path)
            return self.path
        except OSError:  # pragma: no cover - tracing is best effort
            return None


#: per-path tracer memo + the process-wide active tracer
_TRACERS: Dict[str, Tracer] = {}
_ACTIVE: object = _NULL


def activate(path: Optional[str]):
    """Bind the process-wide tracer to ``path`` (None deactivates).

    Campaign entry points call this after config resolution; library-level
    instrumentation (snapshots, compiled fast path, disk cache) reads the
    active tracer via :func:`current` so it needs no config plumbing.
    """
    global _ACTIVE
    if not path:
        _ACTIVE = _NULL
        return _NULL
    tracer = _TRACERS.get(path)
    if tracer is None:
        tracer = _TRACERS[path] = Tracer(path)
    elif tracer._owner_pid != os.getpid():
        # Fork-started worker: the inherited buffer still belongs to the
        # parent (which exports it itself) — flushing it from here would
        # duplicate every parent event, so the child starts empty.
        tracer.events = []
        tracer._lock = threading.Lock()
        tracer._owner_pid = os.getpid()
    _ACTIVE = tracer
    return tracer


def current():
    """The active tracer (the shared null tracer when tracing is off)."""
    return _ACTIVE


# ---------------------------------------------------------------------------
# loading + validation
# ---------------------------------------------------------------------------


def load_trace(path) -> Dict:
    """Parse an exported trace file (raises on unreadable/invalid JSON)."""
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def validate_trace(document) -> List[str]:
    """Schema check of an exported trace; returns a list of problems.

    An empty list means the document is a well-formed Chrome trace-event
    JSON object as this module writes it: a ``traceEvents`` array whose
    complete events carry name/cat/ph/ts/dur/pid/tid with the right types.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["trace document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not an array"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "M"):
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue
        for field, types in (
            ("name", str), ("cat", str), ("ts", int),
            ("pid", int), ("tid", int),
        ):
            if not isinstance(event.get(field), types):
                problems.append(f"event {i}: bad {field!r} field")
        if ph == "X" and not isinstance(event.get("dur"), int):
            problems.append(f"event {i}: complete event without int 'dur'")
    return problems


# ---------------------------------------------------------------------------
# analysis: per-phase self time + critical path
# ---------------------------------------------------------------------------


class TraceSummary:
    """Per-phase timing attribution for one exported trace.

    ``phases`` maps ``(cat, name)`` to ``{count, total_us, self_us}`` where
    self time is the span's duration minus its direct children's durations
    (nesting inferred per (pid, tid) from interval containment).  Within one
    track the self times telescope: they sum exactly to the root spans'
    durations, which is what makes "self-times sum to ~100% of campaign
    wall time" a checkable property.
    """

    def __init__(self) -> None:
        self.phases: Dict[Tuple[str, str], Dict[str, float]] = {}
        self.campaign_wall_us = 0
        self.prepare_us = 0
        self.campaigns: List[Dict] = []
        self.instants: Dict[str, int] = {}
        self.pids: List[int] = []
        self.restores = 0
        self.restore_cycles_skipped = 0
        self.in_campaign_self_us = 0

    def phase_rows(self) -> List[Tuple[str, str, Dict[str, float]]]:
        rows = [
            (cat, name, stats) for (cat, name), stats in self.phases.items()
        ]
        rows.sort(key=lambda r: (-r[2]["self_us"], r[0], r[1]))
        return rows


def _assign_nesting(events: List[Dict]) -> None:
    """Compute each complete event's direct-children duration in place.

    Events must belong to one (pid, tid) track.  Adds a ``_child_us`` key.
    """
    events.sort(key=lambda e: (e["ts"], -e.get("dur", 0)))
    stack: List[Dict] = []
    for event in events:
        event["_child_us"] = 0
        end = event["ts"] + event.get("dur", 0)
        while stack and stack[-1]["ts"] + stack[-1].get("dur", 0) <= event["ts"]:
            stack.pop()
        if stack and end <= stack[-1]["ts"] + stack[-1].get("dur", 0):
            stack[-1]["_child_us"] += event.get("dur", 0)
            event["_parent"] = stack[-1]
        stack.append(event)


def summarize_trace(document) -> TraceSummary:
    """Aggregate an exported trace into per-phase self-time totals."""
    summary = TraceSummary()
    events = [
        e for e in document.get("traceEvents", []) if isinstance(e, dict)
    ]
    completes = [e for e in events if e.get("ph") == "X"]
    for event in events:
        if event.get("ph") == "i":
            name = event.get("name", "?")
            summary.instants[name] = summary.instants.get(name, 0) + 1

    tracks: Dict[Tuple[int, int], List[Dict]] = {}
    for event in completes:
        tracks.setdefault(
            (event.get("pid", 0), event.get("tid", 0)), []
        ).append(event)
    for track in tracks.values():
        _assign_nesting(track)

    summary.pids = sorted({pid for pid, _ in tracks})
    for event in completes:
        key = (event.get("cat", "?"), event.get("name", "?"))
        stats = summary.phases.get(key)
        if stats is None:
            stats = summary.phases[key] = {
                "count": 0, "total_us": 0, "self_us": 0,
            }
        dur = event.get("dur", 0)
        self_us = max(0, dur - event.get("_child_us", 0))
        stats["count"] += 1
        stats["total_us"] += dur
        stats["self_us"] += self_us
        args = event.get("args") or {}
        name = event.get("name")
        if name == "campaign":
            summary.campaign_wall_us += dur
            summary.campaigns.append({
                "workload": args.get("workload"),
                "scheme": args.get("scheme"),
                "trials": args.get("trials"),
                "jobs": args.get("jobs"),
                "wall_us": dur,
            })
        elif name == "prepare":
            summary.prepare_us += dur
        elif name == "restore":
            summary.restores += 1
            summary.restore_cycles_skipped += int(args.get("cycles", 0) or 0)

    # Self time attributable to a campaign root: every span (transitively)
    # nested inside a "campaign" span, plus the campaign's own self time.
    for event in completes:
        node = event
        while node is not None:
            if node.get("name") == "campaign":
                dur = event.get("dur", 0)
                summary.in_campaign_self_us += max(
                    0, dur - event.get("_child_us", 0)
                )
                break
            node = node.get("_parent")
    return summary


def _fmt_us(us: float) -> str:
    if us >= 1_000_000:
        return f"{us / 1e6:.2f}s"
    if us >= 1_000:
        return f"{us / 1e3:.1f}ms"
    return f"{us:.0f}us"


def render_summary(summary: TraceSummary, top: int = 20) -> str:
    """Terminal rendering of a trace summary (``repro.obs report --trace``)."""
    lines: List[str] = []
    w = lines.append
    w("== trace phase report ==")
    w(f"processes: {len(summary.pids)}  campaign spans: "
      f"{len(summary.campaigns)}  campaign wall: "
      f"{_fmt_us(summary.campaign_wall_us)}")
    for c in summary.campaigns:
        w(f"  - {c.get('workload')}/{c.get('scheme')} "
          f"trials={c.get('trials')} jobs={c.get('jobs')} "
          f"wall={_fmt_us(c.get('wall_us', 0))}")

    w("")
    w("per-phase self time (sorted; self = duration minus direct children):")
    w(f"  {'cat':12s} {'phase':18s} {'count':>7s} {'total':>10s} "
      f"{'self':>10s} {'self %':>7s}")
    wall = summary.campaign_wall_us or sum(
        s["self_us"] for s in summary.phases.values()
    ) or 1
    rows = summary.phase_rows()
    for cat, name, stats in rows[:top]:
        w(f"  {cat[:12]:12s} {name[:18]:18s} {stats['count']:7d} "
          f"{_fmt_us(stats['total_us']):>10s} "
          f"{_fmt_us(stats['self_us']):>10s} "
          f"{stats['self_us'] / wall:7.1%}")
    if len(rows) > top:
        w(f"  ... {len(rows) - top} more phases")

    if summary.campaign_wall_us:
        coverage = summary.in_campaign_self_us / summary.campaign_wall_us
        w("")
        w(f"accounted inside campaign spans: "
          f"{_fmt_us(summary.in_campaign_self_us)} "
          f"({coverage:.1%} of campaign wall)")

    w("")
    w("critical path:")
    prepare = summary.prepare_us
    injection = max(0, summary.campaign_wall_us - prepare)
    if summary.campaign_wall_us:
        w(f"  prepare (one-time):   {_fmt_us(prepare):>10s} "
          f"({prepare / (summary.campaign_wall_us or 1):5.1%})")
        w(f"  injection + overhead: {_fmt_us(injection):>10s} "
          f"({injection / (summary.campaign_wall_us or 1):5.1%})")
    replay = summary.phases.get(("trial", "replay"), {}).get("total_us", 0)
    detect = summary.phases.get(("trial", "detect"), {}).get("total_us", 0)
    if replay or detect:
        w(f"  replay vs detect:     {_fmt_us(replay):>10s} replaying the "
          f"golden prefix, {_fmt_us(detect)} post-injection")
    if summary.restores:
        w(f"  snapshot restores:    {summary.restores} trials fast-forwarded, "
          f"{summary.restore_cycles_skipped} golden cycles skipped")
    if summary.instants:
        w("")
        w("instant markers: " + "  ".join(
            f"{name}={count}"
            for name, count in sorted(summary.instants.items())
        ))
    return "\n".join(lines)
