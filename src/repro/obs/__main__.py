"""Observability CLI: reports, trace breakdowns, live campaign view.

Usage::

    python -m repro.obs report campaign.jsonl
    python -m repro.obs report a.jsonl b.jsonl.gz --top 20
    python -m repro.obs report campaign.jsonl --json report.json
    python -m repro.obs report campaign.jsonl --avf      # vulnerability view
    python -m repro.obs report --trace trace.json        # phase breakdown
    python -m repro.obs top status.json                  # live dashboard
    python -m repro.obs top status.json --once           # one snapshot
"""

from __future__ import annotations

import argparse
import sys

from . import trace as trace_mod
from .report import LogReport
from .top import watch


def _cmd_report(args) -> int:
    if not args.logs and not args.trace:
        print("report: provide at least one LOG or --trace TRACE",
              file=sys.stderr)
        return 2
    if args.logs:
        aggregated = LogReport.from_paths(args.logs)
        if args.avf:
            print(aggregated.render_avf())
        else:
            print(aggregated.render_text(top=args.top))
        if args.json == "-":
            import json

            json.dump(aggregated.to_json(), sys.stdout, indent=2)
            sys.stdout.write("\n")
        elif args.json:
            aggregated.save_json(args.json)
            print(f"wrote {args.json}")
    if args.trace:
        try:
            document = trace_mod.load_trace(args.trace)
        except (OSError, ValueError) as err:
            print(f"report: cannot read trace {args.trace}: {err}",
                  file=sys.stderr)
            return 1
        problems = trace_mod.validate_trace(document)
        if problems:
            print(f"report: trace {args.trace} failed schema validation:",
                  file=sys.stderr)
            for problem in problems[:10]:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        if args.logs:
            print()
        summary = trace_mod.summarize_trace(document)
        print(trace_mod.render_summary(summary, top=args.top * 2))
    return 0


def _cmd_top(args) -> int:
    return watch(
        args.heartbeat,
        interval=args.interval,
        once=args.once,
        until_done=args.until_done,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect campaign observability artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="aggregate JSONL trial logs and/or a span trace"
    )
    report.add_argument("logs", nargs="*", metavar="LOG",
                        help="JSONL trial event log(s) written via --obs-log "
                             "or REPRO_OBS (.jsonl or .jsonl.gz)")
    report.add_argument("--top", type=int, default=10, metavar="N",
                        help="rows per breakdown table (default 10)")
    report.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full aggregation as JSON "
                             "('-' for stdout)")
    report.add_argument("--avf", action="store_true",
                        help="render the AVF-style per-structure "
                             "vulnerability table (trial outcomes weighted "
                             "by golden-run occupancy residency) instead of "
                             "the standard report")
    report.add_argument("--trace", metavar="TRACE", default=None,
                        help="also validate + summarize a Chrome trace-event "
                             "JSON written via --trace/REPRO_TRACE: "
                             "per-phase self times and the critical path")
    report.set_defaults(func=_cmd_report)

    top = sub.add_parser(
        "top", help="live view of a running campaign's heartbeat file"
    )
    top.add_argument("heartbeat", metavar="HEARTBEAT",
                     help="status JSON written via --heartbeat or "
                          "REPRO_HEARTBEAT")
    top.add_argument("--interval", type=float, default=1.0, metavar="SECONDS",
                     help="refresh interval (default 1.0)")
    top.add_argument("--once", action="store_true",
                     help="print one snapshot and exit (exit 1 when the "
                          "heartbeat file is missing)")
    top.add_argument("--until-done", action="store_true",
                     help="exit when the campaign reports done/failed")
    top.set_defaults(func=_cmd_top)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
