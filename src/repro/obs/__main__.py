"""Observability CLI: ``python -m repro.obs report <log.jsonl> [...]``.

Usage::

    python -m repro.obs report campaign.jsonl
    python -m repro.obs report a.jsonl b.jsonl --top 20
    python -m repro.obs report campaign.jsonl --json report.json
"""

from __future__ import annotations

import argparse
import sys

from .report import LogReport


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect campaign observability artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="aggregate one or more JSONL trial logs"
    )
    report.add_argument("logs", nargs="+", metavar="LOG",
                        help="JSONL trial event log(s) written via --obs-log "
                             "or REPRO_OBS")
    report.add_argument("--top", type=int, default=10, metavar="N",
                        help="rows per breakdown table (default 10)")
    report.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full aggregation as JSON "
                             "('-' for stdout)")
    args = parser.parse_args(argv)

    aggregated = LogReport.from_paths(args.logs)
    print(aggregated.render_text(top=args.top))
    if args.json == "-":
        import json

        json.dump(aggregated.to_json(), sys.stdout, indent=2)
        sys.stdout.write("\n")
    elif args.json:
        aggregated.save_json(args.json)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
