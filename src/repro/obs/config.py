"""Observability configuration (environment + CLI resolution).

Observability is **off by default**: campaigns run exactly as before unless a
trial-log path is configured, so benchmark numbers are unaffected.

* ``REPRO_OBS=/path/to/log.jsonl`` — enable observability and append trial
  events to the given JSONL file.  CLIs expose the same knob as
  ``--obs-log PATH`` (the explicit flag wins).
* ``REPRO_OBS_TIMING=1`` — additionally record per-trial wall-clock time in
  the events.  Off by default because wall-times are nondeterministic: with
  timing off, a ``jobs=N`` campaign log is byte-identical to the serial one.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["obs_enabled", "obs_log_path", "obs_timing_enabled", "resolve_obs_log"]

_FALSEY = ("", "0", "off", "false", "no")


def obs_log_path() -> Optional[str]:
    """Trial-log path from ``REPRO_OBS``, or None when unset/disabled."""
    value = os.environ.get("REPRO_OBS", "").strip()
    if value.lower() in _FALSEY:
        return None
    return value


def obs_enabled() -> bool:
    """True when the environment configures an observability log."""
    return obs_log_path() is not None


def obs_timing_enabled() -> bool:
    """True when ``REPRO_OBS_TIMING`` asks for wall-clock fields in events."""
    return os.environ.get("REPRO_OBS_TIMING", "").strip().lower() not in _FALSEY


def resolve_obs_log(explicit: Optional[str]) -> Optional[str]:
    """CLI helper: explicit ``--obs-log`` wins, else ``REPRO_OBS``, else None."""
    if explicit:
        return explicit
    return obs_log_path()
