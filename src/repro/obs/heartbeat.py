"""Live campaign telemetry: an atomically-updated heartbeat/status file.

A long campaign is opaque from the outside: the progress printer writes to
the owning terminal, and the obs JSONL log only tallies finished work.  The
heartbeat is the pollable view — a single small JSON document, atomically
replaced (temp file + ``os.replace``) at a rate-limited cadence, that any
external process can read at any instant and always see a complete,
parseable status:

.. code-block:: json

    {
      "v": 1,
      "workload": "g721dec", "scheme": "dup_valchk",
      "status": "running",
      "trials_done": 1234, "trials_total": 40000,
      "outcomes": {"Masked": 900, "SWDetect": 300, "...": 0},
      "trials_per_sec": 311.2, "trials_per_sec_ema": 324.9,
      "eta_seconds": 119.4, "elapsed_seconds": 3.97,
      "resilience_incidents": 0,
      "pid": 12345, "updated_unix": 1733787000.123
    }

This is the pre-work for the ``repro.serve`` campaign service (ROADMAP):
the submit/status/results API will stream exactly this document.  Watch it
live with ``python -m repro.obs top <file>``.

Configured via ``REPRO_HEARTBEAT=/path/to/status.json`` or ``--heartbeat``;
off by default.  Like every telemetry artifact, the heartbeat is wall-clock
data in a sidecar only: campaign results, obs logs, cache keys, and
checkpoints are byte-identical with it on or off.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Dict, Optional

__all__ = [
    "HEARTBEAT_SCHEMA_VERSION",
    "HeartbeatWriter",
    "effective_status",
    "heartbeat_path",
    "pid_alive",
    "read_heartbeat",
    "resolve_heartbeat",
]

#: bump on any change to heartbeat field names or semantics
HEARTBEAT_SCHEMA_VERSION = 1

_FALSEY = ("", "0", "off", "false", "no")

#: EMA smoothing for the instantaneous trials/sec estimate
_EMA_ALPHA = 0.3


def heartbeat_path() -> Optional[str]:
    """Heartbeat file path from ``REPRO_HEARTBEAT``, or None when off."""
    value = os.environ.get("REPRO_HEARTBEAT", "").strip()
    if value.lower() in _FALSEY:
        return None
    return value


def resolve_heartbeat(explicit: Optional[str]) -> Optional[str]:
    """Explicit config/CLI path wins, else ``REPRO_HEARTBEAT``, else None."""
    if explicit:
        return explicit
    return heartbeat_path()


class HeartbeatWriter:
    """Maintains one campaign's heartbeat file.

    ``trial`` is called once per completed trial (any order); writes are
    rate-limited to ``min_interval`` seconds so a 40k-trial campaign does
    not turn into 40k fsync-ish file replacements.  Every write is atomic:
    readers can never observe a torn document.  All file IO is best effort —
    telemetry must never fail a campaign.
    """

    def __init__(
        self,
        path: str,
        workload: str = "",
        scheme: str = "",
        total: int = 0,
        min_interval: float = 0.25,
    ) -> None:
        self.path = path
        self.workload = workload
        self.scheme = scheme
        self.total = total
        self.min_interval = min_interval
        self.done = 0
        self.outcomes: Dict[str, int] = {}
        self.incidents = 0
        self._start = time.perf_counter()
        self._last_write = 0.0
        self._last_rate_t = self._start
        self._last_rate_done = 0
        self._ema: Optional[float] = None

    # -- accounting --------------------------------------------------------

    def trial(self, outcome: str) -> None:
        self.done += 1
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        now = time.perf_counter()
        if now - self._last_write >= self.min_interval:
            self.write(now=now)

    def trials(self, outcomes) -> None:
        """Account a whole burst of completed trials at once.

        Batched lane sweeps finish many trials in one step.  Folding them
        in one call (instead of per-trial ``trial`` calls) keeps the rate
        estimate honest: the burst's own trials are inside the window the
        instantaneous rate is sampled over, so the EMA reflects effective
        trials/sec — lanes per second, not sweeps per second.
        """
        for outcome in outcomes:
            self.done += 1
            self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        now = time.perf_counter()
        if now - self._last_write >= self.min_interval:
            self.write(now=now)

    def incident(self, kind: str = "") -> None:
        """Count one resilience action (retry, fallback, quarantine, ...)."""
        self.incidents += 1
        self.write()

    def begin(self) -> None:
        """Force the initial document so watchers see the campaign early."""
        self.write(status="running")

    def finish(self, status: str = "done") -> None:
        """Force the terminal document (``done`` / ``failed``)."""
        self.write(status=status)

    # -- writing -----------------------------------------------------------

    def _update_rates(self, now: float) -> Dict[str, Optional[float]]:
        elapsed = max(now - self._start, 1e-9)
        overall = self.done / elapsed
        dt = now - self._last_rate_t
        if dt > 0 and self.done > self._last_rate_done:
            instantaneous = (self.done - self._last_rate_done) / dt
            self._ema = (
                instantaneous if self._ema is None
                else _EMA_ALPHA * instantaneous + (1 - _EMA_ALPHA) * self._ema
            )
            self._last_rate_t = now
            self._last_rate_done = self.done
        rate = self._ema if self._ema is not None else overall
        remaining = max(0, self.total - self.done)
        eta = remaining / rate if rate > 0 and remaining else None
        return {
            "elapsed": elapsed, "overall": overall,
            "ema": self._ema, "eta": eta,
        }

    def document(self, status: str = "running",
                 now: Optional[float] = None) -> Dict:
        now = time.perf_counter() if now is None else now
        rates = self._update_rates(now)
        return {
            "v": HEARTBEAT_SCHEMA_VERSION,
            "workload": self.workload,
            "scheme": self.scheme,
            "status": status,
            "trials_done": self.done,
            "trials_total": self.total,
            "outcomes": dict(sorted(self.outcomes.items())),
            "trials_per_sec": round(rates["overall"], 2),
            "trials_per_sec_ema": (
                round(rates["ema"], 2) if rates["ema"] is not None else None
            ),
            "eta_seconds": (
                round(rates["eta"], 1) if rates["eta"] is not None else None
            ),
            "elapsed_seconds": round(rates["elapsed"], 2),
            "resilience_incidents": self.incidents,
            "pid": os.getpid(),
            "updated_unix": round(time.time(), 3),
        }

    def write(self, status: str = "running",
              now: Optional[float] = None) -> None:
        """Atomically replace the heartbeat file (best effort)."""
        now = time.perf_counter() if now is None else now
        self._last_write = now
        document = self.document(status=status, now=now)
        try:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".heartbeat-", suffix=".tmp", dir=directory
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(document, fh)
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:  # pragma: no cover - telemetry is best effort
            pass


def pid_alive(pid) -> bool:
    """Is a process with this pid still running (best effort)?

    ``os.kill(pid, 0)`` probes without signalling.  ``PermissionError``
    means the pid exists but belongs to someone else — alive.  Anything
    unparseable or probe-less (no ``os.kill``, pid 0/None) reports dead,
    which is the conservative answer for staleness checks: a heartbeat we
    cannot attribute to a live process must not be trusted as running.
    """
    try:
        pid = int(pid)
    except (TypeError, ValueError):
        return False
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except (OSError, AttributeError):
        return False
    return True


def effective_status(doc: Dict) -> str:
    """The heartbeat's status after demoting dead-owner ``running`` docs.

    A campaign that is SIGKILLed after its last heartbeat write leaves a
    file that claims ``running`` forever.  Any consumer that would *act* on
    a running status (the ``top`` dashboard, the service's job view) must
    call this instead of trusting the stored field: when the owning pid is
    gone the status is demoted to ``"stale"``.
    """
    status = str(doc.get("status", "?"))
    if status in ("running", "draining") and not pid_alive(doc.get("pid")):
        return "stale"
    return status


def read_heartbeat(path) -> Optional[Dict]:
    """Parse a heartbeat file; None when absent or (transiently) unreadable.

    Unreadable should never actually happen — writes are atomic — but a
    watcher must tolerate a file that is being deleted or lives on a
    filesystem without atomic replace.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None
