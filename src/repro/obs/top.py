"""``python -m repro.obs top`` — live terminal view of a running campaign.

Tails the heartbeat file written by a campaign started with ``--heartbeat``
(or ``REPRO_HEARTBEAT``) and re-renders a compact dashboard at an interval:
progress bar, trials/sec (overall + EMA), ETA, per-outcome tallies, and the
resilience incident count.  Purely a *reader* — it never writes anything and
can watch a campaign owned by any process, which is the point: it is the
terminal precursor of the ``repro.serve`` status API.

``--once`` renders a single snapshot and exits (CI smoke uses it);
``--until-done`` exits when the heartbeat reports a terminal status.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, Optional, TextIO

from .heartbeat import read_heartbeat

__all__ = ["render_heartbeat", "watch"]

#: heartbeat older than this many seconds is flagged as stale
_STALE_AFTER = 10.0

_BAR_WIDTH = 30


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--:--"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}:{seconds % 3600 // 60:02d}:{seconds % 60:02d}"
    return f"{seconds // 60:02d}:{seconds % 60:02d}"


def render_heartbeat(doc: Dict, now_unix: Optional[float] = None) -> str:
    """One dashboard frame from a heartbeat document."""
    now_unix = time.time() if now_unix is None else now_unix
    done = int(doc.get("trials_done", 0) or 0)
    total = int(doc.get("trials_total", 0) or 0)
    frac = done / total if total else 0.0
    filled = int(frac * _BAR_WIDTH)
    bar = "#" * filled + "-" * (_BAR_WIDTH - filled)
    status = doc.get("status", "?")
    age = now_unix - float(doc.get("updated_unix", now_unix) or now_unix)
    stale = " (STALE)" if status == "running" and age > _STALE_AFTER else ""

    lines = [
        f"{doc.get('workload', '?')}/{doc.get('scheme', '?')}  "
        f"status={status}{stale}  pid={doc.get('pid', '?')}  "
        f"updated {age:.1f}s ago",
        f"[{bar}] {done}/{total} ({frac:7.1%})",
        f"rate: {doc.get('trials_per_sec', 0)} trials/s overall"
        + (f", {doc['trials_per_sec_ema']} ema"
           if doc.get("trials_per_sec_ema") is not None else "")
        + f"  eta {_fmt_eta(doc.get('eta_seconds'))}"
        + f"  elapsed {doc.get('elapsed_seconds', 0)}s",
    ]
    outcomes = doc.get("outcomes") or {}
    if outcomes:
        lines.append("outcomes: " + "  ".join(
            f"{name}={count}" for name, count in outcomes.items()
        ))
    incidents = doc.get("resilience_incidents", 0)
    if incidents:
        lines.append(f"resilience incidents: {incidents}")
    return "\n".join(lines)


def watch(
    path: str,
    interval: float = 1.0,
    once: bool = False,
    until_done: bool = False,
    stream: Optional[TextIO] = None,
    max_frames: Optional[int] = None,
) -> int:
    """Render the heartbeat at ``interval`` until interrupted.

    Returns an exit code: 0 on a clean exit (``--once`` with a readable
    file, terminal status under ``--until-done``, or Ctrl-C), 1 when
    ``--once`` found no readable heartbeat.  ``max_frames`` bounds the loop
    for tests.
    """
    stream = stream if stream is not None else sys.stdout
    frames = 0
    try:
        while True:
            doc = read_heartbeat(path)
            if doc is None:
                print(f"[repro.obs top] no heartbeat at {path} (yet?)",
                      file=stream, flush=True)
                if once:
                    return 1
            else:
                if not once and stream.isatty():  # pragma: no cover - terminal
                    stream.write("\x1b[2J\x1b[H")
                print(render_heartbeat(doc), file=stream, flush=True)
                if once:
                    return 0
                if until_done and doc.get("status") in ("done", "failed"):
                    return 0
            frames += 1
            if max_frames is not None and frames >= max_frames:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0
    except BrokenPipeError:
        # Downstream pipe reader (head, grep -q) closed early: clean exit.
        return 0
