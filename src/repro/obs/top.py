"""``python -m repro.obs top`` — live terminal view of campaigns + service.

Tails the heartbeat file written by a campaign started with ``--heartbeat``
(or ``REPRO_HEARTBEAT``) and re-renders a compact dashboard at an interval:
progress bar, trials/sec (overall + EMA), ETA, per-outcome tallies, and the
resilience incident count.  Pointed at a ``repro.serve`` service heartbeat
(``<root>/service.json``) it renders the multi-job queue view instead:
queue counts, admission depth, and one row per active job with its live
trial progress.  Purely a *reader* — it never writes anything and can
watch a campaign owned by any process.

**Stale demotion.**  A campaign SIGKILLed after its last heartbeat write
leaves a file claiming ``running`` forever.  Every rendered frame therefore
re-derives the status via :func:`~repro.obs.heartbeat.effective_status`:
a ``running`` document whose owning pid is dead is demoted to ``stale``,
counted in the ``heartbeat.stale`` metric (once per transition into
staleness, not per rendered frame), and — under ``--until-done`` —
terminates the watch with exit code 3 instead of wedging it.

``--once`` renders a single snapshot and exits (CI smoke uses it);
``--until-done`` exits when the heartbeat reports a terminal status.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, Optional, TextIO

from .heartbeat import effective_status, read_heartbeat
from .metrics import global_registry

__all__ = ["render_heartbeat", "render_service", "watch"]

#: heartbeat older than this many seconds is flagged as stale-by-age
_STALE_AFTER = 10.0

_BAR_WIDTH = 30


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--:--"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}:{seconds % 3600 // 60:02d}:{seconds % 60:02d}"
    return f"{seconds // 60:02d}:{seconds % 60:02d}"


def _status_line(doc: Dict, now_unix: float) -> str:
    """Shared status fragment with dead-pid demotion + age flagging."""
    status = effective_status(doc)
    if status == "stale":
        status = f"stale(pid {doc.get('pid', '?')} dead)"
    else:
        age = now_unix - float(doc.get("updated_unix", now_unix) or now_unix)
        if status == "running" and age > _STALE_AFTER:
            status += " (STALE)"
    age = now_unix - float(doc.get("updated_unix", now_unix) or now_unix)
    return f"status={status}  pid={doc.get('pid', '?')}  updated {age:.1f}s ago"


def render_heartbeat(doc: Dict, now_unix: Optional[float] = None) -> str:
    """One dashboard frame from a single-campaign heartbeat document."""
    now_unix = time.time() if now_unix is None else now_unix
    done = int(doc.get("trials_done", 0) or 0)
    total = int(doc.get("trials_total", 0) or 0)
    frac = done / total if total else 0.0
    filled = int(frac * _BAR_WIDTH)
    bar = "#" * filled + "-" * (_BAR_WIDTH - filled)

    lines = [
        f"{doc.get('workload', '?')}/{doc.get('scheme', '?')}  "
        + _status_line(doc, now_unix),
        f"[{bar}] {done}/{total} ({frac:7.1%})",
        f"rate: {doc.get('trials_per_sec', 0)} trials/s overall"
        + (f", {doc['trials_per_sec_ema']} ema"
           if doc.get("trials_per_sec_ema") is not None else "")
        + f"  eta {_fmt_eta(doc.get('eta_seconds'))}"
        + f"  elapsed {doc.get('elapsed_seconds', 0)}s",
    ]
    outcomes = doc.get("outcomes") or {}
    if outcomes:
        lines.append("outcomes: " + "  ".join(
            f"{name}={count}" for name, count in outcomes.items()
        ))
    incidents = doc.get("resilience_incidents", 0)
    if incidents:
        lines.append(f"resilience incidents: {incidents}")
    return "\n".join(lines)


def render_service(doc: Dict, now_unix: Optional[float] = None) -> str:
    """One dashboard frame from a ``repro.serve`` service heartbeat."""
    now_unix = time.time() if now_unix is None else now_unix
    lines = [
        "campaign service  " + _status_line(doc, now_unix),
        f"depth {doc.get('depth', 0)}/{doc.get('max_depth', '?')}  "
        f"workers {doc.get('workers_busy', 0)}/{doc.get('workers', '?')}",
    ]
    counts = doc.get("counts") or {}
    if counts:
        lines.append("queue:  " + "  ".join(
            f"{name}={count}" for name, count in sorted(counts.items())
        ))
    counters = doc.get("counters") or {}
    if counters:
        lines.append("totals: " + "  ".join(
            f"{name}={count}" for name, count in sorted(counters.items())
        ))
    jobs = doc.get("jobs") or []
    for job in jobs:
        row = (f"  {job.get('id', '?'):<14} {job.get('state', '?'):<9} "
               f"{job.get('tenant', '?'):<10} {job.get('spec', '')}")
        total = int(job.get("trials_total", 0) or 0)
        if total:
            row += f"  {job.get('trials_done', 0)}/{total}"
        attempts = int(job.get("attempts", 0) or 0)
        if attempts:
            row += f"  attempts={attempts}"
        lines.append(row)
    return "\n".join(lines)


def _render(doc: Dict, now_unix: Optional[float] = None) -> str:
    if doc.get("kind") == "service":
        return render_service(doc, now_unix=now_unix)
    return render_heartbeat(doc, now_unix=now_unix)


def watch(
    path: str,
    interval: float = 1.0,
    once: bool = False,
    until_done: bool = False,
    stream: Optional[TextIO] = None,
    max_frames: Optional[int] = None,
) -> int:
    """Render the heartbeat at ``interval`` until interrupted.

    Returns an exit code: 0 on a clean exit (``--once`` with a readable
    file, terminal status under ``--until-done``, or Ctrl-C), 1 when
    ``--once`` found no readable heartbeat, 3 when ``--until-done`` hit a
    heartbeat whose owner is dead (a wedged watch is worse than a loud
    one).  ``max_frames`` bounds the loop for tests.
    """
    stream = stream if stream is not None else sys.stdout
    frames = 0
    was_stale = False
    try:
        while True:
            doc = read_heartbeat(path)
            if doc is None:
                was_stale = False
                print(f"[repro.obs top] no heartbeat at {path} (yet?)",
                      file=stream, flush=True)
                if once:
                    return 1
            else:
                # Count *detections*, not refreshes: the stale counter ticks
                # once on the transition into staleness, however long the
                # watch keeps re-rendering the same dead heartbeat.
                stale = effective_status(doc) == "stale"
                if stale and not was_stale:
                    global_registry().counter("heartbeat.stale").inc()
                was_stale = stale
                if not once and stream.isatty():  # pragma: no cover - terminal
                    stream.write("\x1b[2J\x1b[H")
                print(_render(doc), file=stream, flush=True)
                if once:
                    return 0
                if until_done:
                    status = effective_status(doc)
                    if status in ("done", "failed", "stopped"):
                        return 0
                    if status == "stale":
                        print(f"[repro.obs top] owner pid {doc.get('pid')} "
                              f"is dead; giving up", file=stream, flush=True)
                        return 3
            frames += 1
            if max_frames is not None and frames >= max_frames:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0
    except BrokenPipeError:
        # Downstream pipe reader (head, grep -q) closed early: clean exit.
        return 0
