"""Aggregate campaign trial logs into human/machine-readable reports.

Consumes one or more JSONL event logs — plain or gzip-compressed
``.jsonl.gz`` (see :mod:`repro.obs.events`) — and produces:

* outcome tallies, per campaign and overall;
* outcome breakdowns by register (IR value name), bit position, program
  region (the function the fault landed in), and fault model (rendered only
  when a non-default model ran; the JSON output always carries it);
* detection-latency percentiles (cycles from injection to detection), split
  by software (guard) and hardware (trap) detection;
* per-check effectiveness: how often each guard id fired, its share of all
  software detections, and its median detection latency;
* cache provenance: campaigns served from the on-disk cache;
* resilience audit: recovery actions (checkpoint writes/loads, chunk
  retries, serial fallbacks, quarantines) from the ``<log>.resilience``
  sidecar, which is read automatically when it exists next to a given log;
* prefix sharing: snapshot restores, replay cycles saved, and triaged-masked
  trial counts (also from the sidecar) when shared-prefix execution ran;
* AVF view (``--avf``): per-structure vulnerability tables joining trial
  outcomes against the golden-run occupancy residency recorded by
  ``occupancy`` sidecar events — the memory-hierarchy analogue of the
  architectural vulnerability factor (vulnerable-outcome rate weighted by
  occupied-bit residency).

Exact percentiles are computed from the raw per-trial events (the metrics
registry's bucketed histograms are for live monitoring; this module is the
offline analysis path).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import os

from .events import read_events_detailed, resilience_log_path

__all__ = ["LogReport", "percentile"]

_OUTCOMES = ("Masked", "SWDetect", "HWDetect", "Failure", "USDC")

#: trial outcomes that count as vulnerable in the AVF view: the fault
#: escaped every detector and corrupted the run or its output.
_VULNERABLE = ("Failure", "USDC")


def _structure_of(value_name: str) -> str:
    """Map a trial's corrupted-value name to its hardware structure.

    Memory-model injection records name their target
    ``<mem:SEG+0x..>`` / ``<cache:SEG+..>`` / ``<cache:tag:SEG+..>`` /
    ``<stack:SEG+..>``; anything else is a register-file (or control) hit.
    """
    if value_name.startswith("<cache:"):
        return "cache"
    if value_name.startswith("<stack:"):
        return "stack"
    if value_name.startswith("<mem:"):
        seg = value_name[5:].split("+", 1)[0]
        return "stack" if seg == "__stack__" else f"segment:{seg}"
    return "regfile"


def percentile(values: Sequence[float], q: float) -> float:
    """Exact q-quantile (nearest-rank) of a non-empty sequence."""
    if not values:
        raise ValueError("percentile of empty sequence")
    ordered = sorted(values)
    rank = max(1, int(q * len(ordered) + 0.999999))
    return ordered[min(rank, len(ordered)) - 1]


def _latency_summary(latencies: List[int]) -> Optional[Dict]:
    if not latencies:
        return None
    return {
        "count": len(latencies),
        "min": min(latencies),
        "p50": percentile(latencies, 0.50),
        "p90": percentile(latencies, 0.90),
        "p99": percentile(latencies, 0.99),
        "max": max(latencies),
        "mean": sum(latencies) / len(latencies),
    }


@dataclass
class _Breakdown:
    """Outcome counts keyed by some trial dimension."""

    counts: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def add(self, key: str, outcome: str) -> None:
        row = self.counts.get(key)
        if row is None:
            row = self.counts[key] = {o: 0 for o in _OUTCOMES}
        row[outcome] = row.get(outcome, 0) + 1

    def rows_by_total(self) -> List[Tuple[str, Dict[str, int], int]]:
        rows = [
            (key, row, sum(row.values())) for key, row in self.counts.items()
        ]
        rows.sort(key=lambda r: (-r[2], r[0]))
        return rows


@dataclass
class LogReport:
    """Aggregation of one or more trial event logs."""

    paths: List[str] = field(default_factory=list)
    campaigns: List[Dict] = field(default_factory=list)
    cache_hits: List[Dict] = field(default_factory=list)
    #: recovery actions from resilience events (main log or sidecar)
    resilience_actions: List[Dict] = field(default_factory=list)
    #: shared-prefix execution totals (snapshot restores / dead-flip triage)
    prefix_sharing: List[Dict] = field(default_factory=list)
    #: per-campaign golden-run occupancy residency rows (sidecar events)
    occupancy: List[Dict] = field(default_factory=list)
    trials: int = 0
    skipped_lines: int = 0
    #: logs whose tail was torn at the stream level (truncated gzip member)
    truncated_tails: int = 0
    schema_versions: set = field(default_factory=set)
    outcome_counts: Dict[str, int] = field(
        default_factory=lambda: {o: 0 for o in _OUTCOMES}
    )
    by_register: _Breakdown = field(default_factory=_Breakdown)
    by_bit: _Breakdown = field(default_factory=_Breakdown)
    by_function: _Breakdown = field(default_factory=_Breakdown)
    by_fault_model: _Breakdown = field(default_factory=_Breakdown)
    by_structure: _Breakdown = field(default_factory=_Breakdown)
    sw_latencies: List[int] = field(default_factory=list)
    hw_latencies: List[int] = field(default_factory=list)
    #: guard id -> [fire count, latencies]
    check_fires: Dict[int, List] = field(default_factory=dict)
    landed: int = 0
    live: int = 0

    @classmethod
    def from_paths(cls, paths: Sequence) -> "LogReport":
        """Aggregate the given logs plus any ``<log>.resilience`` sidecars.

        Recovery actions live in a sidecar next to the main log (to keep the
        main log byte-deterministic); the sidecar is picked up automatically
        unless it was already passed explicitly.
        """
        explicit = {str(p) for p in paths}
        all_paths = []
        for path in paths:
            all_paths.append(str(path))
            sidecar = resilience_log_path(str(path))
            if sidecar not in explicit and os.path.exists(sidecar):
                all_paths.append(sidecar)
        report = cls(paths=all_paths)
        for path in all_paths:
            events, skipped, truncated = read_events_detailed(path)
            report.skipped_lines += skipped
            report.truncated_tails += truncated
            for event in events:
                report._ingest(event)
        return report

    def _ingest(self, event: Dict) -> None:
        if "v" in event:
            self.schema_versions.add(event["v"])
        kind = event.get("event")
        if kind == "campaign_begin":
            self.campaigns.append(event)
            return
        if kind == "cache_hit":
            self.cache_hits.append(event)
            return
        if kind == "resilience":
            self.resilience_actions.append(event)
            return
        if kind == "prefix_sharing":
            self.prefix_sharing.append(event)
            return
        if kind == "occupancy":
            self.occupancy.append(event)
            return
        if kind != "trial":
            return
        self.trials += 1
        outcome = event.get("outcome", "?")
        self.outcome_counts[outcome] = self.outcome_counts.get(outcome, 0) + 1
        if event.get("landed"):
            self.landed += 1
        if event.get("live"):
            self.live += 1
        register = event.get("register") or "<none>"
        function = event.get("function") or "<none>"
        self.by_register.add(register, outcome)
        self.by_function.add(function, outcome)
        self.by_bit.add(f"{event.get('bit', 0):02d}", outcome)
        self.by_fault_model.add(event.get("fault_model") or "single_bit", outcome)
        self.by_structure.add(_structure_of(register), outcome)
        latency = event.get("latency")
        if latency is not None:
            if outcome == "SWDetect":
                self.sw_latencies.append(latency)
            elif outcome == "HWDetect":
                self.hw_latencies.append(latency)
        check = event.get("check")
        if check is not None:
            entry = self.check_fires.get(check)
            if entry is None:
                entry = self.check_fires[check] = [0, []]
            entry[0] += 1
            if latency is not None:
                entry[1].append(latency)

    def _resilience_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.resilience_actions:
            kind = event.get("kind", "?")
            counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))

    def _prefix_totals(self) -> Dict[str, int]:
        totals = {
            "restores": 0, "replay_cycles_saved": 0, "triaged_masked": 0,
            "triaged_dead_memory": 0,
        }
        for event in self.prefix_sharing:
            for key in totals:
                totals[key] += int(event.get(key, 0) or 0)
        return totals

    def _residency_by_structure(self) -> Dict[str, Dict]:
        """Fold occupancy events into one residency row per structure.

        Several campaigns may report the same structure (e.g. ``cache``);
        occupied/total word counts are summed over the reporting campaigns
        and the residency fraction derived from the sums, so the displayed
        counts and the AVF weight describe the same aggregate.  Rows
        without counts (``regfile`` reports none) fall back to averaging
        the reported fractions.
        """
        acc: Dict[str, List[Dict]] = {}
        for event in self.occupancy:
            for row in event.get("structures", []) or []:
                name = row.get("structure")
                if name:
                    acc.setdefault(name, []).append(row)
        folded: Dict[str, Dict] = {}
        for name, rows in acc.items():
            occs = [r.get("occupied_words") for r in rows]
            totals = [r.get("total_words") for r in rows]
            if (
                all(isinstance(o, (int, float)) for o in occs)
                and all(isinstance(t, (int, float)) for t in totals)
                and sum(totals) > 0
            ):
                folded[name] = {
                    "residency": sum(occs) / sum(totals),
                    "occupied_words": sum(occs),
                    "total_words": sum(totals),
                }
            else:
                folded[name] = {
                    "residency": sum(
                        float(r.get("residency", 0) or 0) for r in rows
                    ) / len(rows),
                    "occupied_words": None,
                    "total_words": None,
                }
        return folded

    def avf_rows(self) -> List[Dict]:
        """Per-structure AVF table rows, most vulnerable first.

        ``raw_vulnerable`` is the fraction of the structure's trials that
        ended Failure or USDC; ``avf`` weights it by the structure's
        occupied-bit residency (a fault in an unoccupied bit cannot matter,
        and the trial sampler only targets occupied state).  Structures
        with no recorded residency — register hits, or logs without
        occupancy events — use weight 1.0 and report ``residency: None``.
        """
        residency = self._residency_by_structure()
        rows: List[Dict] = []
        for name, counts, total in self.by_structure.rows_by_total():
            vulnerable = sum(counts.get(o, 0) for o in _VULNERABLE)
            raw = vulnerable / total if total else 0.0
            res = residency.get(name)
            weight = res["residency"] if res is not None else None
            rows.append({
                "structure": name,
                "trials": total,
                "vulnerable": vulnerable,
                "detected": counts.get("SWDetect", 0)
                + counts.get("HWDetect", 0),
                "masked": counts.get("Masked", 0),
                "raw_vulnerable": round(raw, 6),
                "residency": round(weight, 6) if weight is not None else None,
                "avf": round(raw * (weight if weight is not None else 1.0), 6),
            })
        rows.sort(key=lambda r: (-r["avf"], r["structure"]))
        return rows

    # -- outputs -----------------------------------------------------------------

    def to_json(self) -> Dict:
        """Machine-readable aggregation (``repro.obs report --json``)."""
        sw_total = sum(c for c, _ in self.check_fires.values())
        return {
            "logs": self.paths,
            "schema_versions": sorted(self.schema_versions),
            "campaigns": [
                {"workload": c.get("workload"), "scheme": c.get("scheme")}
                for c in self.campaigns
            ],
            "cache_hits": self.cache_hits,
            "resilience": {
                "actions": len(self.resilience_actions),
                "by_kind": self._resilience_by_kind(),
                "events": self.resilience_actions,
            },
            "prefix_sharing": {
                "campaigns": len(self.prefix_sharing),
                **self._prefix_totals(),
                "events": self.prefix_sharing,
            },
            "trials": self.trials,
            "skipped_lines": self.skipped_lines,
            "truncated_tails": self.truncated_tails,
            "landed": self.landed,
            "live": self.live,
            "outcomes": dict(self.outcome_counts),
            "detection_latency": {
                "swdetect": _latency_summary(self.sw_latencies),
                "hwdetect": _latency_summary(self.hw_latencies),
            },
            "checks": {
                str(guard_id): {
                    "fires": fires,
                    "share_of_swdetect": fires / sw_total if sw_total else 0.0,
                    "latency": _latency_summary(latencies),
                }
                for guard_id, (fires, latencies) in sorted(self.check_fires.items())
            },
            "by_register": {
                k: row for k, row, _ in self.by_register.rows_by_total()
            },
            "by_bit": {k: row for k, row, _ in self.by_bit.rows_by_total()},
            "by_function": {
                k: row for k, row, _ in self.by_function.rows_by_total()
            },
            "by_fault_model": {
                k: row for k, row, _ in self.by_fault_model.rows_by_total()
            },
            "by_structure": {
                k: row for k, row, _ in self.by_structure.rows_by_total()
            },
            "avf": {
                "campaigns_with_occupancy": len(self.occupancy),
                "rows": self.avf_rows(),
            },
        }

    def render_text(self, top: int = 10) -> str:
        """Terminal report; ``top`` limits the breakdown table lengths."""
        lines: List[str] = []
        w = lines.append
        w("== campaign trial log report ==")
        w(f"logs: {len(self.paths)}  campaigns: {len(self.campaigns)}  "
          f"cache hits: {len(self.cache_hits)}  trials: {self.trials}"
          + (f"  corrupt lines skipped: {self.skipped_lines}"
             if self.skipped_lines else "")
          + (f"  truncated log tails: {self.truncated_tails}"
             if self.truncated_tails else ""))
        for c in self.campaigns:
            w(f"  - {c.get('workload')}/{c.get('scheme')} "
              f"(golden {c.get('golden_instructions', '?')} instrs)")
        for c in self.cache_hits:
            meta = c.get("meta") or {}
            w(f"  - {c.get('workload')}/{c.get('scheme')} served from cache "
              f"key={str(c.get('key', ''))[:12]} "
              f"(created {meta.get('created_iso', 'unknown')})")
        if self.resilience_actions:
            w("")
            w(f"resilience actions ({len(self.resilience_actions)}):")
            for kind, count in self._resilience_by_kind().items():
                w(f"  {kind:20s} {count:6d}")
            for event in self.resilience_actions:
                note = event.get("note")
                if note:
                    w(f"  - [{event.get('kind', '?')}] {note}")
        if self.prefix_sharing:
            totals = self._prefix_totals()
            w("")
            w(f"prefix sharing ({len(self.prefix_sharing)} campaign(s)):")
            w(f"  snapshot restores:    {totals['restores']:10d}")
            w(f"  replay cycles saved:  {totals['replay_cycles_saved']:10d}")
            w(f"  triaged masked:       {totals['triaged_masked']:10d}")
            if totals["triaged_dead_memory"]:
                w(f"  triaged dead memory:  "
                  f"{totals['triaged_dead_memory']:10d}")
            for event in self.prefix_sharing:
                w(f"  - {event.get('workload')}/{event.get('scheme')}: "
                  f"{event.get('restores', 0)} restores, "
                  f"{event.get('replay_cycles_saved', 0)} cycles saved, "
                  f"{event.get('triaged_masked', 0)} triaged masked")
        if not self.trials:
            w("no trial events found")
            return "\n".join(lines)

        w("")
        w("outcomes:")
        for outcome in _OUTCOMES:
            n = self.outcome_counts.get(outcome, 0)
            w(f"  {outcome:9s} {n:8d}  {n / self.trials:7.1%}")
        w(f"  landed on an occupied register: {self.landed}/{self.trials}; "
          f"live at flip time: {self.live}/{self.trials}")

        for title, summary in (
            ("software (guard) detection latency, cycles",
             _latency_summary(self.sw_latencies)),
            ("hardware (trap) detection latency, cycles",
             _latency_summary(self.hw_latencies)),
        ):
            w("")
            if summary is None:
                w(f"{title}: no detections")
                continue
            w(f"{title} (n={summary['count']}):")
            w(f"  min={summary['min']}  p50={summary['p50']}  "
              f"p90={summary['p90']}  p99={summary['p99']}  "
              f"max={summary['max']}  mean={summary['mean']:.1f}")

        sw_total = sum(c for c, _ in self.check_fires.values())
        w("")
        if not self.check_fires:
            w("per-check effectiveness: no software detections")
        else:
            w("per-check effectiveness:")
            w(f"  {'check':>6s} {'fires':>6s} {'share':>7s} {'p50 latency':>12s}")
            ranked = sorted(
                self.check_fires.items(), key=lambda kv: (-kv[1][0], kv[0])
            )
            for guard_id, (fires, latencies) in ranked[:top]:
                p50 = percentile(latencies, 0.5) if latencies else "-"
                w(f"  {guard_id:6d} {fires:6d} {fires / sw_total:7.1%} "
                  f"{str(p50):>12s}")
            if len(ranked) > top:
                w(f"  ... {len(ranked) - top} more checks")

        sections = [
            ("by register (IR value)", self.by_register),
            ("by bit position", self.by_bit),
            ("by function", self.by_function),
        ]
        # Only worth a table when something other than the default single-bit
        # model ran (also keeps pre-hierarchy reports rendering unchanged).
        if any(k != "single_bit" for k in self.by_fault_model.counts):
            sections.append(("by fault model", self.by_fault_model))
        for title, breakdown in sections:
            w("")
            w(f"outcomes {title}:")
            header = " ".join(f"{o:>8s}" for o in _OUTCOMES)
            w(f"  {'':24s} {header} {'total':>8s}")
            rows = breakdown.rows_by_total()
            for key, row, total in rows[:top]:
                cells = " ".join(f"{row.get(o, 0):8d}" for o in _OUTCOMES)
                w(f"  {key[:24]:24s} {cells} {total:8d}")
            if len(rows) > top:
                w(f"  ... {len(rows) - top} more")
        return "\n".join(lines)

    def render_avf(self) -> str:
        """AVF-style vulnerability report (``repro.obs report --avf``).

        One row per hardware structure a trial landed in, weighted by the
        golden-run occupied-bit residency from the campaign's ``occupancy``
        sidecar event.  Renders even without occupancy events (weights fall
        back to 1.0) so register-only logs still get the outcome view.
        """
        lines: List[str] = []
        w = lines.append
        w("== AVF-style vulnerability report ==")
        w(f"logs: {len(self.paths)}  trials: {self.trials}  "
          f"campaigns with occupancy data: {len(self.occupancy)}")
        rows = self.avf_rows()
        if not rows:
            w("no trial events found")
            return "\n".join(lines)
        w("")
        w(f"  {'structure':28s} {'trials':>7s} {'vuln':>6s} {'det':>6s} "
          f"{'masked':>7s} {'raw':>8s} {'resid':>8s} {'AVF':>8s}")
        for r in rows:
            resid = f"{r['residency']:8.4f}" if r["residency"] is not None \
                else f"{'-':>8s}"
            w(f"  {r['structure'][:28]:28s} {r['trials']:7d} "
              f"{r['vulnerable']:6d} {r['detected']:6d} {r['masked']:7d} "
              f"{r['raw_vulnerable']:8.4f} {resid} {r['avf']:8.4f}")
        res_rows = self._residency_by_structure()
        if res_rows:
            w("")
            w("golden-run occupancy (residency denominators):")
            w(f"  {'structure':28s} {'occupied':>10s} {'total':>10s} "
              f"{'residency':>10s}")
            for name in sorted(res_rows):
                row = res_rows[name]
                occ = row["occupied_words"]
                tot = row["total_words"]
                w(f"  {name[:28]:28s} "
                  f"{str(occ if occ is not None else '-'):>10s} "
                  f"{str(tot if tot is not None else '-'):>10s} "
                  f"{row['residency']:10.4f}")
        return "\n".join(lines)

    def save_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2)
            fh.write("\n")
