"""Structured campaign trial event log (JSONL).

One line per event, canonically encoded (sorted keys, no whitespace), so the
log of a deterministic campaign is itself deterministic: with per-trial
timing disabled (the default), a ``jobs=N`` campaign produces a
**byte-identical** log to the serial run — parallel workers write per-chunk
shard files and the parent concatenates them in plan order.

Event kinds (every record carries ``"v": SCHEMA_VERSION``):

* ``campaign_begin`` — campaign identity and golden-run metadata;
* ``trial`` — one injection trial: the injection site (cycle, bit, register,
  function), whether the flip landed on a live value, the outcome, the
  detecting check (guard id/kind or hardware trap kind), detection latency
  in cycles, fidelity score, and (opt-in) wall-clock time;
* ``campaign_end`` — final outcome tallies (must match the
  :class:`~repro.faultinjection.outcomes.CampaignResult`);
* ``cache_hit`` — the campaign was served from the on-disk cache; carries
  the cache key and the entry's creation metadata so provenance survives
  even when no trial is re-executed;
* ``resilience`` — one recovery action of the campaign resilience layer
  (checkpoint write/load, chunk retry, serial fallback, quarantine — the
  ``kind`` field says which, see :mod:`repro.faultinjection.resilience`).
  Written to a *sidecar* log (``<log>.resilience``, see
  :func:`resilience_log_path`) rather than the main trial log: recovery
  actions only occur on failures, so keeping them out of the main log is
  what preserves its byte-identity guarantee;
* ``prefix_sharing`` — per-campaign shared-prefix execution totals
  (snapshot restores, replay cycles saved, triaged-masked trials, see
  :mod:`repro.sim.snapshot`).  Also written to the sidecar log: the main
  trial log must stay byte-identical with snapshotting on or off.

Reading is *corrupt-line tolerant*: a truncated or garbled line (e.g. a
campaign killed mid-write) is counted and skipped, never fatal.  Unknown
schema versions are surfaced to the caller via the ``v`` field rather than
rejected — the reader is forward-compatible by construction.

Logs may be **gzip-compressed**: a path ending in ``.gz`` is read (and
written) through :mod:`gzip` transparently — 40k-trial chaos runs produce
unwieldy plain JSONL.  Writing stamps ``mtime=0`` into the gzip header so a
compressed log stays byte-deterministic like the plain one.  A truncated
compressed stream (campaign killed mid-write) is handled like a corrupt
plain line: the readable prefix is returned and the torn tail is counted
(see :func:`read_events_detailed`).
"""

from __future__ import annotations

import gzip
import io
import json
import os
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "EventLogWriter",
    "batched_event",
    "cache_hit_event",
    "campaign_begin_event",
    "campaign_end_event",
    "append_sidecar_event",
    "encode_event",
    "merge_shards",
    "prefix_sharing_event",
    "read_events",
    "read_events_detailed",
    "resilience_event",
    "resilience_log_path",
    "shard_path",
    "trial_event",
]

#: bump on any change to event field names or semantics
SCHEMA_VERSION = 1


def encode_event(event: Dict) -> str:
    """Canonical one-line JSON encoding (byte-deterministic) + newline."""
    return json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"


# ---------------------------------------------------------------------------
# event constructors
# ---------------------------------------------------------------------------


def campaign_begin_event(result) -> Dict:
    """Header record from a fresh :class:`CampaignResult` shell.

    Deliberately excludes ``jobs`` and timestamps: the header must be
    byte-identical across worker counts and runs.  ``fault_model`` is only
    present for non-default models, so single-bit logs are byte-identical
    to those written before the fault-model hierarchy existed.
    """
    event = {
        "event": "campaign_begin",
        "v": SCHEMA_VERSION,
        "workload": result.workload,
        "scheme": result.scheme,
        "golden_instructions": result.golden_instructions,
        "golden_guard_failures": result.golden_guard_failures,
        "golden_guard_evaluations": result.golden_guard_evaluations,
    }
    model = getattr(result, "fault_model", "single_bit")
    if model != "single_bit":
        event["fault_model"] = model
    return event


def trial_event(index: int, plan, trial, wall_ms: Optional[float] = None) -> Dict:
    """One trial record from an :class:`InjectionPlan` + :class:`TrialResult`.

    ``wall_ms`` is only present when per-trial timing is enabled
    (``REPRO_OBS_TIMING``); everything else is a pure function of the trial,
    keeping the default log deterministic.  ``fault_model`` is only present
    for non-default models (see :func:`campaign_begin_event`).
    """
    event = {
        "event": "trial",
        "v": SCHEMA_VERSION,
        "i": index,
        "cycle": plan.cycle,
        "bit": plan.bit,
        "seed": plan.seed,
        "outcome": trial.outcome.value,
        "landed": trial.landed,
        "live": trial.was_live,
        "register": trial.value_name,
        "function": trial.function,
        "event_cycle": trial.event_cycle,
        "latency": trial.detection_latency,
        "check": trial.detector_guard,
        "check_kind": trial.detector_kind,
        "trap": trial.trap_kind,
        "fidelity": trial.fidelity_score,
        "sdc": trial.is_sdc,
        "asdc": trial.is_asdc,
        "magnitude": trial.change_magnitude,
    }
    model = getattr(plan, "model", "single_bit")
    if model != "single_bit":
        event["fault_model"] = model
    if wall_ms is not None:
        event["wall_ms"] = round(wall_ms, 3)
    return event


def campaign_end_event(result) -> Dict:
    """Footer record: final tallies of the completed campaign."""
    return {
        "event": "campaign_end",
        "v": SCHEMA_VERSION,
        "workload": result.workload,
        "scheme": result.scheme,
        "trials": result.num_trials,
        "counts": result.counts(),
    }


def cache_hit_event(workload: str, scheme: str, key: str,
                    meta: Optional[Dict] = None) -> Dict:
    """The campaign was served from the on-disk cache.

    ``meta`` is the cache entry's creation metadata (creation time, trial
    count, cache schema), so a log retains provenance for results that were
    never recomputed.
    """
    return {
        "event": "cache_hit",
        "v": SCHEMA_VERSION,
        "workload": workload,
        "scheme": scheme,
        "key": key,
        "meta": meta or {},
    }


def resilience_event(kind: str, **fields) -> Dict:
    """One recovery action of the resilience layer.

    ``kind`` is one of: ``checkpoint_write``, ``checkpoint_load``,
    ``checkpoint_clear``, ``checkpoint_corrupt``, ``worker_failure``,
    ``chunk_retry``, ``serial_fallback``, ``trial_timeout``,
    ``trial_quarantined``, ``cache_corrupt``.  The remaining fields are
    kind-specific and deliberately timestamp-free where the action itself is
    deterministic.
    """
    event = {"event": "resilience", "v": SCHEMA_VERSION, "kind": kind}
    event.update(fields)
    return event


def prefix_sharing_event(
    workload: str,
    scheme: str,
    restores: int = 0,
    replay_cycles_saved: int = 0,
    triaged_masked: int = 0,
    triaged_dead_memory: int = 0,
) -> Dict:
    """Shared-prefix execution totals for one campaign.

    ``restores`` counts trials that fast-forwarded from a golden-run
    snapshot, ``replay_cycles_saved`` sums the pre-injection cycles those
    restores skipped, ``triaged_masked`` counts trials short-circuited to
    ``Masked`` by the dead-flip triage pass, and ``triaged_dead_memory``
    counts memory-model trials proven dead by the occupancy map.  Pure
    functions of the campaign configuration + plans, hence timestamp-free.
    """
    return {
        "event": "prefix_sharing",
        "v": SCHEMA_VERSION,
        "workload": workload,
        "scheme": scheme,
        "restores": restores,
        "replay_cycles_saved": replay_cycles_saved,
        "triaged_masked": triaged_masked,
        "triaged_dead_memory": triaged_dead_memory,
    }


def batched_event(
    workload: str,
    scheme: str,
    batches: int = 0,
    lanes: int = 0,
    masked: int = 0,
    diverged: int = 0,
    vector_cycles: int = 0,
    fallbacks: int = 0,
    divergence: Optional[Dict[str, int]] = None,
) -> Dict:
    """Batched lane-sweep execution totals for one campaign.

    ``batches`` counts sweeps, ``lanes`` the trials they carried, ``masked``
    the lanes whose verdict was decided in-sweep, ``diverged`` the lanes
    peeled to the scalar fastpath (``divergence`` breaks them down by
    reason), ``vector_cycles`` the golden cycles executed in lock-step, and
    ``fallbacks`` the sweeps that aborted and peeled everything.  Lives in
    the sidecar, not the main log: trial events must stay byte-identical
    with batching on or off (see :mod:`repro.sim.batched`).
    """
    return {
        "event": "batched",
        "v": SCHEMA_VERSION,
        "workload": workload,
        "scheme": scheme,
        "batches": batches,
        "lanes": lanes,
        "masked": masked,
        "diverged": diverged,
        "vector_cycles": vector_cycles,
        "fallbacks": fallbacks,
        "divergence": dict(sorted((divergence or {}).items())),
    }


def occupancy_event(
    workload: str, scheme: str, structures: List[Dict]
) -> Dict:
    """Per-structure occupancy residency rows of one campaign's golden run.

    ``structures`` comes from ``OccupancyMap.residency()``: one row per
    memory structure (``segment:<name>``, ``stack``, ``cache``,
    ``regfile``) with its occupied/total counts and residency fraction —
    the denominator side of the AVF report.  Lives in the sidecar, not the
    main log, so trial logs stay byte-identical with the pass on or off.
    """
    return {
        "event": "occupancy",
        "v": SCHEMA_VERSION,
        "workload": workload,
        "scheme": scheme,
        "structures": structures,
    }


def resilience_log_path(log_path: str) -> str:
    """Sidecar JSONL collecting the resilience events next to ``log_path``."""
    return f"{log_path}.resilience"


def append_sidecar_event(log_path: str, event: Dict) -> None:
    """Append one event to the ``<log>.resilience`` sidecar (best effort).

    Shared by the resilience layer and the shared-prefix stats: everything
    that must stay out of the byte-identical main log lands here.
    """
    path = resilience_log_path(log_path)
    try:
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(encode_event(event))
    except OSError:  # pragma: no cover - diagnostics must not kill campaigns
        pass


# ---------------------------------------------------------------------------
# writing
# ---------------------------------------------------------------------------


def _is_gzip_path(path) -> bool:
    return str(path).endswith(".gz")


class EventLogWriter:
    """Append-only JSONL writer (several campaigns may share one log).

    A ``.gz`` path writes a gzip member per open — appending another later
    produces a multi-member file, which the reader handles transparently.
    The gzip header is stamped with ``mtime=0`` and an empty name so the
    compressed bytes are a pure function of the logged events, preserving
    the byte-identity guarantee for compressed logs.
    """

    def __init__(self, path: str, mode: str = "a") -> None:
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        if _is_gzip_path(path):
            self._raw = open(path, mode + "b")
            self._gz = gzip.GzipFile(
                filename="", mode="wb", fileobj=self._raw, mtime=0
            )
            self._fh = io.TextIOWrapper(self._gz, encoding="utf-8")
        else:
            self._raw = self._gz = None
            self._fh = open(path, mode, encoding="utf-8")

    def emit(self, event: Dict) -> None:
        self._fh.write(encode_event(event))

    def write_raw(self, text: str) -> None:
        """Append pre-encoded lines (shard merging)."""
        self._fh.write(text)

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()
        if self._raw is not None:
            self._raw.close()

    def __enter__(self) -> "EventLogWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def shard_path(log_path: str, first_index: int) -> str:
    """Shard file written by the worker owning the chunk at ``first_index``.

    Zero-padded so lexicographic order equals plan order; chunks are
    contiguous index ranges, so concatenating sorted shards reproduces the
    serial log byte for byte.
    """
    return f"{log_path}.shard-{first_index:010d}"


def write_shard(log_path: str, first_index: int,
                events: Iterable[Dict]) -> None:
    """Worker side: write one chunk's trial events to its shard file."""
    with open(shard_path(log_path, first_index), "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(encode_event(event))


def merge_shards(writer: EventLogWriter) -> int:
    """Parent side: fold all shard files into the log, in plan order.

    Returns the number of shards merged; shard files are removed.  Best
    effort on removal — a shard that cannot be deleted is still merged.
    """
    directory = os.path.dirname(os.path.abspath(writer.path)) or "."
    prefix = os.path.basename(writer.path) + ".shard-"
    try:
        names = sorted(n for n in os.listdir(directory) if n.startswith(prefix))
    except OSError:
        return 0
    for name in names:
        full = os.path.join(directory, name)
        with open(full, encoding="utf-8") as fh:
            writer.write_raw(fh.read())
        try:
            os.unlink(full)
        except OSError:  # pragma: no cover - best effort
            pass
    return len(names)


def discard_shards(log_path: str) -> None:
    """Remove stray shard files (cleanup after a failed parallel campaign)."""
    directory = os.path.dirname(os.path.abspath(log_path)) or "."
    prefix = os.path.basename(log_path) + ".shard-"
    try:
        names = [n for n in os.listdir(directory) if n.startswith(prefix)]
    except OSError:  # pragma: no cover - best effort
        return
    for name in names:
        try:
            os.unlink(os.path.join(directory, name))
        except OSError:  # pragma: no cover - best effort
            pass


# ---------------------------------------------------------------------------
# reading
# ---------------------------------------------------------------------------


def read_events(path) -> Tuple[List[Dict], int]:
    """Parse one JSONL log; returns ``(events, skipped_line_count)``.

    Corrupt lines (truncated writes, stray text) are skipped and counted —
    a partially written log from an interrupted campaign stays readable.
    ``.gz`` paths are decompressed transparently; a truncated compressed
    tail counts as one skipped line (see :func:`read_events_detailed`).
    """
    events, skipped, truncated = read_events_detailed(path)
    return events, skipped + truncated


def read_events_detailed(path) -> Tuple[List[Dict], int, int]:
    """Like :func:`read_events` but returns ``(events, skipped, truncated)``.

    ``truncated`` is 1 when the file's tail could not be decoded at the
    stream level — a gzip member cut off mid-write by a killed campaign —
    as opposed to ``skipped``, which counts individually garbled lines.
    Everything decodable before the tear is still returned.
    """
    events: List[Dict] = []
    skipped = 0
    truncated = 0
    if _is_gzip_path(path):
        fh = io.TextIOWrapper(
            gzip.open(path, "rb"), encoding="utf-8", errors="replace"
        )
    else:
        fh = open(path, encoding="utf-8", errors="replace")
    with fh:
        while True:
            try:
                line = fh.readline()
            except (EOFError, OSError, ValueError):
                # Torn gzip tail (or undecodable stream): keep the prefix.
                truncated = 1
                break
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if not isinstance(record, dict) or "event" not in record:
                skipped += 1
                continue
            events.append(record)
    return events, skipped, truncated


def iter_trial_events(paths: Iterable) -> Iterator[Dict]:
    """All ``trial`` events across several logs (corrupt lines ignored)."""
    for path in paths:
        events, _ = read_events(path)
        for event in events:
            if event.get("event") == "trial":
                yield event
