"""Campaign observability: metrics registry, trial event log, reports.

See ``docs/OBSERVABILITY.md``.  Everything here is off by default — a
campaign only pays for observability when ``REPRO_OBS``/``--obs-log`` (and
optionally ``REPRO_OBS_TIMING``) are configured.
"""

from .config import (
    obs_enabled,
    obs_log_path,
    obs_timing_enabled,
    resolve_obs_log,
)
from .events import (
    SCHEMA_VERSION,
    EventLogWriter,
    cache_hit_event,
    campaign_begin_event,
    campaign_end_event,
    encode_event,
    merge_shards,
    read_events,
    trial_event,
)
from .metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
    enable_global,
    global_registry,
    reset_global,
)
from .report import LogReport, percentile

__all__ = [
    "SCHEMA_VERSION",
    "Counter", "Histogram", "MetricsRegistry", "Timer",
    "EventLogWriter", "LogReport",
    "cache_hit_event", "campaign_begin_event", "campaign_end_event",
    "encode_event", "enable_global", "global_registry", "merge_shards",
    "obs_enabled", "obs_log_path", "obs_timing_enabled", "percentile",
    "read_events", "reset_global", "resolve_obs_log", "trial_event",
]
