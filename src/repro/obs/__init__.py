"""Campaign observability: metrics, event logs, reports, traces, telemetry.

See ``docs/OBSERVABILITY.md``.  Everything here is off by default — a
campaign only pays for observability when the corresponding knob is
configured: ``REPRO_OBS``/``--obs-log`` (trial event log, optionally with
``REPRO_OBS_TIMING``), ``REPRO_TRACE``/``--trace`` (hierarchical wall-clock
span traces, Chrome trace-event JSON), and ``REPRO_HEARTBEAT``/
``--heartbeat`` (live status file for ``python -m repro.obs top``).
"""

from .config import (
    obs_enabled,
    obs_log_path,
    obs_timing_enabled,
    resolve_obs_log,
)
from .events import (
    SCHEMA_VERSION,
    EventLogWriter,
    cache_hit_event,
    campaign_begin_event,
    campaign_end_event,
    encode_event,
    merge_shards,
    read_events,
    read_events_detailed,
    trial_event,
)
from .heartbeat import (
    HEARTBEAT_SCHEMA_VERSION,
    HeartbeatWriter,
    heartbeat_path,
    read_heartbeat,
    resolve_heartbeat,
)
from .metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
    enable_global,
    global_registry,
    reset_global,
)
from .report import LogReport, percentile
from .top import render_heartbeat, watch
from .trace import (
    TRACE_SCHEMA_VERSION,
    Tracer,
    TraceSummary,
    activate,
    current,
    load_trace,
    render_summary,
    resolve_trace,
    summarize_trace,
    trace_path,
    validate_trace,
)

__all__ = [
    "HEARTBEAT_SCHEMA_VERSION", "SCHEMA_VERSION", "TRACE_SCHEMA_VERSION",
    "Counter", "Histogram", "MetricsRegistry", "Timer",
    "EventLogWriter", "HeartbeatWriter", "LogReport", "TraceSummary",
    "Tracer",
    "activate", "cache_hit_event", "campaign_begin_event",
    "campaign_end_event", "current", "encode_event", "enable_global",
    "global_registry", "heartbeat_path", "load_trace", "merge_shards",
    "obs_enabled", "obs_log_path", "obs_timing_enabled", "percentile",
    "read_events", "read_events_detailed", "read_heartbeat",
    "render_heartbeat", "render_summary", "reset_global", "resolve_heartbeat",
    "resolve_obs_log", "resolve_trace", "summarize_trace", "trace_path",
    "trial_event", "validate_trace", "watch",
]
