"""Headline summary: this reproduction's numbers next to the paper's.

Collects the abstract's headline claims (overheads, SDC/USDC reductions, the
full-duplication comparison, USDC detection coverage) and prints them beside
the values measured on this substrate.  Absolute numbers differ — the paper
ran ARM binaries on gem5, we run IR on our simulator — but the *shape* (who
wins, ordering, rough factors) is the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from . import figure11, figure12, figure13
from .reporting import format_table, pct
from .runner import ExperimentCache, global_cache

#: headline numbers from the paper (fractions)
PAPER = {
    "overhead_dup": 0.076,
    "overhead_dup_valchk": 0.195,
    "overhead_full_dup": 0.57,
    "sdc_original": 0.15,
    "sdc_dup": 0.095,
    "sdc_dup_valchk": 0.073,
    "usdc_original": 0.034,
    "usdc_dup": 0.018,
    "usdc_dup_valchk": 0.012,
    "usdc_full_dup": 0.014,
    "usdc_coverage": 0.825,
}


@dataclass
class SummaryRow:
    metric: str
    paper: float
    measured: float

    @property
    def shape_holds(self) -> bool:
        """Loose agreement: same sign and within a factor-of-3 band.

        (Absolute agreement is not expected across substrates; this flag is a
        sanity check that the reproduction is in the right regime.)
        """
        if self.paper == 0:
            return self.measured == 0
        if self.measured <= 0:
            return self.paper <= 0.02
        ratio = self.measured / self.paper
        return 1 / 3 <= ratio <= 3


def usdc_detection_coverage(cache: ExperimentCache) -> float:
    """Fraction of the original binary's USDCs eliminated by Dup + val chks
    (the paper's 82.5%-coverage-of-USDCs comparison with Thomas et al.)."""
    f13 = figure13.averages(cache)
    base = f13["original"].usdc
    protected = f13["dup_valchk"].usdc
    if base <= 0:
        return 1.0
    return max(0.0, 1.0 - protected / base)


def compute(cache: Optional[ExperimentCache] = None) -> List[SummaryRow]:
    cache = cache or global_cache()
    f12 = {r.benchmark: r for r in figure12.compute(cache)}["average"]
    f13 = figure13.averages(cache)
    f11 = figure11.averages(cache)

    full_dup_usdc = _full_dup_usdc(cache)
    rows = [
        SummaryRow("overhead: Dup only", PAPER["overhead_dup"], f12.dup),
        SummaryRow("overhead: Dup + val chks", PAPER["overhead_dup_valchk"], f12.dup_valchk),
        SummaryRow("overhead: full duplication", PAPER["overhead_full_dup"], f12.full_dup),
        SummaryRow("SDC: original", PAPER["sdc_original"], f13["original"].sdc),
        SummaryRow("SDC: Dup only", PAPER["sdc_dup"], f13["dup"].sdc),
        SummaryRow("SDC: Dup + val chks", PAPER["sdc_dup_valchk"], f13["dup_valchk"].sdc),
        SummaryRow("USDC: original", PAPER["usdc_original"], f13["original"].usdc),
        SummaryRow("USDC: Dup only", PAPER["usdc_dup"], f13["dup"].usdc),
        SummaryRow("USDC: Dup + val chks", PAPER["usdc_dup_valchk"], f13["dup_valchk"].usdc),
        SummaryRow("USDC: full duplication", PAPER["usdc_full_dup"], full_dup_usdc),
        SummaryRow("USDC coverage of Dup + val chks", PAPER["usdc_coverage"],
                   usdc_detection_coverage(cache)),
    ]
    return rows


def _full_dup_usdc(cache: ExperimentCache) -> float:
    usdc = [cache.campaign(name, "full_dup").usdc for name in cache.settings.workloads]
    return sum(usdc) / len(usdc) if usdc else 0.0


def report(cache: Optional[ExperimentCache] = None) -> str:
    rows = compute(cache)
    return format_table(
        ["metric", "paper", "measured", "shape holds"],
        [(r.metric, pct(r.paper), pct(r.measured), "yes" if r.shape_holds else "NO")
         for r in rows],
        title="Paper vs. measured (headline numbers)",
    )
