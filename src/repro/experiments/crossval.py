"""Section V "Sensitivity of results to different inputs".

2-fold cross-validation on jpegdec and kmeans (one per field, as in the
paper): swap the train and test inputs — profile on the test input, inject on
the train input — and compare the Dup + val chks outcome fractions.  The
paper finds per-category differences of fractions of a percent and a ~3%
performance-overhead difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..faultinjection.outcomes import Outcome
from .reporting import format_table, pct
from .runner import ExperimentCache, global_cache

CROSSVAL_BENCHMARKS = ("jpegdec", "kmeans")


@dataclass
class CrossValRow:
    benchmark: str
    category: str
    normal: float
    swapped: float

    @property
    def delta(self) -> float:
        return abs(self.normal - self.swapped)


def compute(cache: Optional[ExperimentCache] = None) -> List[CrossValRow]:
    cache = cache or global_cache()
    rows: List[CrossValRow] = []
    benchmarks = [b for b in CROSSVAL_BENCHMARKS if b in cache.settings.workloads]
    for name in benchmarks:
        normal = cache.campaign(name, "dup_valchk", swap_train_test=False)
        swapped = cache.campaign(name, "dup_valchk", swap_train_test=True)
        pairs = [
            ("Masked", normal.masked, swapped.masked),
            ("SWDetect", normal.swdetect, swapped.swdetect),
            ("HWDetect", normal.hwdetect, swapped.hwdetect),
            ("Failure", normal.failure, swapped.failure),
            ("USDC", normal.usdc, swapped.usdc),
        ]
        for category, a, b in pairs:
            rows.append(CrossValRow(name, category, a, b))
    return rows


def mean_deltas(rows: List[CrossValRow]) -> Dict[str, float]:
    out: Dict[str, List[float]] = {}
    for row in rows:
        out.setdefault(row.category, []).append(row.delta)
    return {k: sum(v) / len(v) for k, v in out.items()}


def report(cache: Optional[ExperimentCache] = None) -> str:
    rows = compute(cache)
    table = format_table(
        ["benchmark", "category", "train->test", "test->train (swapped)", "delta"],
        [(r.benchmark, r.category, pct(r.normal), pct(r.swapped), pct(r.delta, 2))
         for r in rows],
        title="2-fold cross-validation (Dup + val chks, swapped profile/run inputs)",
    )
    deltas = mean_deltas(rows)
    summary = "  ".join(f"{k}: {pct(v, 2)}" for k, v in deltas.items())
    return f"{table}\nmean deltas: {summary}"
