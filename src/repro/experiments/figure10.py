"""Figure 10: static instrumentation statistics.

Per benchmark: state variables, duplicated (shadow) instructions, and
inserted value checks, each as a fraction of the original static IR
instruction count.  The paper reports at most 11.4% duplicated instructions
and at most 8.3% of instructions carrying value checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .reporting import format_table, pct
from .runner import ExperimentCache, global_cache


@dataclass
class Figure10Row:
    benchmark: str
    static_instructions: int
    num_state_variables: int
    num_duplicated: int
    num_value_checks: int

    @property
    def frac_state_variables(self) -> float:
        return self.num_state_variables / max(self.static_instructions, 1)

    @property
    def frac_duplicated(self) -> float:
        return self.num_duplicated / max(self.static_instructions, 1)

    @property
    def frac_value_checks(self) -> float:
        return self.num_value_checks / max(self.static_instructions, 1)


def compute(cache: Optional[ExperimentCache] = None) -> List[Figure10Row]:
    cache = cache or global_cache()
    rows = []
    for name in cache.settings.workloads:
        stats = cache.prepared(name, "dup_valchk").scheme_stats
        rows.append(
            Figure10Row(
                benchmark=name,
                static_instructions=stats.instructions_before,
                num_state_variables=stats.num_state_variables,
                num_duplicated=stats.num_duplicated,
                num_value_checks=stats.num_value_checks,
            )
        )
    return rows


def report(cache: Optional[ExperimentCache] = None) -> str:
    rows = compute(cache)
    mean_dup = sum(r.frac_duplicated for r in rows) / len(rows)
    mean_chk = sum(r.frac_value_checks for r in rows) / len(rows)
    table = format_table(
        ["benchmark", "static IR", "state vars", "duplicated", "value checks"],
        [
            (r.benchmark, r.static_instructions,
             f"{r.num_state_variables} ({pct(r.frac_state_variables)})",
             f"{r.num_duplicated} ({pct(r.frac_duplicated)})",
             f"{r.num_value_checks} ({pct(r.frac_value_checks)})")
            for r in rows
        ],
        title="Figure 10: static fractions of IR instructions",
    )
    return (
        f"{table}\n"
        f"mean duplicated: {pct(mean_dup)}   mean value checks: {pct(mean_chk)}"
    )
