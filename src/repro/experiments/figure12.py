"""Figure 12: performance overhead per scheme.

Estimated out-of-order runtime (Table II core) of each protected binary,
relative to the original.  The paper's means: 7.6% for Dup only, 19.5% for
Dup + val chks; the full-duplication baseline (quoted in the text, not the
figure) costs 57%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .figure11 import SCHEME_LABELS
from .reporting import format_table, pct
from .runner import ExperimentCache, global_cache

SCHEMES = ("dup", "dup_valchk", "full_dup")


@dataclass
class Figure12Row:
    benchmark: str
    #: overhead fractions keyed by scheme (0.076 = 7.6%)
    dup: float
    dup_valchk: float
    full_dup: float


def compute(cache: Optional[ExperimentCache] = None) -> List[Figure12Row]:
    cache = cache or global_cache()
    rows = []
    for name in cache.settings.workloads:
        rows.append(
            Figure12Row(
                benchmark=name,
                dup=cache.overhead(name, "dup"),
                dup_valchk=cache.overhead(name, "dup_valchk"),
                full_dup=cache.overhead(name, "full_dup"),
            )
        )
    n = len(rows)
    rows.append(
        Figure12Row(
            benchmark="average",
            dup=sum(r.dup for r in rows) / n,
            dup_valchk=sum(r.dup_valchk for r in rows) / n,
            full_dup=sum(r.full_dup for r in rows) / n,
        )
    )
    return rows


def report(cache: Optional[ExperimentCache] = None) -> str:
    rows = compute(cache)
    return format_table(
        ["benchmark", SCHEME_LABELS["dup"], SCHEME_LABELS["dup_valchk"],
         SCHEME_LABELS["full_dup"]],
        [(r.benchmark, pct(r.dup), pct(r.dup_valchk), pct(r.full_dup)) for r in rows],
        title="Figure 12: runtime overhead vs. original "
              "(out-of-order timing model)",
    )
