"""Recovery end-to-end analysis (paper Section IV-D).

The paper's scheme is detection-only and assumes a recovery mechanism
(Encore / checkpointing).  This experiment closes the loop on our substrate:
for each benchmark, faults are injected into the Dup + val chks binary and
run under checkpoint recovery — measuring how many faulty runs end with a
*fully correct* output and what the rollback costs.

A trial ends in one of:

* ``corrected`` — a software check fired, rollback + replay produced the
  golden output;
* ``clean`` — the fault was masked (output already golden, no recovery);
* ``acceptable`` — no detection, output differs but is acceptable (ASDC);
* ``escaped`` — no detection and the output is unacceptable (USDC);
* ``trapped`` — a hardware symptom ended the run (HWDetect/Failure path;
  recoverable by the same checkpoints, but accounted separately as the
  paper does).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..faultinjection.recovery import run_with_recovery
from ..sim.faults import InjectionPlan
from .reporting import format_table, pct
from .runner import ExperimentCache, global_cache

CHECKPOINT_INTERVAL = 50_000


@dataclass
class RecoveryRow:
    benchmark: str
    trials: int
    corrected: int
    clean: int
    acceptable: int
    escaped: int
    trapped: int
    #: mean replayed instructions per recovery, as a fraction of the run
    mean_recovery_cost: float

    @property
    def correct_output_rate(self) -> float:
        """Runs ending with a fully golden output."""
        return (self.corrected + self.clean) / max(self.trials, 1)


def compute(cache: Optional[ExperimentCache] = None) -> List[RecoveryRow]:
    cache = cache or global_cache()
    rows = []
    for name in cache.settings.workloads:
        prepared = cache.prepared(name, "dup_valchk")
        golden = prepared.golden_outputs
        trials = max(cache.settings.trials // 2, 5)
        rng = random.Random(cache.settings.seed ^ 0x5EC0)

        counts = dict(corrected=0, clean=0, acceptable=0, escaped=0, trapped=0)
        costs: List[float] = []
        for _ in range(trials):
            plan = InjectionPlan(
                cycle=rng.randrange(1, prepared.golden_instructions + 1),
                bit=rng.randrange(32),
                seed=rng.randrange(1 << 30),
            )
            result = run_with_recovery(
                prepared.module,
                prepared.inputs,
                plan,
                checkpoint_interval=CHECKPOINT_INTERVAL,
                disabled_guards=set(prepared.noisy_guards),
                max_instructions=prepared.golden_instructions * 10 + 10_000,
            )
            if result.trapped:
                counts["trapped"] += 1
                continue
            identical = all(
                np.array_equal(golden[k], result.outputs[k]) for k in golden
            )
            if result.recovered:
                counts["corrected" if identical else "escaped"] += 1
                costs.append(
                    result.replayed_instructions / prepared.golden_instructions
                )
                continue
            if identical:
                counts["clean"] += 1
            else:
                fid = prepared.workload.fidelity(golden, result.outputs)
                counts["acceptable" if fid.acceptable else "escaped"] += 1

        rows.append(
            RecoveryRow(
                benchmark=name,
                trials=trials,
                mean_recovery_cost=sum(costs) / len(costs) if costs else 0.0,
                **counts,
            )
        )
    return rows


def report(cache: Optional[ExperimentCache] = None) -> str:
    rows = compute(cache)
    table = format_table(
        ["benchmark", "trials", "corrected", "clean", "acceptable",
         "escaped", "trapped", "correct rate", "recovery cost"],
        [
            (r.benchmark, r.trials, r.corrected, r.clean, r.acceptable,
             r.escaped, r.trapped, pct(r.correct_output_rate),
             pct(r.mean_recovery_cost))
            for r in rows
        ],
        title=f"Detection + checkpoint recovery (interval "
              f"{CHECKPOINT_INTERVAL} instructions, Dup + val chks binaries)",
    )
    overall = sum(r.correct_output_rate for r in rows) / max(len(rows), 1)
    return f"{table}\nmean fully-correct-output rate: {pct(overall)}"
