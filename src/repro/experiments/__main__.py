"""CLI entry point: ``python -m repro.experiments <experiment> [...]``."""

from __future__ import annotations

import argparse
import sys
import time

from . import crossval, false_positives, figure2, figure10, figure11, figure12
from . import recovery_analysis
from . import figure13, summary, tables
from .runner import default_trials, global_cache

EXPERIMENTS = {
    "table1": lambda cache: tables.table1_report(),
    "table2": lambda cache: tables.table2_report(),
    "figure2": lambda cache: figure2.report(cache),
    "figure10": lambda cache: figure10.report(cache),
    "figure11": lambda cache: figure11.report(cache),
    "figure12": lambda cache: figure12.report(cache),
    "figure13": lambda cache: figure13.report(cache),
    "false_positives": lambda cache: false_positives.report(cache),
    "crossval": lambda cache: crossval.report(cache),
    "recovery": lambda cache: recovery_analysis.report(cache),
    "summary": lambda cache: summary.report(cache),
}

#: order used by 'all'
_ALL_ORDER = [
    "table1", "table2", "figure2", "figure10", "figure11", "figure12",
    "figure13", "false_positives", "crossval", "recovery", "summary",
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=[*EXPERIMENTS, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--trials", type=int, default=None, metavar="N",
        help="injection trials per benchmark/scheme "
             "(default: REPRO_TRIALS or 60; the paper used 1000)",
    )
    parser.add_argument(
        "--workloads", default=None, metavar="A,B,...",
        help="comma-separated benchmark subset (default: all 13)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes per campaign; 0 means one per CPU "
             "(default: REPRO_JOBS or 1; results are bit-identical for "
             "any value)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the live per-campaign progress lines on stderr",
    )
    parser.add_argument(
        "--obs-log", metavar="PATH", default=None,
        help="append a structured JSONL trial event log for every campaign "
             "(default: REPRO_OBS or off; inspect with "
             "'python -m repro.obs report PATH')",
    )
    from ..sim.faults import CHAOS_FAULT_MODEL, CONCRETE_FAULT_MODELS

    parser.add_argument(
        "--fault-model", default=None,
        choices=list(CONCRETE_FAULT_MODELS) + [CHAOS_FAULT_MODEL],
        help="fault model injected by every campaign (default: "
             "REPRO_FAULT_MODEL or single_bit, the paper's model)",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="directory of per-campaign checkpoint files so an interrupted "
             "sweep resumes mid-campaign on re-invocation "
             "(default: REPRO_CHECKPOINT_DIR or off)",
    )
    from ..faultinjection.__main__ import (
        add_resilience_arguments,
        resolve_resilience_args,
    )

    add_resilience_arguments(parser, checkpoint_flag=False)
    args = parser.parse_args(argv)

    names = _ALL_ORDER if "all" in args.experiments else args.experiments
    from ..faultinjection.parallel import resolve_jobs
    from ..obs.config import resolve_obs_log
    from ..obs.metrics import enable_global
    from .runner import ExperimentSettings, reset_global_cache

    obs_log = resolve_obs_log(args.obs_log)
    if obs_log:
        enable_global()
    policy, _ = resolve_resilience_args(args)
    resilience_flags = (
        args.checkpoint_dir is not None
        or args.checkpoint_every is not None
        or args.max_retries is not None
        or args.on_worker_failure is not None
        or args.trial_deadline is not None
    )
    if (
        args.trials is not None
        or args.workloads is not None
        or args.jobs is not None
        or args.fault_model is not None
        or obs_log is not None
        or resilience_flags
        or not args.quiet
    ):
        from ..workloads.registry import BENCHMARK_NAMES

        workloads = tuple(BENCHMARK_NAMES)
        if args.workloads:
            workloads = tuple(w.strip() for w in args.workloads.split(","))
            unknown = set(workloads) - set(BENCHMARK_NAMES)
            if unknown:
                parser.error(f"unknown workloads: {sorted(unknown)}")
        settings_kwargs = dict(
            trials=args.trials if args.trials is not None else default_trials(),
            workloads=workloads,
            jobs=resolve_jobs(args.jobs),
            progress=not args.quiet,
            obs_log=obs_log,
            resilience=policy,
            fault_model=args.fault_model,
        )
        if args.checkpoint_dir is not None:
            settings_kwargs["checkpoint_dir"] = args.checkpoint_dir
        settings = ExperimentSettings(**settings_kwargs)
        cache = reset_global_cache(settings)
    else:
        cache = global_cache()
    print(f"[trials per campaign: {cache.settings.trials}; "
          f"workloads: {len(cache.settings.workloads)}]\n")
    for name in names:
        start = time.time()
        print(EXPERIMENTS[name](cache))
        print(f"[{name} done in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
