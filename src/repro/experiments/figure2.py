"""Figure 2: SDC breakdown on unmodified applications.

For every benchmark, injections into the *original* binary are classified
into acceptable SDCs (ASDCs) and unacceptable SDCs (USDCs); USDCs are further
split by whether the injected bit flip caused a large or a small change in
the corrupted instruction's output value.  The paper finds ~77% of SDCs are
ASDCs and most USDCs come from large value changes — the motivation for
expected-value checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sim.faults import LARGE_CHANGE_THRESHOLD
from .reporting import format_table, pct, stacked_bar_chart
from .runner import ExperimentCache, global_cache


@dataclass
class Figure2Row:
    benchmark: str
    sdc: float          # total SDC fraction of injected faults
    asdc: float
    usdc_large: float   # USDCs with a large injected-value change
    usdc_small: float

    @property
    def usdc(self) -> float:
        return self.usdc_large + self.usdc_small

    @property
    def asdc_share(self) -> float:
        """ASDCs as a share of all SDCs (the paper's 77% average)."""
        return self.asdc / self.sdc if self.sdc else 0.0


def compute(cache: Optional[ExperimentCache] = None) -> List[Figure2Row]:
    cache = cache or global_cache()
    rows = []
    for name in cache.settings.workloads:
        campaign = cache.campaign(name, "original")
        split = campaign.usdc_by_change(LARGE_CHANGE_THRESHOLD)
        rows.append(
            Figure2Row(
                benchmark=name,
                sdc=campaign.sdc,
                asdc=campaign.asdc,
                usdc_large=split["large"],
                usdc_small=split["small"],
            )
        )
    rows.append(
        Figure2Row(
            benchmark="average",
            sdc=_mean([r.sdc for r in rows]),
            asdc=_mean([r.asdc for r in rows]),
            usdc_large=_mean([r.usdc_large for r in rows]),
            usdc_small=_mean([r.usdc_small for r in rows]),
        )
    )
    return rows


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def report(cache: Optional[ExperimentCache] = None) -> str:
    rows = compute(cache)
    table = format_table(
        ["benchmark", "SDC", "ASDC", "USDC(large)", "USDC(small)", "ASDC/SDC"],
        [
            (r.benchmark, pct(r.sdc), pct(r.asdc), pct(r.usdc_large),
             pct(r.usdc_small), pct(r.asdc_share, 0))
            for r in rows
        ],
        title="Figure 2: SDC breakdown on unmodified applications "
              "(fractions of injected faults)",
    )
    peak = max((r.sdc for r in rows), default=0.0) or 1.0
    chart = stacked_bar_chart(
        [(r.benchmark, [r.asdc, r.usdc_large, r.usdc_small]) for r in rows],
        series=["ASDC", "USDC large", "USDC small"],
        total=peak,
    )
    return f"{table}\n\n{chart}"
