"""Figure 13: ASDC/USDC breakdown of silent data corruptions per scheme.

Each benchmark × scheme column is the total SDC fraction, split into
acceptable (ASDC) and unacceptable (USDC) corruptions.  The paper's means:
SDCs fall 15% → 9.5% → 7.3% and USDCs 3.4% → 1.8% → 1.2% across
Original → Dup only → Dup + val chks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .figure11 import SCHEME_LABELS, SCHEMES
from .reporting import format_table, pct, stacked_bar_chart
from .runner import ExperimentCache, global_cache


@dataclass
class Figure13Row:
    benchmark: str
    scheme: str
    sdc: float
    asdc: float
    usdc: float


def compute(cache: Optional[ExperimentCache] = None) -> List[Figure13Row]:
    cache = cache or global_cache()
    rows = []
    for name in cache.settings.workloads:
        for scheme in SCHEMES:
            c = cache.campaign(name, scheme)
            rows.append(
                Figure13Row(
                    benchmark=name, scheme=scheme,
                    sdc=c.sdc, asdc=c.asdc, usdc=c.usdc,
                )
            )
    for scheme in SCHEMES:
        scheme_rows = [r for r in rows if r.scheme == scheme and r.benchmark != "average"]
        n = len(scheme_rows)
        rows.append(
            Figure13Row(
                benchmark="average",
                scheme=scheme,
                sdc=sum(r.sdc for r in scheme_rows) / n,
                asdc=sum(r.asdc for r in scheme_rows) / n,
                usdc=sum(r.usdc for r in scheme_rows) / n,
            )
        )
    return rows


def averages(cache: Optional[ExperimentCache] = None) -> Dict[str, Figure13Row]:
    return {r.scheme: r for r in compute(cache) if r.benchmark == "average"}


def report(cache: Optional[ExperimentCache] = None) -> str:
    rows = compute(cache)
    table = format_table(
        ["benchmark", "scheme", "SDC", "ASDC", "USDC"],
        [
            (r.benchmark, SCHEME_LABELS[r.scheme], pct(r.sdc), pct(r.asdc), pct(r.usdc))
            for r in rows
        ],
        title="Figure 13: SDCs split into acceptable and unacceptable",
    )
    peak = max((r.sdc for r in rows), default=0.0) or 1.0
    chart = stacked_bar_chart(
        [
            (f"{r.benchmark}/{SCHEME_LABELS[r.scheme]}", [r.asdc, r.usdc])
            for r in rows
        ],
        series=["ASDC", "USDC"],
        total=peak,
    )
    return f"{table}\n\n{chart}"
