"""Shared experiment infrastructure.

All figure drivers pull their data through this module so that one expensive
artifact (a fault-injection campaign, a prepared module, a timing run) is
computed once and reused: Figures 2, 11, and 13 all come from the same
campaigns; Figure 10's static statistics come from the same prepared modules.

Trial counts honour the ``REPRO_TRIALS`` environment variable (paper: 1000
per benchmark; default here: 60, chosen so the full benchmark suite
regenerates every figure in minutes on a laptop — the margin-of-error helper
reports the resulting confidence).  ``REPRO_JOBS`` selects the worker count
for parallel campaign execution, and finished campaigns are persisted to the
on-disk cache (``REPRO_CACHE_DIR``, disable with ``REPRO_CACHE=0``) so
repeated figure/benchmark invocations skip recomputation entirely.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..faultinjection.campaign import (
    CampaignConfig,
    PreparedWorkload,
    prepare,
    run_campaign,
)
from ..faultinjection.diskcache import CampaignCache, campaign_key
from ..faultinjection.outcomes import CampaignResult
from ..faultinjection.parallel import default_jobs
from ..faultinjection.resilience import ResiliencePolicy, checkpoint_dir_env
from ..obs import events as obs_events
from ..obs.config import obs_log_path
from ..obs.metrics import global_registry
from ..profiling.profiler import collect_profiles
from ..sim.interpreter import Interpreter
from ..sim.timing import TimingModel
from ..transforms.pipeline import SchemeStats, apply_scheme
from ..workloads.base import Workload
from ..workloads.registry import BENCHMARK_NAMES, get_workload

DEFAULT_TRIALS = 60


def default_trials() -> int:
    """Trial count per (workload, scheme) campaign; REPRO_TRIALS overrides."""
    value = os.environ.get("REPRO_TRIALS", "")
    try:
        return max(1, int(value))
    except ValueError:
        return DEFAULT_TRIALS


@dataclass
class ExperimentSettings:
    """Scope and scale of an experiment run."""

    trials: int = field(default_factory=default_trials)
    seed: int = 2014
    workloads: Tuple[str, ...] = tuple(BENCHMARK_NAMES)
    campaign: CampaignConfig = field(default_factory=CampaignConfig)
    #: campaign worker processes; defaults to ``REPRO_JOBS`` (or 1)
    jobs: int = field(default_factory=default_jobs)
    #: per-trial progress callback threaded into every campaign
    on_trial: Optional[Callable] = None
    #: print a rate-limited live progress line per campaign (stderr)
    progress: bool = False
    #: structured JSONL trial event log appended to by every campaign
    #: (default: the ``REPRO_OBS`` environment variable, or off)
    obs_log: Optional[str] = field(default_factory=obs_log_path)
    #: directory for per-campaign checkpoint files, so an interrupted
    #: experiment sweep resumes mid-campaign on re-invocation (default: the
    #: ``REPRO_CHECKPOINT_DIR`` environment variable, or off).  Each campaign
    #: checkpoints to ``checkpoint-<disk_key[:16]>.json`` inside it — keyed
    #: like the disk cache, so a stale checkpoint can never leak between
    #: configurations.
    checkpoint_dir: Optional[str] = field(default_factory=checkpoint_dir_env)
    #: recovery policy threaded into every campaign (None = env defaults)
    resilience: Optional[ResiliencePolicy] = None
    #: fault model threaded into every campaign (None = the campaign's own
    #: default resolution: ``REPRO_FAULT_MODEL`` or single_bit)
    fault_model: Optional[str] = None

    def campaign_config(self) -> CampaignConfig:
        config = replace(
            self.campaign, trials=self.trials, seed=self.seed, jobs=self.jobs,
            obs_log=self.obs_log, resilience=self.resilience,
        )
        if self.fault_model is not None:
            config = replace(config, fault_model=self.fault_model)
        return config


class ExperimentCache:
    """Memoises prepared workloads, campaigns, and timing runs.

    Campaign results are additionally persisted through the on-disk
    :class:`CampaignCache`: before running trials the disk cache is checked
    (the key covers the printed module IR, scheme, config, trial count, and
    seed — see :mod:`repro.faultinjection.diskcache`), and fresh results are
    written back, so a re-invocation with unchanged code and settings loads
    every campaign instead of recomputing it.
    """

    def __init__(self, settings: Optional[ExperimentSettings] = None,
                 disk_cache: Optional[CampaignCache] = None) -> None:
        self.settings = settings or ExperimentSettings()
        self.disk_cache = disk_cache if disk_cache is not None else CampaignCache()
        self._prepared: Dict[Tuple[str, str, bool], PreparedWorkload] = {}
        self._campaigns: Dict[Tuple[str, str, bool], CampaignResult] = {}
        self._runtimes: Dict[Tuple[str, str], float] = {}

    # -- prepared modules ----------------------------------------------------------

    def prepared(
        self, name: str, scheme: str, swap_train_test: bool = False
    ) -> PreparedWorkload:
        key = (name, scheme, swap_train_test)
        if key not in self._prepared:
            config = self.settings.campaign_config()
            config = replace(config, swap_train_test=swap_train_test)
            self._prepared[key] = prepare(get_workload(name), scheme, config)
        return self._prepared[key]

    # -- campaigns ---------------------------------------------------------------------

    def campaign(
        self, name: str, scheme: str, swap_train_test: bool = False
    ) -> CampaignResult:
        key = (name, scheme, swap_train_test)
        if key not in self._campaigns:
            config = self.settings.campaign_config()
            config = replace(config, swap_train_test=swap_train_test)
            prepared = self.prepared(name, scheme, swap_train_test)
            disk_key = campaign_key(prepared.module, name, scheme, config)
            entry = self.disk_cache.get_entry(disk_key)
            if entry is not None:
                result, meta = entry
                # Observability must not go dark on a cache hit: log the
                # provenance of the served result instead of the trials.
                self._emit_cache_hit(name, scheme, disk_key, meta)
            else:
                if self.settings.checkpoint_dir:
                    config = replace(
                        config,
                        checkpoint=os.path.join(
                            self.settings.checkpoint_dir,
                            f"checkpoint-{disk_key[:16]}.json",
                        ),
                    )
                on_trial = self.settings.on_trial
                printer = None
                on_recovery = None
                if on_trial is None and self.settings.progress:
                    from ..faultinjection.progress import ProgressPrinter

                    on_trial = printer = ProgressPrinter(
                        config.trials, label=f"{name}/{scheme}"
                    )
                    on_recovery = printer.note
                result = run_campaign(
                    prepared.workload, scheme, config, prepared=prepared,
                    on_trial=on_trial, on_recovery=on_recovery,
                )
                if printer is not None:
                    printer.finish()
                self.disk_cache.put(disk_key, result)
            self._campaigns[key] = result
        return self._campaigns[key]

    def _emit_cache_hit(self, name: str, scheme: str, disk_key: str,
                        meta: Dict) -> None:
        global_registry().counter("campaign.cache_hits").inc()
        obs_log = self.settings.obs_log
        if not obs_log:
            return
        with obs_events.EventLogWriter(obs_log) as writer:
            writer.emit(
                obs_events.cache_hit_event(name, scheme, disk_key, meta)
            )

    # -- timing runs (Figure 12) -----------------------------------------------------------

    def runtime_cycles(self, name: str, scheme: str) -> float:
        """Estimated out-of-order cycles of one golden run under ``scheme``."""
        key = (name, scheme)
        if key not in self._runtimes:
            prepared = self.prepared(name, scheme)
            timing = TimingModel(self.settings.campaign.sim)
            interp = Interpreter(
                prepared.module,
                config=self.settings.campaign.sim,
                guard_mode="count",
                timing=timing,
            )
            prepared.workload.run(prepared.module, prepared.inputs, interpreter=interp)
            self._runtimes[key] = timing.cycles
        return self._runtimes[key]

    def overhead(self, name: str, scheme: str) -> float:
        """Runtime overhead of ``scheme`` relative to the original binary."""
        base = self.runtime_cycles(name, "original")
        return self.runtime_cycles(name, scheme) / base - 1.0


_GLOBAL_CACHE: Optional[ExperimentCache] = None


def global_cache() -> ExperimentCache:
    """Process-wide cache shared by all figure drivers and benchmarks."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = ExperimentCache()
    return _GLOBAL_CACHE


def reset_global_cache(settings: Optional[ExperimentSettings] = None) -> ExperimentCache:
    """Replace the global cache (used by tests to control scale)."""
    global _GLOBAL_CACHE
    _GLOBAL_CACHE = ExperimentCache(settings)
    return _GLOBAL_CACHE
