"""Tables I and II of the paper.

Table I is the benchmark inventory (from the workload registry); Table II is
the simulated core configuration (from :class:`~repro.sim.config.SimConfig`).
"""

from __future__ import annotations

from typing import Optional

from ..sim.config import SimConfig
from ..workloads.registry import table1_rows
from .reporting import format_table


def table1_report() -> str:
    rows = table1_rows()
    return format_table(
        ["Benchmark (Suite)", "Description (Category)", "Inputs",
         "Fidelity Measure (Threshold)"],
        [(r["benchmark"], r["description"], r["inputs"], r["fidelity"]) for r in rows],
        title="Table I: benchmarks",
    )


def table2_report(config: Optional[SimConfig] = None) -> str:
    config = config or SimConfig()
    return "Table II: simulator parameters (ARMv7-a profile)\n" + config.describe()
