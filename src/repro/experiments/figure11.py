"""Figure 11: fault-coverage classification per scheme.

For each benchmark and each of Original / Dup only / Dup + val chks, the
fraction of injected faults ending in Masked / SWDetect / HWDetect / Failure
/ USDC.  The paper's headline: USDCs drop from 3.4% (original) to 1.8% (dup
only) to 1.2% (dup + value checks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..faultinjection.outcomes import CampaignResult
from .reporting import format_table, pct, stacked_bar_chart
from .runner import ExperimentCache, global_cache

SCHEMES = ("original", "dup", "dup_valchk")
SCHEME_LABELS = {
    "original": "Original",
    "dup": "Dup only",
    "dup_valchk": "Dup + val chks",
    "full_dup": "Full duplication",
}


@dataclass
class Figure11Row:
    benchmark: str
    scheme: str
    masked: float
    swdetect: float
    hwdetect: float
    failure: float
    usdc: float

    @property
    def coverage(self) -> float:
        return self.masked + self.swdetect + self.hwdetect


def _row(name: str, scheme: str, campaign: CampaignResult) -> Figure11Row:
    return Figure11Row(
        benchmark=name,
        scheme=scheme,
        masked=campaign.masked,
        swdetect=campaign.swdetect,
        hwdetect=campaign.hwdetect,
        failure=campaign.failure,
        usdc=campaign.usdc,
    )


def compute(cache: Optional[ExperimentCache] = None) -> List[Figure11Row]:
    cache = cache or global_cache()
    rows = []
    for name in cache.settings.workloads:
        for scheme in SCHEMES:
            rows.append(_row(name, scheme, cache.campaign(name, scheme)))
    for scheme in SCHEMES:
        scheme_rows = [r for r in rows if r.scheme == scheme and r.benchmark != "average"]
        n = len(scheme_rows)
        rows.append(
            Figure11Row(
                benchmark="average",
                scheme=scheme,
                masked=sum(r.masked for r in scheme_rows) / n,
                swdetect=sum(r.swdetect for r in scheme_rows) / n,
                hwdetect=sum(r.hwdetect for r in scheme_rows) / n,
                failure=sum(r.failure for r in scheme_rows) / n,
                usdc=sum(r.usdc for r in scheme_rows) / n,
            )
        )
    return rows


def averages(cache: Optional[ExperimentCache] = None) -> Dict[str, Figure11Row]:
    return {r.scheme: r for r in compute(cache) if r.benchmark == "average"}


def report(cache: Optional[ExperimentCache] = None) -> str:
    rows = compute(cache)
    table = format_table(
        ["benchmark", "scheme", "Masked", "SWDetect", "HWDetect", "Failure",
         "USDC", "coverage"],
        [
            (r.benchmark, SCHEME_LABELS[r.scheme], pct(r.masked), pct(r.swdetect),
             pct(r.hwdetect), pct(r.failure), pct(r.usdc), pct(r.coverage))
            for r in rows
        ],
        title="Figure 11: outcome classification of injected faults",
    )
    chart = stacked_bar_chart(
        [
            (f"{r.benchmark}/{SCHEME_LABELS[r.scheme]}",
             [r.masked, r.swdetect, r.hwdetect, r.failure, r.usdc])
            for r in rows
        ],
        series=["Masked", "SWDetect", "HWDetect", "Failure", "USDC"],
    )
    return f"{table}\n\n{chart}"
