"""Experiment drivers: one module per table/figure of the paper's evaluation.

Run from the command line::

    python -m repro.experiments table1
    python -m repro.experiments figure11
    python -m repro.experiments all          # every table and figure

Trial counts scale with the ``REPRO_TRIALS`` environment variable
(default 60; the paper used 1000 per benchmark).
"""

from . import (
    crossval,
    recovery_analysis,
    false_positives,
    figure2,
    figure10,
    figure11,
    figure12,
    figure13,
    summary,
    tables,
)
from .runner import (
    ExperimentCache,
    ExperimentSettings,
    default_trials,
    global_cache,
    reset_global_cache,
)

__all__ = [
    "crossval", "recovery_analysis", "false_positives", "figure2", "figure10", "figure11",
    "figure12", "figure13", "summary", "tables",
    "ExperimentCache", "ExperimentSettings", "default_trials",
    "global_cache", "reset_global_cache",
]
