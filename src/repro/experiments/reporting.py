"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render rows as an aligned ASCII table (floats as percentages are the
    caller's responsibility)."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def pct(value: float, digits: int = 1) -> str:
    """0.073 → '7.3%'"""
    return f"{100.0 * value:.{digits}f}%"


#: glyphs for stacked-bar segments, in series order
BAR_GLYPHS = "█▓▒░▚·"


def stacked_bar_chart(
    rows: Sequence[tuple],
    series: Sequence[str],
    width: int = 50,
    total: float = 1.0,
    title: str = "",
) -> str:
    """Render rows of stacked fractions as a text bar chart.

    ``rows`` are ``(label, [fraction per series])``; each bar is ``width``
    characters at full ``total``.  Used to render Figures 2/11/13 the way the
    paper draws them — stacked columns per benchmark — without any plotting
    dependency.
    """
    if not series or len(series) > len(BAR_GLYPHS):
        raise ValueError(f"between 1 and {len(BAR_GLYPHS)} series supported")
    label_w = max((len(str(r[0])) for r in rows), default=0)
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{BAR_GLYPHS[i]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    for label, fractions in rows:
        if len(fractions) != len(series):
            raise ValueError(f"row {label!r} has {len(fractions)} values, "
                             f"expected {len(series)}")
        bar = []
        used = 0
        for i, fraction in enumerate(fractions):
            cells = round(width * max(fraction, 0.0) / total)
            cells = min(cells, width - used)
            bar.append(BAR_GLYPHS[i] * cells)
            used += cells
        shown = sum(fractions)
        lines.append(
            f"{str(label):<{label_w}}  |{''.join(bar):<{width}}| {pct(shown)}"
        )
    return "\n".join(lines)
