"""Section V "Impact of False Positives".

A false positive = a value check failing in a fault-free run (profiled on the
train input, executed on the test input).  The paper reports an average rate
of 1 check failure per 235K instructions and argues (via Racunas et al.) that
up to 1 recovery per 1000 instructions is tolerable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .reporting import format_table
from .runner import ExperimentCache, global_cache


@dataclass
class FalsePositiveRow:
    benchmark: str
    instructions: int
    guard_evaluations: int
    failures: int

    @property
    def rate(self) -> float:
        """False positives per instruction."""
        return self.failures / max(self.instructions, 1)

    @property
    def instructions_per_failure(self) -> float:
        if self.failures == 0:
            return float("inf")
        return self.instructions / self.failures


def compute(cache: Optional[ExperimentCache] = None) -> List[FalsePositiveRow]:
    cache = cache or global_cache()
    rows = []
    for name in cache.settings.workloads:
        prepared = cache.prepared(name, "dup_valchk")
        rows.append(
            FalsePositiveRow(
                benchmark=name,
                instructions=prepared.golden_instructions,
                guard_evaluations=prepared.golden_guard_evaluations,
                failures=prepared.golden_guard_failures,
            )
        )
    return rows


def aggregate_instructions_per_failure(rows: List[FalsePositiveRow]) -> float:
    """The paper's "1 value check fail per N instructions" aggregate."""
    total_instructions = sum(r.instructions for r in rows)
    total_failures = sum(r.failures for r in rows)
    if total_failures == 0:
        return float("inf")
    return total_instructions / total_failures


def report(cache: Optional[ExperimentCache] = None) -> str:
    rows = compute(cache)
    agg = aggregate_instructions_per_failure(rows)
    table = format_table(
        ["benchmark", "instructions", "check evals", "false positives",
         "instrs/failure"],
        [
            (r.benchmark, r.instructions, r.guard_evaluations, r.failures,
             "inf" if r.failures == 0 else f"{r.instructions_per_failure:.0f}")
            for r in rows
        ],
        title="False positives (value-check failures in fault-free runs)",
    )
    agg_str = "inf" if agg == float("inf") else f"{agg:.0f}"
    return f"{table}\naggregate: 1 failure per {agg_str} instructions"
