"""The campaign service: a crash-safe, multi-tenant queue over the engine.

One :class:`Service` process owns a **service root** directory::

    <root>/journal.jsonl    append-only queue transitions (source of truth)
    <root>/state.json       atomic state snapshot (journal replay accelerator)
    <root>/service.json     service heartbeat (atomic; ``repro.obs top``)
    <root>/inbox/           client submissions (atomic drop-in JSON files)
    <root>/control/drain    drain request marker (``repro.serve drain``)
    <root>/jobs/<id>/       one directory per admitted job (see ``worker.py``)

and runs a simple, relentlessly restartable loop: pull submissions from the
inbox, admit them (validate / shed / dedup / enqueue — every decision
journaled *before* it takes effect), dispatch queued jobs to a bounded
worker pool under round-robin tenant fairness, reap finished workers, and
keep the heartbeat and state snapshot fresh.  There is no in-memory state
that is not reconstructible from the journal: a SIGKILL at any instant
costs at most in-flight *work* (recovered from the PR 4 campaign
checkpoints), never bookkeeping.

Robustness decisions live here:

* **Admission control** — an invalid spec or a queue past ``max_depth``
  is *shed* (journaled, answerable, terminal) instead of admitted; the
  service never accepts work it cannot bound.
* **Retry with deterministic jitter** — a failed job is requeued with
  exponential backoff whose jitter is seeded from the job's content key
  (:func:`repro.faultinjection.resilience.jittered_backoff`), so a worker
  pool that loses many jobs at once does not produce a synchronized
  retry storm, while any single job's schedule stays reproducible.
* **Poison-job quarantine** — a job whose worker dies ``max_job_retries``
  times is parked as ``quarantined`` with its traceback; it can never
  wedge the queue.
* **Dedup** — submissions hash to a content key
  (:meth:`~repro.serve.spec.CampaignSpec.key`); a same-key submission
  rides the existing job ("follower") and resolves with it — one
  execution, one cache entry, N answers.
* **Graceful drain** — SIGTERM (or the ``control/drain`` marker) stops
  admission, SIGTERMs workers (which checkpoint and exit), journals the
  interrupts, snapshots, and exits 0.  Interrupted jobs are requeued with
  no retry charge: a drain is not the job's fault.
"""

from __future__ import annotations

import errno
import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..faultinjection.resilience import jittered_backoff, quarantine_file
from ..obs.heartbeat import pid_alive, read_heartbeat
from ..obs.metrics import global_registry
from .journal import (
    Journal,
    load_state_snapshot,
    read_journal,
    save_state_snapshot,
)
from .queue import ACTIVE_STATES, FairScheduler, Job, JobState, QueueState
from .spec import DEFAULT_TENANT, CampaignSpec
from .worker import (
    EXIT_DONE,
    EXIT_INTERRUPTED,
    execute_job,
    job_paths,
    load_result,
    write_json_atomic,
)

__all__ = ["ServiceConfig", "Service", "ServicePaths", "service_paths"]

#: service heartbeat schema marker (distinguishes it from campaign docs)
SERVICE_HEARTBEAT_KIND = "service"

#: sentinel exit code for "exit 0 but no result.json" (never a real rc)
EXIT_FAILED_NO_RESULT = 1001

#: env vars scrubbed from (and around) workers: either they could change
#: campaign *bytes* (REPRO_OBS_TIMING) or they would misroute artifacts the
#: service owns the paths of.  A spec must compute the same campaign on
#: every host, whatever the operator's shell exports.
SCRUBBED_WORKER_ENV = (
    "REPRO_OBS", "REPRO_OBS_TIMING", "REPRO_TRACE", "REPRO_HEARTBEAT",
    "REPRO_CHECKPOINT", "REPRO_CHECKPOINT_DIR", "REPRO_FAULT_MODEL",
    "REPRO_TRIALS", "REPRO_JOBS",
)


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, ""))
    except ValueError:
        return default


@dataclass
class ServiceConfig:
    """Tunables of one service process (CLI flags override env defaults)."""

    root: str
    #: concurrent jobs (worker subprocesses); REPRO_SERVE_WORKERS default
    workers: int = 2
    #: admission bound: queued + running jobs; submissions past it are shed
    max_depth: int = 256
    #: failed attempts before a job is quarantined as poison
    max_job_retries: int = 3
    #: base retry backoff (doubles per attempt, deterministic jitter)
    backoff_seconds: float = 0.5
    #: journal appends between state snapshots
    snapshot_every: int = 50
    #: idle loop sleep + minimum heartbeat refresh interval
    poll_interval: float = 0.05
    heartbeat_interval: float = 0.5
    #: run jobs in-process instead of subprocesses (tests, load drives)
    inline: bool = False
    #: exit 0 once every admitted job is terminal and the inbox is empty
    until_idle: bool = False
    #: seconds to wait for SIGTERMed workers before giving up the drain
    drain_grace: float = 30.0

    @classmethod
    def from_env(cls, root: str, **overrides) -> "ServiceConfig":
        config = cls(
            root=root,
            workers=max(1, _env_int("REPRO_SERVE_WORKERS", 2)),
            max_depth=max(1, _env_int("REPRO_SERVE_DEPTH", 256)),
            max_job_retries=max(1, _env_int("REPRO_SERVE_RETRIES", 3)),
        )
        for name, value in overrides.items():
            if value is not None:
                setattr(config, name, value)
        return config


@dataclass(frozen=True)
class ServicePaths:
    root: str
    journal: str
    state: str
    heartbeat: str
    inbox: str
    control: str
    drain_marker: str


def service_paths(root) -> ServicePaths:
    root = os.fspath(root)
    control = os.path.join(root, "control")
    return ServicePaths(
        root=root,
        journal=os.path.join(root, "journal.jsonl"),
        state=os.path.join(root, "state.json"),
        heartbeat=os.path.join(root, "service.json"),
        inbox=os.path.join(root, "inbox"),
        control=control,
        drain_marker=os.path.join(control, "drain"),
    )


def _preexec_pdeathsig():  # pragma: no cover - runs post-fork, pre-exec
    """Linux: have the kernel SIGKILL the worker if the service dies.

    A SIGKILLed service must not leave orphan workers writing into job
    directories the restarted service will re-dispatch.  Recovery also
    best-effort kills recorded worker pids, but the kernel tie is the one
    that cannot race.
    """
    try:
        import ctypes

        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, signal.SIGKILL, 0, 0, 0)  # PR_SET_PDEATHSIG
    except Exception:
        pass


def _pid_is_job_worker(pid, job_id: str) -> bool:
    """Does this pid still run ``repro.serve exec-job`` for this job?

    After service downtime the recorded pid may have been recycled by an
    unrelated process (or belong to another user — ``pid_alive`` reports
    those alive on ``PermissionError``), so recovery must never kill on an
    existence check alone.  The cmdline is read from ``/proc`` (Linux);
    anywhere it cannot be read the answer is False — skipping the kill is
    always safe, because the journaled ``interrupt`` requeues the job and
    the PR_SET_PDEATHSIG tie reaps true orphans on Linux anyway.
    """
    try:
        pid = int(pid)
    except (TypeError, ValueError):
        return False
    if pid <= 0:
        return False
    try:
        with open(f"/proc/{pid}/cmdline", "rb") as fh:
            argv = fh.read().split(b"\0")
    except OSError:
        return False
    args = [arg.decode("utf-8", "replace") for arg in argv if arg]
    return "exec-job" in args and job_id in args


@dataclass
class _LiveWorker:
    job_id: str
    proc: Optional[subprocess.Popen]
    log: Optional[object] = None
    terminated: bool = False


class Service:
    """One long-lived queue/dispatch process over a service root."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.paths = service_paths(config.root)
        os.makedirs(self.paths.inbox, exist_ok=True)
        os.makedirs(self.paths.control, exist_ok=True)
        self.state = QueueState()
        self.scheduler = FairScheduler()
        self.journal: Optional[Journal] = None
        self.live: Dict[str, _LiveWorker] = {}
        self.draining = False
        self._drain_requested = False
        self._appends_since_snapshot = 0
        self._last_heartbeat = 0.0
        self._started_unix = time.time()

    # -- durability ---------------------------------------------------------

    def _record(self, record: Dict) -> None:
        """Journal a transition, then (and only then) apply it."""
        record.setdefault("ts", round(time.time(), 3))
        assert self.journal is not None
        self.journal.append(record)
        self.state.apply(record)
        kind = record.get("type", "?")
        global_registry().counter(f"queue.{kind}").inc()
        self._appends_since_snapshot += 1
        if self._appends_since_snapshot >= self.config.snapshot_every:
            self.snapshot()

    def snapshot(self) -> None:
        assert self.journal is not None
        save_state_snapshot(
            self.paths.state, self.state.to_doc(), self.journal.offset
        )
        self._appends_since_snapshot = 0

    # -- recovery -----------------------------------------------------------

    def recover(self) -> None:
        """Rebuild the queue from snapshot + journal tail; requeue casualties.

        Any job the previous incarnation left ``running`` is a crash
        casualty: if its recorded worker pid still runs the expected
        ``exec-job`` command (cmdline-verified — a recycled pid must never
        get an innocent process killed) it is SIGKILLed so no orphan keeps
        writing into the job directory, and the job is journaled
        ``interrupt`` — requeued with no retry charge, resuming from its
        campaign checkpoint.
        """
        loaded = load_state_snapshot(self.paths.state)
        offset = 0
        if loaded is not None:
            state_doc, offset = loaded
            self.state = QueueState.from_doc(state_doc)
        records, _ = read_journal(self.paths.journal, offset)
        for record in records:
            self.state.apply(record)
        self.journal = Journal(self.paths.journal)
        # The previous incarnation may have died mid-drain; a fresh service
        # accepts work again.
        if self.state.draining:
            self._record({"type": "resume"})
        for job in self.state.in_state(JobState.RUNNING):
            if job.pid and pid_alive(job.pid) \
                    and _pid_is_job_worker(job.pid, job.id):
                try:
                    os.kill(int(job.pid), signal.SIGKILL)
                except OSError:
                    pass
            self._record({"type": "interrupt", "job": job.id,
                          "reason": "service restart"})
        self.snapshot()

    # -- admission ----------------------------------------------------------

    def submit(self, spec: CampaignSpec, tenant: str = DEFAULT_TENANT,
               job_id: Optional[str] = None) -> Job:
        """Admit one submission (validate → shed / dedup / enqueue).

        Always returns the resulting :class:`Job` — possibly terminal
        (``shed``) — so callers get an immediate, journaled answer.
        Re-submitting an id the journal already knows is a no-op returning
        the existing job (inbox replay after a crash must be idempotent).
        """
        job_id = job_id or os.urandom(6).hex()
        existing = self.state.jobs.get(job_id)
        if existing is not None:
            return existing
        tenant = tenant or DEFAULT_TENANT
        reason = spec.validate()
        key = spec.key() if reason is None else ""
        base = {
            "job": job_id, "tenant": tenant, "spec": spec.to_dict(),
            "key": key,
        }
        if reason is not None:
            self._record({"type": "shed", "reason": f"invalid spec: {reason}",
                          **base})
        elif self.draining or self.state.draining:
            self._record({"type": "shed", "reason": "service draining",
                          **base})
        else:
            primary = self.state.active_primary_for(key)
            if primary is not None:
                self._record({"type": "dedup", "primary": primary.id, **base})
            elif self.state.depth() >= self.config.max_depth:
                self._record({
                    "type": "shed",
                    "reason": (f"queue full: depth {self.state.depth()} >= "
                               f"bound {self.config.max_depth}"),
                    **base,
                })
            else:
                self._record({"type": "submit", **base})
        return self.state.jobs[job_id]

    def _poll_inbox(self) -> bool:
        """Admit every parseable inbox drop; quarantine the unparseable."""
        if self.draining:
            return False
        try:
            entries = []
            for name in os.listdir(self.paths.inbox):
                if not name.endswith(".json") or name.startswith("."):
                    continue
                path = os.path.join(self.paths.inbox, name)
                try:
                    mtime = os.stat(path).st_mtime_ns
                except OSError:
                    continue  # consumed by a concurrent actor
                entries.append((mtime, name))
            # FIFO admission: submission time, not the (random) id, orders
            # the queue.
            names = [name for _, name in sorted(entries)]
        except OSError:
            return False
        progressed = False
        for name in names:
            path = os.path.join(self.paths.inbox, name)
            try:
                with open(path, encoding="utf-8") as fh:
                    doc = json.load(fh)
                if not isinstance(doc, dict):
                    raise ValueError("submission is not a JSON object")
                spec = CampaignSpec.from_dict(doc.get("spec") or {})
                job_id = str(doc.get("id") or "") or None
                tenant = str(doc.get("tenant") or DEFAULT_TENANT)
            except Exception:
                # Submissions are untrusted: *any* parse failure — bad JSON,
                # wrong shapes, exotic types — quarantines the drop rather
                # than crashing the loop (a poison file in the inbox would
                # otherwise wedge every restart).
                quarantine_file(path)
                global_registry().counter("queue.inbox_corrupt").inc()
                progressed = True
                continue
            self.submit(spec, tenant=tenant, job_id=job_id)
            try:
                os.unlink(path)
            except OSError:
                pass
            progressed = True
        return progressed

    # -- dispatch -----------------------------------------------------------

    def _write_job_spec(self, job: Job) -> None:
        paths = job_paths(self.paths.root, job.id)
        if not os.path.exists(paths.spec):
            write_json_atomic(paths.spec, job.spec)

    def _worker_env(self) -> Dict[str, str]:
        env = dict(os.environ)
        for name in SCRUBBED_WORKER_ENV:
            env.pop(name, None)
        import repro

        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)
        ))
        existing = env.get("PYTHONPATH", "")
        parts = [package_root] + ([existing] if existing else [])
        env["PYTHONPATH"] = os.pathsep.join(parts)
        return env

    def _dispatch(self) -> bool:
        progressed = False
        while (len(self.live) < self.config.workers and not self.draining
               and not self._drain_requested):
            job = self.scheduler.pick(self.state)
            if job is None:
                break
            self._write_job_spec(job)
            self.scheduler.forget(job.id)
            if self.config.inline:
                self._record({"type": "start", "job": job.id,
                              "pid": os.getpid()})
                self.write_heartbeat(force=True)
                code = execute_job(
                    self.paths.root, job.id,
                    spec=CampaignSpec.from_dict(job.spec),
                )
                self._settle(job.id, code, drained=self._drain_requested)
            else:
                worker = self._spawn(job)
                self.live[job.id] = worker
                self._record({"type": "start", "job": job.id,
                              "pid": worker.proc.pid})
            progressed = True
        return progressed

    def _spawn(self, job: Job) -> _LiveWorker:
        paths = job_paths(self.paths.root, job.id)
        os.makedirs(paths.directory, exist_ok=True)
        log = open(os.path.join(paths.directory, "worker.log"), "ab")
        kwargs = {}
        if sys.platform.startswith("linux"):
            kwargs["preexec_fn"] = _preexec_pdeathsig
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "exec-job",
             "--root", self.paths.root, "--job", job.id],
            stdout=log, stderr=subprocess.STDOUT,
            env=self._worker_env(), **kwargs,
        )
        return _LiveWorker(job_id=job.id, proc=proc, log=log)

    # -- reaping ------------------------------------------------------------

    def _reap(self) -> bool:
        progressed = False
        for job_id in list(self.live):
            worker = self.live[job_id]
            code = worker.proc.poll()
            if code is None:
                continue
            if worker.log is not None:
                try:
                    worker.log.close()
                except OSError:
                    pass
            del self.live[job_id]
            self._settle(job_id, code, drained=worker.terminated)
            progressed = True
        return progressed

    def _settle(self, job_id: str, code: int, drained: bool) -> None:
        """Journal the outcome of one worker exit."""
        job = self.state.jobs.get(job_id)
        if job is None:  # journal truncation artifact; nothing to settle
            return
        paths = job_paths(self.paths.root, job_id)
        if code == EXIT_DONE:
            if load_result(paths.result) is not None:
                self._record({"type": "done", "job": job_id})
                return
            code = EXIT_FAILED_NO_RESULT
        if code == EXIT_INTERRUPTED or (drained and code < 0):
            self._record({"type": "interrupt", "job": job_id,
                          "reason": "drain" if drained else "interrupted"})
            return
        attempt = job.attempts + 1
        error = self._attempt_error(paths, code)
        if attempt >= self.config.max_job_retries:
            self._record({"type": "quarantine", "job": job_id,
                          "attempt": attempt, "error": error})
            return
        self._record({"type": "fail", "job": job_id, "attempt": attempt,
                      "error": error})
        delay = jittered_backoff(
            self.config.backoff_seconds, attempt, key=job.key or job_id
        )
        self.scheduler.delay(job_id, time.monotonic() + delay)

    @staticmethod
    def _attempt_error(paths, code: int) -> str:
        try:
            with open(paths.error, encoding="utf-8") as fh:
                text = fh.read().strip()
            if text:
                return text[-4000:]
        except OSError:
            pass
        if code < 0:
            return f"worker killed by signal {-code}"
        if code == EXIT_FAILED_NO_RESULT:
            return "worker exited 0 without writing a result"
        return f"worker exited with code {code}"

    # -- drain --------------------------------------------------------------

    def request_drain(self) -> None:
        self._drain_requested = True

    def _begin_drain(self) -> None:
        if self.draining:
            return
        self.draining = True
        self._record({"type": "drain"})
        for worker in self.live.values():
            worker.terminated = True
            try:
                worker.proc.terminate()
            except OSError:
                pass
        try:
            os.unlink(self.paths.drain_marker)
        except OSError:
            pass

    def _finish_drain(self) -> int:
        deadline = time.monotonic() + self.config.drain_grace
        while self.live and time.monotonic() < deadline:
            self._reap()
            time.sleep(self.config.poll_interval)
        # Workers that ignored SIGTERM get the axe; their checkpoints cover
        # whatever they had flushed.
        for worker in list(self.live.values()):
            try:
                worker.proc.kill()
                worker.proc.wait(timeout=5)
            except (OSError, subprocess.TimeoutExpired):
                pass
        self._reap()
        for job_id in list(self.live):
            del self.live[job_id]
            self._settle(job_id, -signal.SIGKILL, drained=True)
        self.snapshot()
        self.write_heartbeat(status="stopped", force=True)
        return 0

    # -- heartbeat ----------------------------------------------------------

    def _job_row(self, job: Job) -> Dict:
        row = {
            "id": job.id, "tenant": job.tenant, "state": job.state,
            "spec": CampaignSpec.from_dict(job.spec).describe(),
            "attempts": job.attempts,
        }
        if job.state == JobState.RUNNING:
            beat = read_heartbeat(job_paths(self.paths.root, job.id).heartbeat)
            if beat is not None:
                row["trials_done"] = beat.get("trials_done", 0)
                row["trials_total"] = beat.get("trials_total", 0)
        return row

    def heartbeat_document(self, status: str = "running") -> Dict:
        active = self.state.in_state(*ACTIVE_STATES)
        rows = [self._job_row(job) for job in active[:50]]
        return {
            "v": 1,
            "kind": SERVICE_HEARTBEAT_KIND,
            "status": "draining" if self.draining and status == "running"
                      else status,
            "pid": os.getpid(),
            "updated_unix": round(time.time(), 3),
            "started_unix": round(self._started_unix, 3),
            "depth": self.state.depth(),
            "max_depth": self.config.max_depth,
            "workers": self.config.workers,
            "workers_busy": len(self.live),
            "counts": self.state.counts(),
            "counters": dict(self.state.counters),
            "jobs": rows,
        }

    def write_heartbeat(self, status: str = "running",
                        force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_heartbeat < \
                self.config.heartbeat_interval:
            return
        self._last_heartbeat = now
        try:
            write_json_atomic(self.paths.heartbeat,
                              self.heartbeat_document(status))
        except OSError:  # pragma: no cover - telemetry is best effort
            pass

    # -- main loop ----------------------------------------------------------

    def _idle(self) -> bool:
        if self.live or self.state.in_state(*ACTIVE_STATES):
            return False
        try:
            pending = any(
                name.endswith(".json") and not name.startswith(".")
                for name in os.listdir(self.paths.inbox)
            )
        except OSError:
            pending = False
        return not pending

    def run(self) -> int:
        """The service loop; returns the process exit code."""
        for name in ("REPRO_OBS_TIMING",):
            os.environ.pop(name, None)  # inline workers share this process
        self.recover()

        def _on_signal(signum, frame):
            self._drain_requested = True

        installed: List = []
        for signame in ("SIGTERM", "SIGINT"):
            signum = getattr(signal, signame, None)
            if signum is None:
                continue
            try:
                installed.append((signum, signal.signal(signum, _on_signal)))
            except ValueError:  # non-main thread (tests)
                pass
        try:
            self.write_heartbeat(force=True)
            while True:
                if self._drain_requested or \
                        os.path.exists(self.paths.drain_marker):
                    self._begin_drain()
                if self.draining:
                    return self._finish_drain()
                progressed = self._poll_inbox()
                progressed |= self._reap()
                progressed |= self._dispatch()
                self.write_heartbeat(force=progressed)
                if self.config.until_idle and self._idle():
                    self.snapshot()
                    self.write_heartbeat(status="stopped", force=True)
                    return 0
                if not progressed:
                    time.sleep(self.config.poll_interval)
        finally:
            for signum, previous in installed:
                try:
                    signal.signal(signum, previous)
                except ValueError:
                    pass
            if self.journal is not None:
                self.journal.close()
                self.journal = None
