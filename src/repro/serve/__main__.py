"""Campaign service CLI.

Usage::

    python -m repro.serve run     --root R [--workers N] [--max-depth N]
                                  [--max-retries N] [--inline] [--until-idle]
    python -m repro.serve submit  --root R --workload W --scheme S
                                  [--trials N] [--seed N] [--fault-model M]
                                  [--jobs N] [--tenant T] [--wait] [--timeout S]
    python -m repro.serve status  --root R [--job ID] [--json]
    python -m repro.serve results --root R --job ID [--wait] [--timeout S]
    python -m repro.serve drain   --root R [--wait] [--timeout S]
    python -m repro.serve exec-job --root R --job ID          (internal)

``submit`` prints the job id on stdout (one token, script-friendly) and
exits 0 once the submission file is durably in the inbox; with ``--wait``
it blocks until the job is terminal and exits non-zero unless it is
``done``.  ``status`` renders the queue rebuilt read-only from the journal
— it needs no live service.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from . import client
from .queue import JobState
from .spec import DEFAULT_TENANT, CampaignSpec
from .service import Service, ServiceConfig
from .worker import execute_job


def _cmd_run(args) -> int:
    config = ServiceConfig.from_env(
        args.root,
        workers=args.workers,
        max_depth=args.max_depth,
        max_job_retries=args.max_retries,
        backoff_seconds=args.backoff,
        inline=args.inline or None,
        until_idle=args.until_idle or None,
    )
    return Service(config).run()


def _spec_from_args(args) -> CampaignSpec:
    return CampaignSpec(
        workload=args.workload,
        scheme=args.scheme,
        trials=args.trials,
        seed=args.seed,
        fault_model=args.fault_model,
        jobs=args.jobs,
        swap_train_test=args.swap_train_test,
    )


def _cmd_submit(args) -> int:
    job_id = client.submit_to_inbox(
        args.root, _spec_from_args(args), tenant=args.tenant
    )
    print(job_id)
    if not args.wait:
        return 0
    job = client.wait_for_terminal(args.root, job_id, timeout=args.timeout)
    if job is None:
        print(f"submit: timed out after {args.timeout:g}s", file=sys.stderr)
        return 2
    if job.state != JobState.DONE:
        print(f"submit: job {job_id} ended {job.state}: {job.error or ''}",
              file=sys.stderr)
        return 1
    return 0


def _render_job(job) -> str:
    spec = CampaignSpec.from_dict(job.spec)
    line = (f"{job.id}  {job.state:<12} tenant={job.tenant:<10} "
            f"{spec.describe()}")
    if job.attempts:
        line += f"  attempts={job.attempts}"
    if job.primary:
        line += f"  primary={job.primary}"
    if job.error:
        line += f"  error={job.error.splitlines()[-1][:80]}"
    return line


def _cmd_status(args) -> int:
    state = client.load_queue_state(args.root)
    if args.job:
        job = state.jobs.get(args.job)
        if job is None:
            print(f"status: unknown job {args.job}", file=sys.stderr)
            return 1
        if args.json:
            json.dump(job.to_doc(), sys.stdout, indent=2)
            sys.stdout.write("\n")
        else:
            print(_render_job(job))
        return 0
    doc = client.service_status(args.root)
    if args.json:
        payload = {
            "service": doc,
            "counts": state.counts(),
            "counters": dict(state.counters),
            "jobs": [state.jobs[k].to_doc() for k in sorted(state.jobs)],
        }
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0
    if doc is not None:
        print(f"service: status={doc.get('status')} pid={doc.get('pid')} "
              f"depth={doc.get('depth')}/{doc.get('max_depth')} "
              f"workers={doc.get('workers_busy')}/{doc.get('workers')}")
    counts = state.counts()
    print("queue:  " + "  ".join(
        f"{name}={counts[name]}" for name in JobState.ALL
    ))
    for job in state.in_state(*JobState.ALL):
        print(_render_job(job))
    return 0


def _cmd_results(args) -> int:
    if args.wait:
        job = client.wait_for_terminal(args.root, args.job,
                                       timeout=args.timeout)
        if job is None:
            print(f"results: timed out after {args.timeout:g}s",
                  file=sys.stderr)
            return 2
    state = client.load_queue_state(args.root)
    job = state.jobs.get(args.job)
    if job is None:
        print(f"results: unknown job {args.job}", file=sys.stderr)
        return 1
    if job.state in (JobState.SHED, JobState.QUARANTINED):
        print(f"results: job {args.job} was {job.state}: {job.error or ''}",
              file=sys.stderr)
        return 1
    result = client.result_for(args.root, args.job, state=state)
    if result is None:
        print(f"results: job {args.job} has no result yet "
              f"(state={job.state})", file=sys.stderr)
        return 1
    json.dump(result, sys.stdout, indent=2 if args.pretty else None)
    sys.stdout.write("\n")
    return 0


def _cmd_drain(args) -> int:
    client.request_drain(args.root)
    if not args.wait:
        return 0
    deadline = time.monotonic() + args.timeout
    while time.monotonic() < deadline:
        doc = client.service_status(args.root)
        if doc is None or doc.get("status") == "stopped":
            return 0
        time.sleep(0.2)
    print(f"drain: service still running after {args.timeout:g}s",
          file=sys.stderr)
    return 2


def _cmd_exec_job(args) -> int:
    return execute_job(args.root, args.job)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Crash-safe multi-tenant campaign service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the service loop (foreground)")
    run.add_argument("--root", required=True,
                     help="service root directory (journal, inbox, jobs)")
    run.add_argument("--workers", type=int, default=None, metavar="N",
                     help="concurrent jobs (default: REPRO_SERVE_WORKERS/2)")
    run.add_argument("--max-depth", type=int, default=None, metavar="N",
                     help="admission bound on queued+running jobs "
                          "(default: REPRO_SERVE_DEPTH/256)")
    run.add_argument("--max-retries", type=int, default=None, metavar="N",
                     help="failed attempts before poison quarantine "
                          "(default: REPRO_SERVE_RETRIES/3)")
    run.add_argument("--backoff", type=float, default=None, metavar="SECONDS",
                     help="base retry backoff (default 0.5)")
    run.add_argument("--inline", action="store_true",
                     help="execute jobs in-process (tests, single-host "
                          "load drives)")
    run.add_argument("--until-idle", action="store_true",
                     help="exit 0 once all jobs are terminal and the inbox "
                          "is empty")
    run.set_defaults(func=_cmd_run)

    submit = sub.add_parser("submit", help="queue one campaign")
    submit.add_argument("--root", required=True)
    submit.add_argument("--workload", required=True)
    submit.add_argument("--scheme", required=True)
    submit.add_argument("--trials", type=int, default=100)
    submit.add_argument("--seed", type=int, default=2014)
    submit.add_argument("--fault-model", default=None)
    submit.add_argument("--jobs", type=int, default=1,
                        help="worker processes inside the campaign")
    submit.add_argument("--swap-train-test", action="store_true")
    submit.add_argument("--tenant", default=DEFAULT_TENANT)
    submit.add_argument("--wait", action="store_true",
                        help="block until the job is terminal")
    submit.add_argument("--timeout", type=float, default=600.0)
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser("status", help="show queue + service state")
    status.add_argument("--root", required=True)
    status.add_argument("--job", default=None, metavar="ID")
    status.add_argument("--json", action="store_true")
    status.set_defaults(func=_cmd_status)

    results = sub.add_parser("results", help="print a job's campaign result")
    results.add_argument("--root", required=True)
    results.add_argument("--job", required=True, metavar="ID")
    results.add_argument("--wait", action="store_true")
    results.add_argument("--timeout", type=float, default=600.0)
    results.add_argument("--pretty", action="store_true")
    results.set_defaults(func=_cmd_results)

    drain = sub.add_parser("drain", help="ask the service to drain and exit")
    drain.add_argument("--root", required=True)
    drain.add_argument("--wait", action="store_true")
    drain.add_argument("--timeout", type=float, default=60.0)
    drain.set_defaults(func=_cmd_drain)

    exec_job = sub.add_parser("exec-job",
                              help="internal: run one admitted job")
    exec_job.add_argument("--root", required=True)
    exec_job.add_argument("--job", required=True)
    exec_job.set_defaults(func=_cmd_exec_job)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pipe reader (head, grep -q) closed early: clean exit.
        return 0


if __name__ == "__main__":
    sys.exit(main())
