"""``repro.serve`` — the crash-safe, multi-tenant campaign service.

Composes the existing primitives — deterministic pre-drawn campaigns,
sha256-keyed disk cache and checkpoints, resilience policies, obs event
logs and heartbeats — behind a durable submit/status/results queue.  See
``docs/SERVICE.md`` for the journal format and the admission, dedup,
fairness, and drain guarantees; ``python -m repro.serve --help`` for the
CLI.
"""

from .client import (
    load_queue_state,
    request_drain,
    result_for,
    service_status,
    submit_to_inbox,
    wait_for_result,
    wait_for_terminal,
)
from .journal import Journal, read_journal
from .queue import FairScheduler, Job, JobState, QueueState
from .service import Service, ServiceConfig, service_paths
from .spec import DEFAULT_TENANT, CampaignSpec
from .worker import execute_job, job_paths, load_result

__all__ = [
    "CampaignSpec",
    "DEFAULT_TENANT",
    "FairScheduler",
    "Job",
    "JobState",
    "Journal",
    "QueueState",
    "Service",
    "ServiceConfig",
    "execute_job",
    "job_paths",
    "load_queue_state",
    "load_result",
    "read_journal",
    "request_drain",
    "result_for",
    "service_paths",
    "service_status",
    "submit_to_inbox",
    "wait_for_result",
    "wait_for_terminal",
]
