"""Queue state machine: jobs, the journal reducer, and fair scheduling.

The state machine is deliberately a *pure reducer*: the live service and
crash recovery build the exact same :class:`QueueState` by feeding journal
records through :meth:`QueueState.apply`, so there is no way for the
in-memory queue and the durable journal to disagree about a transition.

Job lifecycle::

    submit ──────────────► queued ──start──► running ──done──► done
       │                     ▲                  │
       │ (over depth bound,  │   fail (attempt < retry budget,
       │  invalid spec)      └──────────────────┤    backoff + jitter)
       ├──► shed             interrupt          │
       │   (terminal)        (service died /    └─quarantine──► quarantined
       │                      drain: requeued,       (terminal, traceback
       └──► deduped ──(primary done)──► done          preserved)
            (follower of an identical spec)

*Interrupt* transitions never consume retry budget: a drained or SIGKILLed
service is not the job's fault, and the campaign-level checkpoint makes the
re-run byte-identical.  *Fail* transitions do; a job that kills its workers
``max_job_retries`` times is parked as ``quarantined`` with its traceback —
it can never wedge the queue, and the evidence is preserved for diagnosis.

Fairness is round-robin **across tenants**, not across jobs: the scheduler
cycles tenants that have an eligible queued job and takes the oldest job of
each, so one tenant submitting 10k campaigns cannot starve another tenant's
single job behind them.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["ACTIVE_STATES", "Job", "JobState", "QueueState", "FairScheduler"]


class JobState:
    """String states (JSON-friendly; see the module docstring diagram)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    SHED = "shed"
    DEDUPED = "deduped"
    QUARANTINED = "quarantined"

    ALL = (QUEUED, RUNNING, DONE, SHED, DEDUPED, QUARANTINED)
    TERMINAL = (DONE, SHED, QUARANTINED)


#: states that count against the admission depth bound
ACTIVE_STATES = (JobState.QUEUED, JobState.RUNNING)


@dataclass
class Job:
    """One submission's durable record."""

    id: str
    tenant: str
    spec: Dict
    key: str
    state: str = JobState.QUEUED
    #: execution attempts that *failed* (interrupts don't count)
    attempts: int = 0
    #: job id this deduped follower rides on (followers never execute)
    primary: Optional[str] = None
    #: why the job was shed, or the traceback that quarantined it
    error: Optional[str] = None
    #: admission sequence number (FIFO order within a tenant)
    seq: int = 0
    #: pid of the worker currently executing the job (running state only)
    pid: Optional[int] = None

    def to_doc(self) -> Dict:
        doc = {
            "id": self.id, "tenant": self.tenant, "spec": self.spec,
            "key": self.key, "state": self.state, "attempts": self.attempts,
            "seq": self.seq,
        }
        if self.primary is not None:
            doc["primary"] = self.primary
        if self.error is not None:
            doc["error"] = self.error
        if self.pid is not None:
            doc["pid"] = self.pid
        return doc

    @classmethod
    def from_doc(cls, doc: Dict) -> "Job":
        return cls(
            id=doc["id"], tenant=doc.get("tenant", ""),
            spec=doc.get("spec") or {}, key=doc.get("key", ""),
            state=doc.get("state", JobState.QUEUED),
            attempts=int(doc.get("attempts", 0)),
            primary=doc.get("primary"), error=doc.get("error"),
            seq=int(doc.get("seq", 0)), pid=doc.get("pid"),
        )


class QueueState:
    """The reducer: every queue mutation flows through :meth:`apply`."""

    def __init__(self) -> None:
        self.jobs: Dict[str, Job] = {}
        self.seq = 0
        #: monotone tallies (survive snapshots; feed the service heartbeat)
        self.counters: Dict[str, int] = {}
        self.draining = False

    # -- reducer ------------------------------------------------------------

    def apply(self, record: Dict) -> None:
        """Fold one journal record into the state.

        Unknown record types and references to unknown jobs are ignored
        (never raise): recovery must always make it through a journal that
        a newer — or corrupted-then-truncated — service version wrote.
        """
        kind = record.get("type")
        handler = getattr(self, f"_apply_{kind}", None)
        if handler is not None:
            handler(record)

    def _count(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by

    def _apply_submit(self, record: Dict) -> None:
        job = Job(
            id=record["job"], tenant=record.get("tenant", ""),
            spec=record.get("spec") or {}, key=record.get("key", ""),
            state=JobState.QUEUED, seq=self.seq,
        )
        self.seq += 1
        self.jobs[job.id] = job
        self._count("submitted")
        self._count("admitted")

    def _apply_shed(self, record: Dict) -> None:
        job = Job(
            id=record["job"], tenant=record.get("tenant", ""),
            spec=record.get("spec") or {}, key=record.get("key", ""),
            state=JobState.SHED, error=record.get("reason"), seq=self.seq,
        )
        self.seq += 1
        self.jobs[job.id] = job
        self._count("submitted")
        self._count("shed")

    def _apply_dedup(self, record: Dict) -> None:
        primary = self.jobs.get(record.get("primary", ""))
        job = Job(
            id=record["job"], tenant=record.get("tenant", ""),
            spec=record.get("spec") or {},
            key=record.get("key", ""),
            state=JobState.DEDUPED, primary=record.get("primary"),
            seq=self.seq,
        )
        self.seq += 1
        # A follower of an already-finished primary is done on arrival; a
        # follower of a quarantined primary shares its fate (never wedges).
        if primary is not None and primary.state == JobState.DONE:
            job.state = JobState.DONE
        elif primary is not None and primary.state == JobState.QUARANTINED:
            job.state = JobState.QUARANTINED
            job.error = f"primary {primary.id} quarantined"
        self.jobs[job.id] = job
        self._count("submitted")
        self._count("deduped")

    def _apply_start(self, record: Dict) -> None:
        job = self.jobs.get(record.get("job", ""))
        if job is not None:
            job.state = JobState.RUNNING
            job.pid = record.get("pid")
            self._count("started")

    def _apply_done(self, record: Dict) -> None:
        job = self.jobs.get(record.get("job", ""))
        if job is None:
            return
        job.state = JobState.DONE
        job.pid = None
        self._count("done")
        for follower in self.followers(job.id):
            if follower.state == JobState.DEDUPED:
                follower.state = JobState.DONE

    def _apply_fail(self, record: Dict) -> None:
        job = self.jobs.get(record.get("job", ""))
        if job is not None:
            job.state = JobState.QUEUED
            job.attempts = int(record.get("attempt", job.attempts + 1))
            job.error = record.get("error")
            job.pid = None
            self._count("failed")

    def _apply_interrupt(self, record: Dict) -> None:
        job = self.jobs.get(record.get("job", ""))
        if job is not None and job.state == JobState.RUNNING:
            job.state = JobState.QUEUED  # attempts deliberately unchanged
            job.pid = None
            self._count("interrupted")

    def _apply_quarantine(self, record: Dict) -> None:
        job = self.jobs.get(record.get("job", ""))
        if job is None:
            return
        job.state = JobState.QUARANTINED
        job.attempts = int(record.get("attempt", job.attempts))
        job.error = record.get("error")
        job.pid = None
        self._count("quarantined")
        for follower in self.followers(job.id):
            if follower.state == JobState.DEDUPED:
                follower.state = JobState.QUARANTINED
                follower.error = f"primary {job.id} quarantined"

    def _apply_drain(self, record: Dict) -> None:
        self.draining = True

    def _apply_resume(self, record: Dict) -> None:
        self.draining = False

    # -- queries ------------------------------------------------------------

    def followers(self, primary_id: str) -> List[Job]:
        return [j for j in self.jobs.values() if j.primary == primary_id]

    def in_state(self, *states: str) -> List[Job]:
        wanted = set(states)
        return sorted(
            (j for j in self.jobs.values() if j.state in wanted),
            key=lambda j: j.seq,
        )

    def depth(self) -> int:
        """Jobs counting against the admission bound (queued + running)."""
        return sum(1 for j in self.jobs.values() if j.state in ACTIVE_STATES)

    def active_primary_for(self, key: str) -> Optional[Job]:
        """The job a same-key submission should dedup onto, if any.

        Shed and quarantined jobs are not dedup targets (a fresh submission
        of a previously-quarantined spec deserves a fresh chance — maybe the
        environment was fixed); followers chain one hop to their primary so
        dedup never builds linked lists.
        """
        best: Optional[Job] = None
        for job in self.jobs.values():
            if job.key != key:
                continue
            if job.state in (JobState.SHED, JobState.QUARANTINED):
                continue
            candidate = job
            if job.state == JobState.DEDUPED and job.primary in self.jobs:
                candidate = self.jobs[job.primary]
            if candidate.state in (JobState.SHED, JobState.QUARANTINED):
                continue
            if best is None or candidate.seq < best.seq:
                best = candidate
        return best

    def counts(self) -> Dict[str, int]:
        out = {state: 0 for state in JobState.ALL}
        for job in self.jobs.values():
            out[job.state] += 1
        return out

    # -- snapshot round-trip --------------------------------------------------

    def to_doc(self) -> Dict:
        return {
            "seq": self.seq,
            "draining": self.draining,
            "counters": dict(self.counters),
            "jobs": [self.jobs[k].to_doc() for k in sorted(self.jobs)],
        }

    @classmethod
    def from_doc(cls, doc: Dict) -> "QueueState":
        state = cls()
        state.seq = int(doc.get("seq", 0))
        state.draining = bool(doc.get("draining", False))
        state.counters = dict(doc.get("counters") or {})
        for job_doc in doc.get("jobs", ()):
            job = Job.from_doc(job_doc)
            state.jobs[job.id] = job
        return state


class FairScheduler:
    """Round-robin across tenants over the queued, backoff-eligible jobs."""

    def __init__(self) -> None:
        self._last_tenant: Optional[str] = None
        #: job id → earliest wall-clock time it may start (retry backoff);
        #: runtime-only on purpose: after a crash, requeued work is eligible
        #: immediately — the backoff exists to break retry storms *within*
        #: a service lifetime, not to delay recovery.
        self.not_before: Dict[str, float] = {}

    def pick(self, state: QueueState,
             now: Optional[float] = None) -> Optional[Job]:
        now = time.monotonic() if now is None else now
        eligible = [
            job for job in state.in_state(JobState.QUEUED)
            if self.not_before.get(job.id, 0.0) <= now
        ]
        if not eligible:
            return None
        by_tenant: Dict[str, List[Job]] = {}
        for job in eligible:  # already seq-sorted: index 0 is the oldest
            by_tenant.setdefault(job.tenant, []).append(job)
        tenants = sorted(by_tenant)
        if self._last_tenant is not None:
            # Rotate past the last-served tenant's sorted position even when
            # it has nothing queued right now, so ties never default to the
            # alphabetically-first tenant.
            at = bisect.bisect_right(tenants, self._last_tenant)
            tenants = tenants[at:] + tenants[:at]
        chosen = tenants[0]
        self._last_tenant = chosen
        return by_tenant[chosen][0]

    def delay(self, job_id: str, until: float) -> None:
        self.not_before[job_id] = until

    def forget(self, job_id: str) -> None:
        self.not_before.pop(job_id, None)
