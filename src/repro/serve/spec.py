"""Campaign specs: the admission currency of the ``repro.serve`` service.

A :class:`CampaignSpec` names one campaign — (workload × scheme × fault
model × trials × seed) — in a canonical, JSON-round-trippable form.  Two
properties matter to the service:

* **Validation happens at admission**, never at execution: an unknown
  workload, scheme, fault model, or nonsensical trial count is rejected
  with a load-shed response before it can reach (and repeatedly kill) a
  worker.  Execution-time failures are therefore always *harness*
  surprises, which is what the poison-job quarantine is for.

* **The content key is semantic.**  :meth:`CampaignSpec.key` is the sha256
  of the result-affecting fields only — ``jobs`` (worker count inside one
  campaign) is excluded because campaign results, obs logs, caches, and
  checkpoints are byte-identical for any value (the house invariant), and
  the submitting tenant is excluded because *who* asked cannot change what
  gets computed.  Two tenants submitting the same campaign therefore hash
  to the same key, which is what lets the service dedup them onto one
  execution and one cache entry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["CampaignSpec", "DEFAULT_TENANT"]

#: tenant recorded for submissions that did not name one
DEFAULT_TENANT = "default"

#: hard ceiling on one spec's trial count — a fat-fingered ``trials=1e9``
#: must shed at admission, not wedge a worker for a week
MAX_TRIALS = 1_000_000


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign request: what to run, under which fault model."""

    workload: str
    scheme: str
    trials: int = 100
    seed: int = 2014
    #: fault model name, or None for the paper default (``single_bit``).
    #: Resolved at validation — the service never consults
    #: ``REPRO_FAULT_MODEL``, so a spec means the same thing on every host.
    fault_model: Optional[str] = None
    #: worker processes *inside* the campaign (``CampaignConfig.jobs``).
    #: Non-semantic: excluded from :meth:`key` because results and logs are
    #: byte-identical for any value.
    jobs: int = 1
    #: the paper's cross-validation input swap (semantic: different inputs)
    swap_train_test: bool = False
    #: free-form labels carried through the journal for reporting; never
    #: part of the key
    labels: Dict[str, str] = field(default_factory=dict)

    # -- validation ---------------------------------------------------------

    def validate(self) -> Optional[str]:
        """Admission check: None when runnable, else a human-readable reason.

        Import-local so the spec module stays cheap to import from clients
        that only submit.
        """
        from ..sim.faults import CHAOS_FAULT_MODEL, FAULT_MODELS
        from ..transforms.pipeline import SCHEMES
        from ..workloads.registry import BENCHMARK_NAMES

        if self.workload not in BENCHMARK_NAMES:
            return f"unknown workload {self.workload!r}"
        if self.scheme not in SCHEMES:
            return f"unknown scheme {self.scheme!r}"
        if not isinstance(self.trials, int) or self.trials < 1:
            return f"trials must be a positive integer, got {self.trials!r}"
        if self.trials > MAX_TRIALS:
            return f"trials {self.trials} exceeds the {MAX_TRIALS} ceiling"
        if not isinstance(self.seed, int):
            return f"seed must be an integer, got {self.seed!r}"
        if (
            self.fault_model is not None
            and self.fault_model != CHAOS_FAULT_MODEL
            and self.fault_model not in FAULT_MODELS
        ):
            return f"unknown fault model {self.fault_model!r}"
        if not isinstance(self.jobs, int) or self.jobs < 0:
            return f"jobs must be a non-negative integer, got {self.jobs!r}"
        return None

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> Dict:
        doc = {
            "workload": self.workload,
            "scheme": self.scheme,
            "trials": self.trials,
            "seed": self.seed,
        }
        if self.fault_model is not None:
            doc["fault_model"] = self.fault_model
        if self.jobs != 1:
            doc["jobs"] = self.jobs
        if self.swap_train_test:
            doc["swap_train_test"] = True
        if self.labels:
            doc["labels"] = dict(self.labels)
        return doc

    @classmethod
    def from_dict(cls, doc: Dict) -> "CampaignSpec":
        """Parse a spec document; raises ``ValueError`` on malformed shapes.

        Submissions are untrusted tenant input: a spec that is not a JSON
        object, or whose ``labels`` is not one, must fail with the same
        exception type as bad JSON so admission quarantines it instead of
        letting an ``AttributeError``/``TypeError`` escape into the service
        loop.
        """
        if not isinstance(doc, dict):
            raise ValueError(
                f"campaign spec must be a JSON object, got {type(doc).__name__}"
            )
        labels = doc.get("labels") or {}
        if not isinstance(labels, dict):
            raise ValueError(
                f"spec labels must be a JSON object, got {type(labels).__name__}"
            )
        return cls(
            workload=doc.get("workload", ""),
            scheme=doc.get("scheme", ""),
            trials=doc.get("trials", 100),
            seed=doc.get("seed", 2014),
            fault_model=doc.get("fault_model"),
            jobs=doc.get("jobs", 1),
            swap_train_test=bool(doc.get("swap_train_test", False)),
            labels=dict(labels),
        )

    # -- content key --------------------------------------------------------

    def key(self) -> str:
        """sha256 over the semantic fields — the service's dedup identity.

        ``fault_model`` is folded in resolved (None → ``single_bit``) so an
        explicit ``single_bit`` and the default collapse to one key; ``jobs``,
        ``labels``, and the tenant never appear.
        """
        payload = {
            "workload": self.workload,
            "scheme": self.scheme,
            "trials": self.trials,
            "seed": self.seed,
            "fault_model": self.fault_model or "single_bit",
            "swap_train_test": self.swap_train_test,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def describe(self) -> str:
        """Short human-readable label (status tables, logs)."""
        model = self.fault_model or "single_bit"
        return (f"{self.workload}/{self.scheme} trials={self.trials} "
                f"seed={self.seed} model={model}")
