"""Client side of the service: submit, observe, and fetch — all file-based.

The service root *is* the API surface.  Clients never need a socket or a
live service process:

* **submit** drops an atomically-written JSON file into ``<root>/inbox/``;
  the service admits it on its next poll.  The submission id doubles as
  the job id, so the client can track its job before admission happens.
* **status** rebuilds the queue read-only from the state snapshot plus the
  journal tail — the exact replay the service itself performs on restart,
  so client and service can never disagree about a job's state.
* **results** follows a deduped follower to its primary and reads the
  primary's atomically-written ``result.json``.
* **drain** touches ``<root>/control/drain``; the service notices, stops
  admitting, checkpoints everything, and exits 0.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional

from .journal import load_state_snapshot, read_journal
from .queue import Job, JobState, QueueState
from .spec import DEFAULT_TENANT, CampaignSpec
from .service import service_paths
from .worker import job_paths, load_result, write_json_atomic

__all__ = [
    "load_queue_state",
    "request_drain",
    "result_for",
    "service_status",
    "submit_to_inbox",
    "wait_for_result",
    "wait_for_terminal",
]


def submit_to_inbox(root, spec: CampaignSpec,
                    tenant: str = DEFAULT_TENANT,
                    job_id: Optional[str] = None) -> str:
    """Drop one submission into the service inbox; returns the job id.

    The write is atomic (temp + rename inside the inbox directory), so the
    service can never observe a torn submission.
    """
    paths = service_paths(root)
    os.makedirs(paths.inbox, exist_ok=True)
    job_id = job_id or os.urandom(6).hex()
    doc = {"id": job_id, "tenant": tenant or DEFAULT_TENANT,
           "spec": spec.to_dict()}
    final = os.path.join(paths.inbox, f"{job_id}.json")
    write_json_atomic(final, doc)
    return job_id


def load_queue_state(root) -> QueueState:
    """Read-only queue reconstruction: snapshot + journal tail replay."""
    paths = service_paths(root)
    state = QueueState()
    offset = 0
    loaded = load_state_snapshot(paths.state)
    if loaded is not None:
        state_doc, offset = loaded
        state = QueueState.from_doc(state_doc)
    records, _ = read_journal(paths.journal, offset)
    for record in records:
        state.apply(record)
    return state


def service_status(root) -> Optional[Dict]:
    """The service heartbeat document, or None when never started."""
    try:
        with open(service_paths(root).heartbeat, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def _resolve_primary(state: QueueState, job: Job) -> Job:
    # ``primary`` outlives the DEDUPED state: a follower flipped to done by
    # its primary's completion still reads the primary's result file.
    if job.primary and job.primary in state.jobs:
        return state.jobs[job.primary]
    return job


def result_for(root, job_id: str,
               state: Optional[QueueState] = None) -> Optional[Dict]:
    """The job's campaign result document (following dedup), or None."""
    state = state if state is not None else load_queue_state(root)
    job = state.jobs.get(job_id)
    if job is None:
        return None
    primary = _resolve_primary(state, job)
    return load_result(job_paths(root, primary.id).result)


def wait_for_terminal(root, job_id: str, timeout: float = 60.0,
                      poll: float = 0.1) -> Optional[Job]:
    """Poll until the job reaches a terminal state; None on timeout.

    Terminal includes a deduped follower whose primary is terminal — the
    reducer flips followers when their primary resolves, so checking the
    follower's own state suffices.
    """
    deadline = time.monotonic() + timeout
    while True:
        state = load_queue_state(root)
        job = state.jobs.get(job_id)
        if job is not None and job.state in JobState.TERMINAL:
            return job
        if time.monotonic() >= deadline:
            return None
        time.sleep(poll)


def wait_for_result(root, job_id: str, timeout: float = 60.0,
                    poll: float = 0.1) -> Optional[Dict]:
    """Wait for a terminal state, then return the result document.

    None when the job timed out, was shed, or was quarantined — callers
    distinguish via :func:`load_queue_state`.
    """
    job = wait_for_terminal(root, job_id, timeout=timeout, poll=poll)
    if job is None or job.state != JobState.DONE:
        return None
    return result_for(root, job_id)


def request_drain(root) -> str:
    """Ask a running service to drain; returns the marker path."""
    paths = service_paths(root)
    os.makedirs(paths.control, exist_ok=True)
    marker = paths.drain_marker
    with open(marker, "w", encoding="utf-8") as fh:
        fh.write(str(time.time()))
    return marker
