"""Job execution: one campaign per worker process, idempotent and resumable.

A worker owns one job directory (``<root>/jobs/<job-id>/``)::

    job.json          the admitted spec (written by the service at admission)
    campaign.jsonl    the obs trial event log (byte-identical to a direct run)
    checkpoint.json   the PR 4 campaign checkpoint while the run is in flight
    heartbeat.json    live per-campaign status (folded into the service view)
    result.json       the full CampaignResult (atomic write = completion mark)
    error.txt         traceback of the last failed attempt, if any

**Idempotence is the crash-safety contract.**  ``result.json`` is written
atomically (temp + ``os.replace``) *after* the campaign finishes, so its
existence is the single completion marker: a re-dispatched job that already
has a loadable result exits immediately without touching anything — this is
what makes "service SIGKILLed after the worker finished but before the
``done`` record hit the journal" harmless.

**Byte-identity across kills.**  If a checkpoint exists, ``run_campaign``
resumes from it and rewrites the obs log from the recorded offset — the PR 4
guarantee.  If no checkpoint exists (killed before the first flush), the
worker deletes any partial obs artifacts and starts clean.  Either way the
final ``campaign.jsonl`` and ``result.json`` are byte-identical to an
uninterrupted direct ``repro.faultinjection`` run of the same spec.

**Graceful drain.**  SIGTERM raises through the campaign, whose
``BaseException`` path force-flushes the checkpoint; the worker then exits
with :data:`EXIT_INTERRUPTED` so the service requeues the job without
charging its retry budget.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import tempfile
import traceback
from dataclasses import dataclass
from typing import Optional

from .spec import CampaignSpec

__all__ = [
    "EXIT_DONE",
    "EXIT_FAILED",
    "EXIT_INTERRUPTED",
    "JobPaths",
    "execute_job",
    "job_paths",
    "write_json_atomic",
]

EXIT_DONE = 0
#: EX_TEMPFAIL: checkpointed and requeueable, not a failure
EXIT_INTERRUPTED = 75
EXIT_FAILED = 1


@dataclass(frozen=True)
class JobPaths:
    """Filesystem layout of one job directory."""

    directory: str
    spec: str
    obs_log: str
    checkpoint: str
    heartbeat: str
    result: str
    error: str


def job_paths(root, job_id: str) -> JobPaths:
    directory = os.path.join(os.fspath(root), "jobs", job_id)
    return JobPaths(
        directory=directory,
        spec=os.path.join(directory, "job.json"),
        obs_log=os.path.join(directory, "campaign.jsonl"),
        checkpoint=os.path.join(directory, "checkpoint.json"),
        heartbeat=os.path.join(directory, "heartbeat.json"),
        result=os.path.join(directory, "result.json"),
        error=os.path.join(directory, "error.txt"),
    )


def write_json_atomic(path: str, document) -> None:
    """Temp file + ``os.replace``: readers never observe a torn document."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=".result-", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(document, fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_result(path: str) -> Optional[dict]:
    """The job's result document, or None when absent/unreadable."""
    try:
        with open(path, encoding="utf-8") as fh:
            document = json.load(fh)
        return document if isinstance(document, dict) else None
    except (OSError, ValueError):
        return None


class _Drained(BaseException):
    """SIGTERM during execution: checkpoint and hand the job back."""


def _campaign_config(spec: CampaignSpec, paths: JobPaths):
    """The exact config a direct CLI run of this spec would resolve to.

    Every environment-resolved knob that could differ between the service
    host and a direct run is pinned explicitly (fault model from the spec,
    never ``REPRO_FAULT_MODEL``), so a spec computes the same campaign
    everywhere.
    """
    from ..faultinjection.campaign import CampaignConfig
    from ..faultinjection.resilience import default_policy

    return CampaignConfig(
        trials=spec.trials,
        seed=spec.seed,
        jobs=spec.jobs,
        swap_train_test=spec.swap_train_test,
        fault_model=spec.fault_model or "single_bit",
        obs_log=paths.obs_log,
        checkpoint=paths.checkpoint,
        heartbeat=paths.heartbeat,
        resilience=default_policy(),
    )


def _fresh_start_cleanup(paths: JobPaths) -> None:
    """No checkpoint → any partial obs artifacts belong to a run that left
    nothing to resume from; drop them so the rewrite starts at byte 0."""
    for stale in (paths.obs_log, paths.obs_log + ".resilience",
                  paths.heartbeat):
        try:
            os.unlink(stale)
        except OSError:
            pass


def execute_job(root, job_id: str,
                spec: Optional[CampaignSpec] = None) -> int:
    """Run one admitted job to completion; returns the worker exit code.

    ``spec`` defaults to the job directory's ``job.json`` (the normal
    subprocess path); passing it explicitly serves the in-process launcher
    and tests.
    """
    paths = job_paths(root, job_id)
    if load_result(paths.result) is not None:
        return EXIT_DONE  # finished by a previous attempt; nothing to redo
    if spec is None:
        try:
            with open(paths.spec, encoding="utf-8") as fh:
                spec = CampaignSpec.from_dict(json.load(fh))
        except (OSError, ValueError) as err:
            _write_error(paths, f"unreadable job.json: {err}")
            return EXIT_FAILED

    def _on_sigterm(signum, frame):
        raise _Drained()

    previous = None
    if hasattr(signal, "SIGTERM"):
        try:
            previous = signal.signal(signal.SIGTERM, _on_sigterm)
        except ValueError:  # non-main thread (in-process launcher)
            previous = None

    try:
        return _run_spec(spec, paths)
    except _Drained:
        # run_campaign's BaseException path already force-flushed the
        # checkpoint; the obs log will be truncated to the checkpointed
        # offset on resume.
        return EXIT_INTERRUPTED
    except KeyboardInterrupt:
        return EXIT_INTERRUPTED
    except BaseException as err:  # noqa: BLE001 - poison evidence capture
        _write_error(
            paths,
            "".join(traceback.format_exception(type(err), err,
                                               err.__traceback__)),
        )
        return EXIT_FAILED
    finally:
        if previous is not None:
            try:
                signal.signal(signal.SIGTERM, previous)
            except ValueError:
                pass


def _run_spec(spec: CampaignSpec, paths: JobPaths) -> int:
    from ..faultinjection.campaign import prepare, run_campaign
    from ..faultinjection.diskcache import CampaignCache, campaign_key
    from ..workloads.registry import get_workload

    config = _campaign_config(spec, paths)
    if not os.path.exists(paths.checkpoint):
        _fresh_start_cleanup(paths)
    os.makedirs(paths.directory, exist_ok=True)

    prepared = prepare(get_workload(spec.workload), spec.scheme, config)
    result = run_campaign(
        prepared.workload, spec.scheme, config, prepared=prepared
    )
    write_json_atomic(paths.result, result.to_dict())
    # Share the finished campaign through the regular disk cache (honours
    # REPRO_CACHE / REPRO_CACHE_DIR): dedup means one execution — and one
    # cache entry — no matter how many tenants asked for this spec.
    cache = CampaignCache()
    if cache.enabled:
        cache.put(
            campaign_key(prepared.module, spec.workload, spec.scheme, config),
            result,
        )
    try:
        os.unlink(paths.error)  # a success supersedes old attempt evidence
    except OSError:
        pass
    return EXIT_DONE


def _write_error(paths: JobPaths, text: str) -> None:
    try:
        os.makedirs(paths.directory, exist_ok=True)
        with open(paths.error, "w", encoding="utf-8") as fh:
            fh.write(text)
    except OSError:  # pragma: no cover - evidence is best effort
        pass


def main(argv=None) -> int:
    """``python -m repro.serve exec-job --root R --job ID`` (internal)."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.serve exec-job")
    parser.add_argument("--root", required=True)
    parser.add_argument("--job", required=True)
    args = parser.parse_args(argv)
    return execute_job(args.root, args.job)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
