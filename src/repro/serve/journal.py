"""Durable on-disk job queue storage: append-only journal + state snapshots.

The service's single source of truth is an **append-only JSONL journal**
(``journal.jsonl``): every queue transition — submit, shed, dedup, start,
done, fail, interrupt, quarantine, drain — is appended as one canonical
JSON line *before* the in-memory state is updated, and the in-memory state
is only ever mutated by replaying that same record through
:meth:`~repro.serve.queue.QueueState.apply`.  A SIGKILL at any instant
therefore loses at most work, never bookkeeping: the restarted service
rebuilds the exact queue by replaying the journal, re-queues the jobs that
were mid-flight (their campaign-level checkpoints make the re-run
byte-identical — ``docs/RESILIENCE.md``), and continues.

Because replaying a long journal from byte 0 gets slower as the service
lives on, the service periodically writes an **atomic state snapshot**
(``state.json``: temp file + ``os.replace``, sha256-checksummed exactly
like the PR 4 campaign checkpoints).  The snapshot records the journal
byte offset it covers; recovery loads the snapshot, verifies its checksum,
and replays only the journal tail after that offset.  A snapshot that does
not verify is quarantined (``quarantine/`` — evidence preserved, same
policy as corrupt caches and checkpoints) and recovery falls back to a
full journal replay, which is always sufficient.

Torn tails are expected, not errors: a SIGKILL mid-append leaves a partial
last line, which replay ignores (the transition it described never
happened, by definition — the reducer had not run yet) and which the
reopening :class:`Journal` truncates away before its first append, so a
post-crash record is never glued onto the torn bytes and a later
full-journal replay sees every record that was ever applied.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
from typing import Dict, List, Optional, Tuple

from ..faultinjection.resilience import ResilienceLogger, quarantine_file

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "Journal",
    "load_state_snapshot",
    "read_journal",
    "save_state_snapshot",
]

#: bump on any change to journal record or snapshot layout
JOURNAL_SCHEMA_VERSION = 1


def _encode_record(record: Dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


def _truncate_torn_tail(path: str) -> None:
    """Drop a partial (newline-less) final line left by a mid-append crash.

    Replay already discards the torn line — the transition it described
    never applied — but reopening in append mode would glue the *next*
    record onto it, silently losing that record from any later full-journal
    replay.  Truncating back to the last newline before the first new
    append keeps the "full replay is always sufficient" contract.
    """
    try:
        with open(path, "rb+") as fh:
            fh.seek(0, os.SEEK_END)
            end = fh.tell()
            if end == 0:
                return
            fh.seek(end - 1)
            if fh.read(1) == b"\n":
                return
            last_newline = -1
            pos = end
            chunk = 1 << 16
            while pos > 0 and last_newline < 0:
                start = max(0, pos - chunk)
                fh.seek(start)
                data = fh.read(pos - start)
                idx = data.rfind(b"\n")
                if idx >= 0:
                    last_newline = start + idx
                pos = start
            fh.truncate(last_newline + 1)
    except FileNotFoundError:
        return


class Journal:
    """Append-only JSONL writer for queue transitions.

    Lines are written whole and flushed per append: a SIGKILL can tear at
    most the final line, which replay discards.  ``offset`` is the current
    end-of-journal byte position — snapshots store it so recovery knows
    where their coverage ends.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        _truncate_torn_tail(self.path)
        self._fh: Optional[io.TextIOWrapper] = open(
            self.path, "a", encoding="utf-8"
        )

    @property
    def offset(self) -> int:
        if self._fh is None:
            return 0
        return self._fh.tell()

    def append(self, record: Dict) -> None:
        if self._fh is None:
            raise ValueError("journal is closed")
        self._fh.write(_encode_record(record))
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_journal(path, offset: int = 0) -> Tuple[List[Dict], int]:
    """Records from ``offset`` to the end, plus the clean end offset.

    Tolerates a torn final line (counted out of the returned offset, so a
    subsequent snapshot never claims to cover bytes it did not parse) and
    skips non-object lines rather than failing recovery over one bad byte.
    """
    records: List[Dict] = []
    clean_end = offset
    try:
        with open(path, "rb") as fh:
            fh.seek(offset)
            for raw in fh:
                if not raw.endswith(b"\n"):
                    break  # torn tail: the append never completed
                try:
                    record = json.loads(raw)
                except ValueError:
                    clean_end += len(raw)
                    continue
                clean_end += len(raw)
                if isinstance(record, dict):
                    records.append(record)
    except FileNotFoundError:
        return [], offset
    return records, clean_end


# ---------------------------------------------------------------------------
# state snapshots
# ---------------------------------------------------------------------------


def _snapshot_digest(payload: Dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def save_state_snapshot(path, state_doc: Dict, journal_offset: int) -> None:
    """Atomically persist the queue state + the journal offset it covers."""
    path = os.fspath(path)
    payload = {
        "v": JOURNAL_SCHEMA_VERSION,
        "journal_offset": journal_offset,
        "state": state_doc,
    }
    payload["sha256"] = _snapshot_digest(
        {k: payload[k] for k in ("v", "journal_offset", "state")}
    )
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=".state-", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_state_snapshot(
    path, logger: Optional[ResilienceLogger] = None
) -> Optional[Tuple[Dict, int]]:
    """Load + verify a snapshot → ``(state_doc, journal_offset)`` or None.

    None means "replay the whole journal": the file is absent, or it failed
    verification and was quarantined.  Recovery is never blocked on a bad
    snapshot — the journal is the source of truth.
    """
    path = os.fspath(path)
    logger = logger or ResilienceLogger()
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        stored = payload.pop("sha256")
        if _snapshot_digest(payload) != stored:
            raise ValueError("state snapshot checksum mismatch")
        if payload.get("v") != JOURNAL_SCHEMA_VERSION:
            raise ValueError("unknown state snapshot schema")
        return payload["state"], int(payload["journal_offset"])
    except FileNotFoundError:
        return None
    except (OSError, ValueError, KeyError, TypeError) as err:
        dest = quarantine_file(path)
        logger.emit(
            "service_state_corrupt",
            note=f"corrupt service state snapshot quarantined: {path}",
            path=path, quarantined_to=dest, reason=str(err),
        )
        return None
