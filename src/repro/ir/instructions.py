"""Instruction set of the repro IR.

The instruction set mirrors the LLVM subset the paper's passes operate on:
integer/float arithmetic, comparisons, select, casts, memory (alloca / load /
store / gep), control flow (br / condbr / ret), phi nodes, calls, and
intrinsics.  On top of that it adds the three *guard* instructions the
transforms insert:

* :class:`GuardEq` — the hard check comparing an original value against its
  duplicated shadow (state-variable protection, Fig. 4/7 of the paper).
* :class:`GuardValues` — soft check against one or two frequent values
  (Fig. 6a/6b).
* :class:`GuardRange` — soft check against a profiled compact range (Fig. 6c).

Guards are void instructions; their runtime semantics live in the simulator
(:mod:`repro.sim.interpreter`), which raises a software-detection event when a
guard fires.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from .types import F64, I1, I64, PTR, VOID, FloatType, IntType, IRType
from .values import Constant, Value

if TYPE_CHECKING:  # pragma: no cover
    from .basicblock import BasicBlock
    from .function import Function


# ---------------------------------------------------------------------------
# Opcode tables
# ---------------------------------------------------------------------------

INT_BINOPS = frozenset(
    {"add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
     "and", "or", "xor", "shl", "lshr", "ashr"}
)
FLOAT_BINOPS = frozenset({"fadd", "fsub", "fmul", "fdiv", "frem"})
BINOPS = INT_BINOPS | FLOAT_BINOPS

ICMP_PREDICATES = frozenset({"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"})
FCMP_PREDICATES = frozenset({"oeq", "one", "olt", "ole", "ogt", "oge"})

CAST_OPS = frozenset({"trunc", "zext", "sext", "fptosi", "sitofp", "fpext", "fptrunc", "ptrtoint", "inttoptr"})

#: Pure intrinsics: name -> (result type factory, arity). Result type ``None``
#: means "same as first argument".
INTRINSICS = {
    "sqrt": (None, 1),
    "exp": (None, 1),
    "log": (None, 1),
    "sin": (None, 1),
    "cos": (None, 1),
    "fabs": (None, 1),
    "abs": (None, 1),
    "min": (None, 2),
    "max": (None, 2),
    "floor": (None, 1),
    "pow": (None, 2),
}


class Instruction(Value):
    """Base class for all instructions.

    An instruction is itself the SSA :class:`Value` it defines (void for
    instructions with no result).  Operand slots are managed through
    :meth:`set_operand` so that def-use information stays consistent.

    Attributes:
        parent: owning basic block (set on insertion).
        is_shadow: True when this instruction was created by a duplication
            transform (it belongs to a duplicated producer chain).
        shadow_of: for shadow instructions, the original instruction cloned.
    """

    opcode: str = "?"

    def __init__(self, type_: IRType, operands: Sequence[Value], name: str = "") -> None:
        super().__init__(type_, name)
        self.parent: Optional["BasicBlock"] = None
        self.is_shadow: bool = False
        self.shadow_of: Optional["Instruction"] = None
        self._operands: List[Value] = []
        for op in operands:
            self._append_operand(op)

    # -- operand management -------------------------------------------------

    @property
    def operands(self) -> Tuple[Value, ...]:
        return tuple(self._operands)

    def _append_operand(self, value: Value) -> None:
        if value is None:
            raise ValueError(f"{self.opcode}: operand may not be None")
        idx = len(self._operands)
        self._operands.append(value)
        value.uses.append((self, idx))

    def set_operand(self, idx: int, value: Value) -> None:
        """Replace operand ``idx``, keeping use lists consistent."""
        old = self._operands[idx]
        try:
            old.uses.remove((self, idx))
        except ValueError:  # pragma: no cover - defensive; lists stay in sync
            pass
        self._operands[idx] = value
        value.uses.append((self, idx))

    def drop_all_references(self) -> None:
        """Remove this instruction from the use lists of its operands."""
        for idx, op in enumerate(self._operands):
            try:
                op.uses.remove((self, idx))
            except ValueError:  # pragma: no cover
                pass
        self._operands = []

    # -- queries -------------------------------------------------------------

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Br, CondBr, Ret))

    @property
    def is_guard(self) -> bool:
        return isinstance(self, (GuardEq, GuardValues, GuardRange))

    @property
    def has_result(self) -> bool:
        return not self.type.is_void

    @property
    def function(self) -> Optional["Function"]:
        return self.parent.parent if self.parent is not None else None

    def erase(self) -> None:
        """Unlink from the parent block and drop operand references."""
        if self.uses:
            raise RuntimeError(
                f"cannot erase {self.short()}: it still has {len(self.uses)} uses"
            )
        if self.parent is not None:
            self.parent.remove(self)
        self.drop_all_references()

    # -- printing ------------------------------------------------------------

    def _operands_str(self) -> str:
        return ", ".join(op.short() for op in self._operands)

    def format(self) -> str:
        if self.has_result:
            return f"%{self.name} = {self.opcode} {self.type} {self._operands_str()}"
        return f"{self.opcode} {self._operands_str()}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.format()}>"


# ---------------------------------------------------------------------------
# Arithmetic and logic
# ---------------------------------------------------------------------------


class BinaryOp(Instruction):
    """Two-operand arithmetic/logic (``add``, ``fmul``, ``xor``, ...)."""

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if opcode not in BINOPS:
            raise ValueError(f"unknown binary opcode {opcode!r}")
        if opcode in INT_BINOPS and not lhs.type.is_integer:
            raise TypeError(f"{opcode} requires integer operands, got {lhs.type}")
        if opcode in FLOAT_BINOPS and not lhs.type.is_float:
            raise TypeError(f"{opcode} requires float operands, got {lhs.type}")
        if lhs.type is not rhs.type:
            raise TypeError(f"{opcode} operand types differ: {lhs.type} vs {rhs.type}")
        self.opcode = opcode
        super().__init__(lhs.type, [lhs, rhs], name)

    @property
    def lhs(self) -> Value:
        return self._operands[0]

    @property
    def rhs(self) -> Value:
        return self._operands[1]


class ICmp(Instruction):
    """Integer/pointer comparison producing an i1."""

    opcode = "icmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate {predicate!r}")
        if lhs.type is not rhs.type:
            raise TypeError(f"icmp operand types differ: {lhs.type} vs {rhs.type}")
        self.predicate = predicate
        super().__init__(I1, [lhs, rhs], name)

    def format(self) -> str:
        return f"%{self.name} = icmp {self.predicate} {self._operands_str()}"


class FCmp(Instruction):
    """Float comparison producing an i1 (ordered predicates only)."""

    opcode = "fcmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if predicate not in FCMP_PREDICATES:
            raise ValueError(f"unknown fcmp predicate {predicate!r}")
        if lhs.type is not rhs.type:
            raise TypeError(f"fcmp operand types differ: {lhs.type} vs {rhs.type}")
        self.predicate = predicate
        super().__init__(I1, [lhs, rhs], name)

    def format(self) -> str:
        return f"%{self.name} = fcmp {self.predicate} {self._operands_str()}"


class Select(Instruction):
    """``select cond, a, b`` — branch-free conditional value."""

    opcode = "select"

    def __init__(self, cond: Value, tval: Value, fval: Value, name: str = "") -> None:
        if not cond.type.is_bool:
            raise TypeError("select condition must be i1")
        if tval.type is not fval.type:
            raise TypeError("select arm types differ")
        super().__init__(tval.type, [cond, tval, fval], name)

    @property
    def cond(self) -> Value:
        return self._operands[0]


class Cast(Instruction):
    """Type conversion (``trunc``/``zext``/``sext``/``fptosi``/``sitofp``/...)."""

    def __init__(self, opcode: str, value: Value, to_type: IRType, name: str = "") -> None:
        if opcode not in CAST_OPS:
            raise ValueError(f"unknown cast opcode {opcode!r}")
        self.opcode = opcode
        super().__init__(to_type, [value], name)

    @property
    def value(self) -> Value:
        return self._operands[0]

    def format(self) -> str:
        return f"%{self.name} = {self.opcode} {self._operands[0].short()} to {self.type}"


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------


class Alloca(Instruction):
    """Stack allocation of ``count`` elements of ``elem_type``; yields a pointer."""

    opcode = "alloca"

    def __init__(self, elem_type: IRType, count: int = 1, name: str = "") -> None:
        if count <= 0:
            raise ValueError("alloca count must be positive")
        self.elem_type = elem_type
        self.count = count
        super().__init__(PTR, [], name)

    @property
    def size_bytes(self) -> int:
        return self.count * self.elem_type.size_bytes  # type: ignore[attr-defined]

    def format(self) -> str:
        return f"%{self.name} = alloca {self.elem_type} x {self.count}"


class Load(Instruction):
    """``load <type>, ptr`` — bounds-checked read from simulator memory."""

    opcode = "load"

    def __init__(self, value_type: IRType, pointer: Value, name: str = "") -> None:
        if not pointer.type.is_pointer:
            raise TypeError("load pointer operand must have pointer type")
        super().__init__(value_type, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self._operands[0]

    def format(self) -> str:
        return f"%{self.name} = load {self.type}, {self._operands[0].short()}"


class Store(Instruction):
    """``store value, ptr`` — bounds-checked write to simulator memory."""

    opcode = "store"

    def __init__(self, value: Value, pointer: Value) -> None:
        if not pointer.type.is_pointer:
            raise TypeError("store pointer operand must have pointer type")
        super().__init__(VOID, [value, pointer])

    @property
    def value(self) -> Value:
        return self._operands[0]

    @property
    def pointer(self) -> Value:
        return self._operands[1]


class GetElementPtr(Instruction):
    """``gep base, index`` — computes ``base + index * elem_size`` (bytes).

    A simplified single-index GEP; multi-dimensional accesses are expressed by
    explicit index arithmetic in the frontend, matching how the paper's
    kernels index flattened arrays.
    """

    opcode = "gep"

    def __init__(self, base: Value, index: Value, elem_type: IRType, name: str = "") -> None:
        if not base.type.is_pointer:
            raise TypeError("gep base must have pointer type")
        if not index.type.is_integer:
            raise TypeError("gep index must be an integer")
        self.elem_type = elem_type
        super().__init__(PTR, [base, index], name)

    @property
    def base(self) -> Value:
        return self._operands[0]

    @property
    def index(self) -> Value:
        return self._operands[1]

    @property
    def elem_size(self) -> int:
        return self.elem_type.size_bytes  # type: ignore[attr-defined]

    def format(self) -> str:
        return (
            f"%{self.name} = gep {self._operands[0].short()}, "
            f"{self._operands[1].short()} x {self.elem_type}"
        )


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------


class Br(Instruction):
    """Unconditional branch."""

    opcode = "br"

    def __init__(self, target: "BasicBlock") -> None:
        self.target = target
        super().__init__(VOID, [])

    @property
    def successors(self) -> List["BasicBlock"]:
        return [self.target]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.target is old:
            self.target = new

    def format(self) -> str:
        return f"br label %{self.target.name}"


class CondBr(Instruction):
    """Conditional branch on an i1."""

    opcode = "condbr"

    def __init__(self, cond: Value, if_true: "BasicBlock", if_false: "BasicBlock") -> None:
        if not cond.type.is_bool:
            raise TypeError("condbr condition must be i1")
        self.if_true = if_true
        self.if_false = if_false
        super().__init__(VOID, [cond])

    @property
    def cond(self) -> Value:
        return self._operands[0]

    @property
    def successors(self) -> List["BasicBlock"]:
        return [self.if_true, self.if_false]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.if_true is old:
            self.if_true = new
        if self.if_false is old:
            self.if_false = new

    def format(self) -> str:
        return (
            f"condbr {self._operands[0].short()}, "
            f"label %{self.if_true.name}, label %{self.if_false.name}"
        )


class Ret(Instruction):
    """Function return, with an optional value."""

    opcode = "ret"

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self._operands[0] if self._operands else None

    @property
    def successors(self) -> List["BasicBlock"]:
        return []

    def format(self) -> str:
        return f"ret {self._operands[0].short()}" if self._operands else "ret void"


class Phi(Instruction):
    """SSA phi node; merges one value per predecessor block.

    State variables (the paper's central concept) are phi nodes in loop
    headers whose in-loop incoming value transitively depends on the phi
    itself — see :mod:`repro.analysis.statevars`.
    """

    opcode = "phi"

    def __init__(self, type_: IRType, name: str = "") -> None:
        self.incoming_blocks: List["BasicBlock"] = []
        super().__init__(type_, [], name)

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type is not self.type:
            raise TypeError(
                f"phi incoming type {value.type} does not match phi type {self.type}"
            )
        self._append_operand(value)
        self.incoming_blocks.append(block)

    @property
    def incomings(self) -> List[Tuple[Value, "BasicBlock"]]:
        return list(zip(self._operands, self.incoming_blocks))

    def incoming_for(self, block: "BasicBlock") -> Value:
        for value, pred in self.incomings:
            if pred is block:
                return value
        raise KeyError(f"phi {self.short()} has no incoming for block %{block.name}")

    def set_incoming_value(self, block: "BasicBlock", value: Value) -> None:
        for idx, pred in enumerate(self.incoming_blocks):
            if pred is block:
                self.set_operand(idx, value)
                return
        raise KeyError(f"phi {self.short()} has no incoming for block %{block.name}")

    def remove_incoming(self, block: "BasicBlock") -> None:
        for idx, pred in enumerate(self.incoming_blocks):
            if pred is block:
                op = self._operands[idx]
                op.uses.remove((self, idx))
                del self._operands[idx]
                del self.incoming_blocks[idx]
                # Re-index remaining uses.
                for later in range(idx, len(self._operands)):
                    val = self._operands[later]
                    pos = val.uses.index((self, later + 1))
                    val.uses[pos] = (self, later)
                return
        raise KeyError(f"phi {self.short()} has no incoming for block %{block.name}")

    def format(self) -> str:
        pairs = ", ".join(
            f"[{v.short()}, %{b.name}]" for v, b in self.incomings
        )
        return f"%{self.name} = phi {self.type} {pairs}"


# ---------------------------------------------------------------------------
# Calls
# ---------------------------------------------------------------------------


class Call(Instruction):
    """Direct call of another function in the same module."""

    opcode = "call"

    def __init__(self, callee: "Function", args: Sequence[Value], name: str = "") -> None:
        self.callee = callee
        super().__init__(callee.return_type, list(args), name)

    def format(self) -> str:
        head = f"%{self.name} = " if self.has_result else ""
        return f"{head}call @{self.callee.name}({self._operands_str()})"


class IntrinsicCall(Instruction):
    """Call of a pure math intrinsic (``sqrt``, ``exp``, ``min``, ...).

    Intrinsics are side-effect free, so duplication transforms may clone them
    into shadow chains just like arithmetic.
    """

    opcode = "intrinsic"

    def __init__(self, intrinsic: str, args: Sequence[Value], name: str = "") -> None:
        if intrinsic not in INTRINSICS:
            raise ValueError(f"unknown intrinsic {intrinsic!r}")
        _, arity = INTRINSICS[intrinsic]
        if len(args) != arity:
            raise ValueError(f"intrinsic {intrinsic} expects {arity} args, got {len(args)}")
        self.intrinsic = intrinsic
        super().__init__(args[0].type, list(args), name)

    def format(self) -> str:
        return f"%{self.name} = {self.intrinsic}({self._operands_str()})"


# ---------------------------------------------------------------------------
# Guards (inserted by protection transforms)
# ---------------------------------------------------------------------------


class GuardBase(Instruction):
    """Common behaviour for detection checks.

    Each guard carries a stable ``guard_id`` (assigned by the transform) used
    for the once-per-check recovery policy and for false-positive accounting.
    """

    def __init__(self, operands: Sequence[Value], guard_id: int = -1) -> None:
        self.guard_id = guard_id
        super().__init__(VOID, operands)


class GuardEq(GuardBase):
    """Hard check: fires when the original and shadow values differ.

    This is the comparison inserted at the end of a duplicated producer chain
    (paper Fig. 4 line 10 / Fig. 7b).
    """

    opcode = "guard_eq"

    def __init__(self, original: Value, shadow: Value, guard_id: int = -1) -> None:
        if original.type is not shadow.type:
            raise TypeError("guard_eq operand types differ")
        super().__init__([original, shadow], guard_id)

    @property
    def original(self) -> Value:
        return self._operands[0]

    @property
    def shadow(self) -> Value:
        return self._operands[1]

    def format(self) -> str:
        return f"guard_eq {self._operands_str()}  ; id={self.guard_id}"


class GuardValues(GuardBase):
    """Soft check: fires when the value is not one of 1–2 frequent constants
    (paper Fig. 6a / 6b)."""

    opcode = "guard_values"

    def __init__(self, value: Value, expected: Sequence[Constant], guard_id: int = -1) -> None:
        if not 1 <= len(expected) <= 2:
            raise ValueError("guard_values expects one or two frequent values")
        for c in expected:
            if c.type is not value.type:
                raise TypeError("guard_values constant type mismatch")
        super().__init__([value, *expected], guard_id)

    @property
    def value(self) -> Value:
        return self._operands[0]

    @property
    def expected(self) -> Tuple[Constant, ...]:
        return tuple(self._operands[1:])  # type: ignore[return-value]

    def format(self) -> str:
        return f"guard_values {self._operands_str()}  ; id={self.guard_id}"


class GuardRange(GuardBase):
    """Soft check: fires when the value leaves its profiled compact range
    (paper Fig. 6c)."""

    opcode = "guard_range"

    def __init__(self, value: Value, lo: Constant, hi: Constant, guard_id: int = -1) -> None:
        if lo.type is not value.type or hi.type is not value.type:
            raise TypeError("guard_range bound type mismatch")
        super().__init__([value, lo, hi], guard_id)

    @property
    def value(self) -> Value:
        return self._operands[0]

    @property
    def lo(self) -> Constant:
        return self._operands[1]  # type: ignore[return-value]

    @property
    def hi(self) -> Constant:
        return self._operands[2]  # type: ignore[return-value]

    def format(self) -> str:
        return f"guard_range {self._operands_str()}  ; id={self.guard_id}"
