"""SSA intermediate representation: the substrate the paper's passes operate on.

Public surface:

* types: :data:`I1` ... :data:`I64`, :data:`F32`, :data:`F64`, :data:`PTR`,
  :data:`VOID`
* values: :class:`Constant`, :class:`Argument`, :class:`GlobalVariable`
* containers: :class:`Module`, :class:`Function`, :class:`BasicBlock`
* instructions: arithmetic, memory, control flow, phi, calls, and the three
  guard instructions the protection transforms insert
* :class:`IRBuilder` for construction, :func:`verify_module` for validation,
  :func:`module_to_str` for printing
"""

from .basicblock import BasicBlock
from .builder import IRBuilder
from .function import Function
from .instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    GetElementPtr,
    GuardBase,
    GuardEq,
    GuardRange,
    GuardValues,
    ICmp,
    Instruction,
    IntrinsicCall,
    INTRINSICS,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from .module import Module
from .parser import IRParseError, parse_module
from .printer import function_to_str, module_to_str
from .types import (
    F32,
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    PTR,
    VOID,
    FloatType,
    IntType,
    IRType,
    PointerType,
    VoidType,
    parse_type,
)
from .values import (
    Argument,
    Constant,
    GlobalVariable,
    UndefValue,
    Value,
    const_bool,
    const_float,
    const_int,
)
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "BasicBlock", "IRBuilder", "Function", "Module",
    "Alloca", "BinaryOp", "Br", "Call", "Cast", "CondBr", "FCmp",
    "GetElementPtr", "GuardBase", "GuardEq", "GuardRange", "GuardValues",
    "ICmp", "Instruction", "IntrinsicCall", "INTRINSICS", "Load", "Phi",
    "Ret", "Select", "Store",
    "function_to_str", "module_to_str",
    "IRParseError", "parse_module",
    "F32", "F64", "I1", "I8", "I16", "I32", "I64", "PTR", "VOID",
    "FloatType", "IntType", "IRType", "PointerType", "VoidType", "parse_type",
    "Argument", "Constant", "GlobalVariable", "UndefValue", "Value",
    "const_bool", "const_float", "const_int",
    "VerificationError", "verify_function", "verify_module",
]
