"""Value hierarchy for the repro IR.

Everything that can appear as an instruction operand is a :class:`Value`:
constants, function arguments, global variables, and instructions themselves
(an instruction *is* the SSA value it defines).  Values track their uses so
transforms can rewrite the program with :meth:`Value.replace_all_uses_with`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from .types import F32, F64, I1, PTR, FloatType, IntType, IRType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from .function import Function
    from .instructions import Instruction


class Value:
    """Base of the SSA value hierarchy.

    Attributes:
        type: the :class:`~repro.ir.types.IRType` of this value.
        name: a (function-unique for instructions) printable name.
        uses: list of ``(instruction, operand_index)`` pairs referencing this
            value.  Maintained automatically by instruction operand setters.
    """

    __slots__ = ("type", "name", "uses")

    def __init__(self, type_: IRType, name: str = "") -> None:
        self.type = type_
        self.name = name
        self.uses: List[Tuple["Instruction", int]] = []

    @property
    def users(self) -> List["Instruction"]:
        """Distinct instructions that use this value (order of first use)."""
        seen = []
        for instr, _ in self.uses:
            if instr not in seen:
                seen.append(instr)
        return seen

    def replace_all_uses_with(self, new: "Value") -> None:
        """Rewrite every use of ``self`` to refer to ``new`` instead."""
        if new is self:
            return
        for instr, idx in list(self.uses):
            instr.set_operand(idx, new)

    def short(self) -> str:
        """Compact printable reference (``%name`` / literal / ``@global``)."""
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.short()}: {self.type}>"


class Constant(Value):
    """An immediate constant of integer, float, or pointer type."""

    __slots__ = ("value",)

    def __init__(self, type_: IRType, value) -> None:
        super().__init__(type_, "")
        if isinstance(type_, IntType):
            value = type_.wrap(int(value))
        elif isinstance(type_, FloatType):
            value = float(value)
        self.value = value

    def short(self) -> str:
        return f"{self.type} {self.value}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.type is self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((id(self.type), self.value))


class UndefValue(Value):
    """Explicitly undefined value (used for unreachable phi incomings)."""

    __slots__ = ()

    def short(self) -> str:
        return f"{self.type} undef"


class Argument(Value):
    """A formal parameter of a :class:`~repro.ir.function.Function`."""

    __slots__ = ("function", "index")

    def __init__(self, type_: IRType, name: str, function: "Function", index: int) -> None:
        super().__init__(type_, name)
        self.function = function
        self.index = index


class GlobalVariable(Value):
    """A module-level array (or scalar, with ``count == 1``).

    Globals are the I/O surface of a workload: the harness binds input data
    into them before a run and reads output data out afterwards.  Their value
    *as an operand* is the base address of their memory segment (pointer type).

    Attributes:
        elem_type: element type of the array.
        count: number of elements.
        initializer: optional list of initial element values.
        is_input / is_output: harness hints marking workload I/O buffers.
    """

    __slots__ = ("elem_type", "count", "initializer", "is_input", "is_output")

    def __init__(
        self,
        name: str,
        elem_type: IRType,
        count: int,
        initializer: Optional[list] = None,
        is_input: bool = False,
        is_output: bool = False,
    ) -> None:
        super().__init__(PTR, name)
        if count <= 0:
            raise ValueError(f"global {name!r} must have positive element count")
        if initializer is not None and len(initializer) > count:
            raise ValueError(f"initializer for {name!r} longer than the array")
        self.elem_type = elem_type
        self.count = count
        self.initializer = initializer
        self.is_input = is_input
        self.is_output = is_output

    @property
    def size_bytes(self) -> int:
        return self.count * self.elem_type.size_bytes  # type: ignore[attr-defined]

    def short(self) -> str:
        return f"@{self.name}"


def const_int(value: int, type_: IntType = None) -> Constant:
    """Convenience constructor for integer constants (defaults to i32)."""
    from .types import I32

    return Constant(type_ or I32, value)


def const_float(value: float, type_: FloatType = F64) -> Constant:
    """Convenience constructor for float constants (defaults to f64)."""
    return Constant(type_, value)


def const_bool(value: bool) -> Constant:
    """Convenience constructor for i1 constants."""
    return Constant(I1, 1 if value else 0)
