"""Modules: the top-level IR container (functions + global arrays)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .function import Function
from .types import IRType, VOID
from .values import GlobalVariable


class Module:
    """A compilation unit: global variables plus functions.

    The entry point of a workload is the function named ``main`` by
    convention (overridable in :class:`repro.sim.interpreter.Interpreter`).
    """

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}

    # -- construction ----------------------------------------------------------

    def add_function(
        self,
        name: str,
        return_type: IRType = VOID,
        arg_types: Sequence[Tuple[IRType, str]] = (),
    ) -> Function:
        if name in self.functions:
            raise ValueError(f"duplicate function @{name}")
        fn = Function(name, return_type, arg_types, module=self)
        self.functions[name] = fn
        return fn

    def add_global(
        self,
        name: str,
        elem_type: IRType,
        count: int,
        initializer: Optional[list] = None,
        is_input: bool = False,
        is_output: bool = False,
    ) -> GlobalVariable:
        if name in self.globals:
            raise ValueError(f"duplicate global @{name}")
        gv = GlobalVariable(name, elem_type, count, initializer, is_input, is_output)
        self.globals[name] = gv
        return gv

    # -- queries -----------------------------------------------------------------

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function @{name} in module {self.name}") from None

    def global_var(self, name: str) -> GlobalVariable:
        try:
            return self.globals[name]
        except KeyError:
            raise KeyError(f"no global @{name} in module {self.name}") from None

    def input_globals(self) -> List[GlobalVariable]:
        return [g for g in self.globals.values() if g.is_input]

    def output_globals(self) -> List[GlobalVariable]:
        return [g for g in self.globals.values() if g.is_output]

    def num_instructions(self) -> int:
        return sum(fn.num_instructions() for fn in self.functions.values())

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def __repr__(self) -> str:
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
