"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from .instructions import Br, CondBr, Instruction, Phi

if TYPE_CHECKING:  # pragma: no cover
    from .function import Function


class BasicBlock:
    """A basic block within a function.

    Invariants (checked by :mod:`repro.ir.verifier`):

    * exactly one terminator, and it is the last instruction;
    * phi nodes appear before any non-phi instruction;
    * each phi has exactly one incoming per CFG predecessor.
    """

    def __init__(self, name: str, parent: Optional["Function"] = None) -> None:
        self.name = name
        self.parent = parent
        self.instructions: List[Instruction] = []

    # -- structural edits ----------------------------------------------------

    def append(self, instr: Instruction) -> Instruction:
        """Append ``instr`` (naming it if needed) and claim ownership."""
        if instr.parent is not None:
            raise ValueError(f"instruction {instr!r} already belongs to a block")
        instr.parent = self
        if instr.has_result and not instr.name and self.parent is not None:
            instr.name = self.parent.next_value_name()
        self.instructions.append(instr)
        return instr

    def insert(self, index: int, instr: Instruction) -> Instruction:
        """Insert ``instr`` at position ``index``."""
        if instr.parent is not None:
            raise ValueError(f"instruction {instr!r} already belongs to a block")
        instr.parent = self
        if instr.has_result and not instr.name and self.parent is not None:
            instr.name = self.parent.next_value_name()
        self.instructions.insert(index, instr)
        return instr

    def insert_before(self, anchor: Instruction, instr: Instruction) -> Instruction:
        """Insert ``instr`` immediately before ``anchor`` (which must be here)."""
        return self.insert(self.instructions.index(anchor), instr)

    def insert_after(self, anchor: Instruction, instr: Instruction) -> Instruction:
        """Insert ``instr`` immediately after ``anchor`` (which must be here)."""
        return self.insert(self.instructions.index(anchor) + 1, instr)

    def remove(self, instr: Instruction) -> None:
        self.instructions.remove(instr)
        instr.parent = None

    # -- queries -------------------------------------------------------------

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return list(term.successors) if term is not None else []  # type: ignore[attr-defined]

    @property
    def predecessors(self) -> List["BasicBlock"]:
        """Blocks that branch here (computed; order = function block order)."""
        if self.parent is None:
            return []
        preds = []
        for block in self.parent.blocks:
            if self in block.successors:
                preds.append(block)
        return preds

    def phis(self) -> Iterator[Phi]:
        for instr in self.instructions:
            if not isinstance(instr, Phi):
                break
            yield instr

    def non_phi_instructions(self) -> Iterator[Instruction]:
        for instr in self.instructions:
            if not isinstance(instr, Phi):
                yield instr

    def first_non_phi_index(self) -> int:
        for idx, instr in enumerate(self.instructions):
            if not isinstance(instr, Phi):
                return idx
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock %{self.name} ({len(self.instructions)} instrs)>"
