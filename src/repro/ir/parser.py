"""Parser for the textual IR format emitted by :mod:`repro.ir.printer`.

Round-tripping (``parse_module(module_to_str(m))``) is primarily a testing
and debugging aid: golden IR files can be checked in, diffed, and reloaded.
The grammar is exactly what the printer produces — one instruction per line,
``%name`` for locals, ``@name`` for globals, ``<type> <literal>`` for
constants — plus comments after ``;``.

Guard ids are preserved; shadow markers (the ``;dup`` comment) are restored
onto the parsed instructions.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    Alloca,
    BinaryOp,
    BINOPS,
    Br,
    Call,
    Cast,
    CAST_OPS,
    CondBr,
    FCmp,
    FCMP_PREDICATES,
    GetElementPtr,
    GuardEq,
    GuardRange,
    GuardValues,
    ICmp,
    ICMP_PREDICATES,
    Instruction,
    IntrinsicCall,
    INTRINSICS,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from .module import Module
from .types import IRType, VOID, parse_type
from .values import Constant, UndefValue, Value


class IRParseError(Exception):
    """Raised on malformed textual IR."""

    def __init__(self, message: str, line_no: int, line: str = "") -> None:
        suffix = f": {line.strip()!r}" if line else ""
        super().__init__(f"line {line_no}: {message}{suffix}")
        self.line_no = line_no


_GLOBAL_RE = re.compile(
    r"@(?P<name>\w+)\s*=\s*global\s+(?P<type>\w+)\s+x\s+(?P<count>\d+)"
    r"(?:\s*\{(?P<init>[^}]*)\})?"
)
_DEFINE_RE = re.compile(
    r"define\s+(?P<ret>\w+)\s+@(?P<name>\w+)\((?P<args>[^)]*)\)\s*\{"
)
_LABEL_RE = re.compile(r"^(?P<name>[\w.]+):\s*$")
_ASSIGN_RE = re.compile(r"^%(?P<dest>[\w.]+)\s*=\s*(?P<rest>.+)$")


_GUARD_ID_RE = re.compile(r";\s*id=(-?\d+)")


def _strip_comment(line: str) -> Tuple[str, bool, Optional[int]]:
    """Remove trailing comments; returns (code, had_dup_marker, guard_id)."""
    is_dup = ";dup" in line
    guard_id = None
    m = _GUARD_ID_RE.search(line)
    if m:
        guard_id = int(m.group(1))
    if ";" in line:
        line = line.split(";", 1)[0]
    return line.strip(), is_dup, guard_id


class _FunctionParser:
    """Parses one function body; resolves forward references in two phases."""

    def __init__(self, module: Module, fn: Function) -> None:
        self.module = module
        self.fn = fn
        self.values: Dict[str, Value] = {a.name: a for a in fn.args}
        self.blocks: Dict[str, BasicBlock] = {}
        #: (phi, [(value_token, block_name), ...]) resolved after all blocks
        self.pending_phis: List[Tuple[Phi, List[Tuple[str, str]]]] = []
        #: (instr-factory deferred lines) not needed: two-phase via tokens

    def block(self, name: str) -> BasicBlock:
        if name not in self.blocks:
            self.blocks[name] = self.fn.add_block(name)
        return self.blocks[name]

    def operand(self, token: str, line_no: int) -> Value:
        token = token.strip()
        if token.startswith("%"):
            name = token[1:]
            if name not in self.values:
                raise IRParseError(f"use of undefined value %{name}", line_no)
            return self.values[name]
        if token.startswith("@"):
            return self.module.global_var(token[1:])
        parts = token.split(None, 1)
        if len(parts) == 2:
            if parts[1].startswith(("%", "@")):
                # redundant type prefix before a reference ("add i32 %x, ...")
                return self.operand(parts[1], line_no)
            head = parts[1].split(None, 1)[0]
            try:
                parse_type(head)
            except ValueError:
                pass
            else:
                # doubly-typed constant ("sub i32 i32 0"): drop the result-
                # type prefix the binop format adds before the operand list
                return self.operand(parts[1], line_no)
            type_ = parse_type(parts[0])
            if parts[1] == "undef":
                return UndefValue(type_)
            literal = parts[1]
            if type_.is_float:
                return Constant(type_, float(literal))
            return Constant(type_, int(literal))
        raise IRParseError(f"cannot parse operand {token!r}", line_no)

    def split_operands(self, text: str) -> List[str]:
        return [t for t in (s.strip() for s in text.split(",")) if t]


def parse_module(text: str) -> Module:
    """Parse printer-format textual IR back into a verified-shape module.

    (Run :func:`repro.ir.verifier.verify_module` on the result if you need
    the full invariants checked.)
    """
    module = Module("parsed")
    lines = text.splitlines()
    i = 0
    n = len(lines)

    # -- pass 1: globals and function signatures -----------------------------------
    while i < n:
        raw = lines[i]
        line, _, _ = _strip_comment(raw)
        if not line:
            i += 1
            continue
        g = _GLOBAL_RE.match(line)
        if g:
            flags = raw.split(";", 1)[1] if ";" in raw else ""
            elem_type = parse_type(g.group("type"))
            initializer = None
            init_text = g.group("init")
            if init_text is not None:
                convert = float if elem_type.is_float else int
                initializer = [
                    convert(tok) for tok in init_text.split(",") if tok.strip()
                ]
            module.add_global(
                g.group("name"),
                elem_type,
                int(g.group("count")),
                initializer=initializer,
                is_input="input" in flags,
                is_output="output" in flags,
            )
            i += 1
            continue
        d = _DEFINE_RE.match(line)
        if d:
            args = []
            arg_text = d.group("args").strip()
            if arg_text:
                for part in arg_text.split(","):
                    type_name, value_name = part.strip().split()
                    args.append((parse_type(type_name), value_name.lstrip("%")))
            module.add_function(d.group("name"), parse_type(d.group("ret")), args)
            # skip to matching close brace
            depth = 1
            i += 1
            while i < n and depth:
                body_line, _, _ = _strip_comment(lines[i])
                if body_line.endswith("{"):
                    depth += 1
                if body_line == "}":
                    depth -= 1
                i += 1
            continue
        i += 1

    # -- pass 2: function bodies -------------------------------------------------------
    i = 0
    while i < n:
        line, _, _ = _strip_comment(lines[i])
        d = _DEFINE_RE.match(line)
        if not d:
            i += 1
            continue
        fn = module.function(d.group("name"))
        parser = _FunctionParser(module, fn)
        i += 1
        # Collect the body first: operands may reference values defined later
        # in textual order (SSA dominance is not print order), so parsing
        # retries deferred lines until all names resolve.
        entries = []  # (line_no, block, code, is_dup, guard_id)
        block_order: List[BasicBlock] = []
        current: Optional[BasicBlock] = None
        while i < n:
            raw = lines[i]
            line, is_dup, guard_id = _strip_comment(raw)
            i += 1
            if not line:
                continue
            if line == "}":
                break
            label = _LABEL_RE.match(line)
            if label:
                current = parser.block(label.group("name"))
                block_order.append(current)
                continue
            if current is None:
                raise IRParseError("instruction outside a block", i, raw)
            entries.append([i, current, line, is_dup, guard_id, None])

        unresolved = list(range(len(entries)))
        while unresolved:
            progressed = False
            still = []
            last_error: Optional[IRParseError] = None
            for idx in unresolved:
                line_no, block, code, is_dup, guard_id, _ = entries[idx]
                try:
                    instr = _parse_instruction(code, parser, line_no)
                except IRParseError as exc:
                    last_error = exc
                    still.append(idx)
                    continue
                instr.is_shadow = is_dup
                if guard_id is not None and instr.is_guard:
                    instr.guard_id = guard_id
                entries[idx][5] = instr
                if instr.has_result:
                    parser.values[instr.name] = instr
                progressed = True
            if still and not progressed:
                raise last_error  # type: ignore[misc]
            unresolved = still

        for _, block, _, _, _, instr in entries:
            block.append(instr)

        # resolve phi incomings now that every value exists
        for phi, pairs in parser.pending_phis:
            for value_token, block_name in pairs:
                phi.add_incoming(
                    parser.operand(value_token, 0), parser.block(block_name)
                )
    return module


_PHI_INCOMING_RE = re.compile(r"\[([^\]]+),\s*%([\w.]+)\]")


def _parse_instruction(line: str, p: _FunctionParser, line_no: int) -> Instruction:
    dest = None
    m = _ASSIGN_RE.match(line)
    if m:
        dest = m.group("dest")
        line = m.group("rest").strip()

    op, _, rest = line.partition(" ")
    rest = rest.strip()

    instr = _build(op, rest, p, line_no, dest)
    if dest is not None:
        if not instr.has_result:
            raise IRParseError(f"{op} produces no value", line_no, line)
        instr.name = dest
    return instr


def _build(op: str, rest: str, p: _FunctionParser, line_no: int, dest) -> Instruction:
    if op in BINOPS:
        ops = p.split_operands(rest)
        if len(ops) != 2:
            raise IRParseError(f"{op} expects two operands", line_no, rest)
        return BinaryOp(op, p.operand(_norm(ops[0]), line_no),
                        p.operand(_norm(ops[1]), line_no))
    if op == "icmp":
        pred, _, operands = rest.partition(" ")
        a, b = p.split_operands(operands)
        return ICmp(pred, p.operand(_norm(a), line_no), p.operand(_norm(b), line_no))
    if op == "fcmp":
        pred, _, operands = rest.partition(" ")
        a, b = p.split_operands(operands)
        return FCmp(pred, p.operand(_norm(a), line_no), p.operand(_norm(b), line_no))
    if op == "select":
        a, b, c = p.split_operands(rest)
        return Select(p.operand(_norm(a), line_no), p.operand(_norm(b), line_no),
                      p.operand(_norm(c), line_no))
    if op in CAST_OPS:
        # "%v to i32"
        value_part, _, type_part = rest.partition(" to ")
        return Cast(op, p.operand(_norm(value_part), line_no),
                    parse_type(type_part.strip()))
    if op == "alloca":
        # "i32 x 4"
        type_name, _, count = rest.partition(" x ")
        return Alloca(parse_type(type_name.strip()), int(count))
    if op == "load":
        # "i32, %ptr"
        type_name, _, pointer = rest.partition(",")
        return Load(parse_type(type_name.strip()), p.operand(_norm(pointer), line_no))
    if op == "store":
        value, pointer = p.split_operands(rest)
        return Store(p.operand(_norm(value), line_no), p.operand(_norm(pointer), line_no))
    if op == "gep":
        # "%base, %idx x i32"
        base, _, idx_part = rest.partition(",")
        idx, _, elem = idx_part.partition(" x ")
        return GetElementPtr(
            p.operand(_norm(base), line_no),
            p.operand(_norm(idx), line_no),
            parse_type(elem.strip()),
        )
    if op == "br":
        # "label %name"
        name = rest.split("%", 1)[1]
        return Br(p.block(name.strip()))
    if op == "condbr":
        cond, t_label, f_label = p.split_operands(rest)
        return CondBr(
            p.operand(_norm(cond), line_no),
            p.block(t_label.split("%", 1)[1].strip()),
            p.block(f_label.split("%", 1)[1].strip()),
        )
    if op == "ret":
        if not rest or rest == "void":
            return Ret()
        return Ret(p.operand(_norm(rest), line_no))
    if op == "phi":
        # "i32 [v, %b], [v, %b]"
        type_name = rest.split(None, 1)[0]
        phi = Phi(parse_type(type_name))
        pairs = [
            (value.strip(), block)
            for value, block in _PHI_INCOMING_RE.findall(rest)
        ]
        p.pending_phis.append((phi, pairs))
        return phi
    if op == "call":
        # "@fn(args)"
        name, _, arg_text = rest.partition("(")
        callee = p.module.function(name.strip().lstrip("@"))
        args = [
            p.operand(_norm(a), line_no)
            for a in p.split_operands(arg_text.rstrip(")"))
        ]
        return Call(callee, args)
    if op == "guard_eq":
        a, b = p.split_operands(rest)
        return GuardEq(p.operand(_norm(a), line_no), p.operand(_norm(b), line_no),
                       guard_id=-1)
    if op == "guard_values":
        ops = [p.operand(_norm(t), line_no) for t in p.split_operands(rest)]
        return GuardValues(ops[0], ops[1:], guard_id=-1)  # type: ignore[arg-type]
    if op == "guard_range":
        v, lo, hi = (p.operand(_norm(t), line_no) for t in p.split_operands(rest))
        return GuardRange(v, lo, hi, guard_id=-1)  # type: ignore[arg-type]
    # intrinsic call: "name(args)" comes through as op="name(...)" or split
    full = f"{op} {rest}".strip() if rest else op
    if "(" in full:
        name, _, arg_text = full.partition("(")
        name = name.strip()
        if name in INTRINSICS:
            args = [
                p.operand(_norm(a), line_no)
                for a in p.split_operands(arg_text.rstrip(")"))
            ]
            return IntrinsicCall(name, args)
    raise IRParseError(f"unknown instruction {op!r}", line_no, rest)


def _norm(token: str) -> str:
    return token.strip()

