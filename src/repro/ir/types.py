"""Type system for the repro IR.

The IR is deliberately small: fixed-width two's-complement integers, IEEE-754
floats, an opaque byte-addressed pointer type, and ``void`` for instructions
that produce no value.  Types are interned singletons, so identity comparison
(``a is b``) and equality comparison coincide.
"""

from __future__ import annotations

from typing import Dict, Tuple


class IRType:
    """Base class for all IR types.

    Instances are interned: constructing the same type twice returns the same
    object, which makes type checks cheap and keeps printed IR stable.
    """

    _interned: Dict[Tuple, "IRType"] = {}

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_bool(self) -> bool:
        return isinstance(self, IntType) and self.bits == 1


class IntType(IRType):
    """Fixed-width integer type (``i1``, ``i8``, ``i16``, ``i32``, ``i64``).

    Values of this type are stored as Python ints in two's-complement,
    normalised to the *signed* range of the width.  All arithmetic wraps.
    """

    def __new__(cls, bits: int) -> "IntType":
        key = ("int", bits)
        inst = IRType._interned.get(key)
        if inst is None:
            inst = object.__new__(cls)
            IRType._interned[key] = inst
        return inst  # type: ignore[return-value]

    def __init__(self, bits: int) -> None:
        super().__init__(f"i{bits}")
        self.bits = bits
        self.mask = (1 << bits) - 1
        self.sign_bit = 1 << (bits - 1)
        self.min_signed = -(1 << (bits - 1)) if bits > 1 else 0 if bits == 1 else 0
        if bits == 1:
            self.min_signed = 0
            self.max_signed = 1
        else:
            self.max_signed = (1 << (bits - 1)) - 1

    @property
    def size_bytes(self) -> int:
        return max(1, self.bits // 8)

    def wrap(self, value: int) -> int:
        """Normalise a Python int into this type's signed two's-complement range."""
        value &= self.mask
        if self.bits > 1 and value & self.sign_bit:
            value -= 1 << self.bits
        return value

    def to_unsigned(self, value: int) -> int:
        """Reinterpret a (signed-normalised) value as unsigned."""
        return value & self.mask


class FloatType(IRType):
    """IEEE-754 float type (``f32`` or ``f64``).

    Values are Python floats.  f32 results are round-tripped through a 32-bit
    representation on demand (bit flips and stores), not on every operation;
    this matches the precision the paper's workloads observe at the register
    level while keeping the interpreter fast.
    """

    def __new__(cls, bits: int) -> "FloatType":
        key = ("float", bits)
        inst = IRType._interned.get(key)
        if inst is None:
            inst = object.__new__(cls)
            IRType._interned[key] = inst
        return inst  # type: ignore[return-value]

    def __init__(self, bits: int) -> None:
        super().__init__(f"f{bits}")
        self.bits = bits

    @property
    def size_bytes(self) -> int:
        return self.bits // 8


class PointerType(IRType):
    """Opaque byte-addressed pointer.

    Pointer values are 64-bit addresses into the simulator's segmented memory
    (see :mod:`repro.sim.memory`).  Element types live on the instructions that
    use pointers (loads, stores, GEPs), not on the pointer itself.
    """

    def __new__(cls) -> "PointerType":
        key = ("ptr",)
        inst = IRType._interned.get(key)
        if inst is None:
            inst = object.__new__(cls)
            IRType._interned[key] = inst
        return inst  # type: ignore[return-value]

    def __init__(self) -> None:
        super().__init__("ptr")
        self.bits = 64

    @property
    def size_bytes(self) -> int:
        return 8


class VoidType(IRType):
    """Type of instructions that produce no value (stores, branches, guards)."""

    def __new__(cls) -> "VoidType":
        key = ("void",)
        inst = IRType._interned.get(key)
        if inst is None:
            inst = object.__new__(cls)
            IRType._interned[key] = inst
        return inst  # type: ignore[return-value]

    def __init__(self) -> None:
        super().__init__("void")


# Interned singletons used throughout the code base.
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)
PTR = PointerType()
VOID = VoidType()

INT_TYPES = (I1, I8, I16, I32, I64)
FLOAT_TYPES = (F32, F64)


def parse_type(name: str) -> IRType:
    """Look up a type by its printed name (``"i32"`` → :data:`I32`)."""
    table = {t.name: t for t in (*INT_TYPES, *FLOAT_TYPES, PTR, VOID)}
    try:
        return table[name]
    except KeyError:
        raise ValueError(f"unknown IR type name: {name!r}") from None
