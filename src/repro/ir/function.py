"""Functions: named, typed collections of basic blocks."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

from .basicblock import BasicBlock
from .instructions import Instruction
from .types import IRType, VOID
from .values import Argument

if TYPE_CHECKING:  # pragma: no cover
    from .module import Module


class Function:
    """An IR function.

    The first block in :attr:`blocks` is the entry block.  Value names are
    unique within a function (the block appending logic asks
    :meth:`next_value_name` for fresh names).
    """

    def __init__(
        self,
        name: str,
        return_type: IRType = VOID,
        arg_types: Sequence[Tuple[IRType, str]] = (),
        module: Optional["Module"] = None,
    ) -> None:
        self.name = name
        self.return_type = return_type
        self.module = module
        self.args: List[Argument] = [
            Argument(ty, arg_name, self, i) for i, (ty, arg_name) in enumerate(arg_types)
        ]
        self.blocks: List[BasicBlock] = []
        self._name_counter = 0
        self._block_counter = 0

    # -- construction ---------------------------------------------------------

    def add_block(self, name: str = "", after: Optional[BasicBlock] = None) -> BasicBlock:
        """Create and register a new basic block (optionally right after another)."""
        if not name:
            name = f"bb{self._block_counter}"
            self._block_counter += 1
        elif any(b.name == name for b in self.blocks):
            name = f"{name}.{self._block_counter}"
            self._block_counter += 1
        block = BasicBlock(name, parent=self)
        if after is not None:
            self.blocks.insert(self.blocks.index(after) + 1, block)
        else:
            self.blocks.append(block)
        return block

    def next_value_name(self) -> str:
        self._name_counter += 1
        return f"v{self._name_counter}"

    # -- queries ---------------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function @{self.name} has no blocks")
        return self.blocks[0]

    def block(self, name: str) -> BasicBlock:
        for b in self.blocks:
            if b.name == name:
                return b
        raise KeyError(f"no block %{name} in @{self.name}")

    def instructions(self) -> Iterator[Instruction]:
        """All instructions, in block order."""
        for block in self.blocks:
            yield from block.instructions

    def num_instructions(self) -> int:
        return sum(len(b) for b in self.blocks)

    def values(self) -> Iterator[Instruction]:
        """All value-producing instructions."""
        for instr in self.instructions():
            if instr.has_result:
                yield instr

    def __repr__(self) -> str:
        return f"<Function @{self.name} ({len(self.blocks)} blocks)>"
