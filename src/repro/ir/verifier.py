"""Structural verifier for the repro IR.

Catches malformed IR early — every transform in the protection pipeline runs
the verifier after mutating a module (cheap insurance that the duplication and
check-insertion passes preserve SSA well-formedness).
"""

from __future__ import annotations

from typing import List, Set

from .basicblock import BasicBlock
from .function import Function
from .instructions import Instruction, Phi
from .module import Module
from .values import Argument, Constant, GlobalVariable, UndefValue, Value


class VerificationError(Exception):
    """Raised when a module or function violates an IR invariant."""


def verify_module(module: Module) -> None:
    """Verify every function in ``module``; raises :class:`VerificationError`."""
    for fn in module.functions.values():
        verify_function(fn)


def verify_function(fn: Function) -> None:
    """Check structural and SSA invariants of a single function."""
    if not fn.blocks:
        raise VerificationError(f"@{fn.name}: function has no blocks")

    defined: Set[int] = set()
    for arg in fn.args:
        defined.add(id(arg))

    names: Set[str] = set()
    for block in fn.blocks:
        _check_block_shape(fn, block)
        for instr in block.instructions:
            if instr.parent is not block:
                raise VerificationError(
                    f"@{fn.name}/%{block.name}: instruction {instr.format()} has wrong parent"
                )
            if instr.has_result:
                if not instr.name:
                    raise VerificationError(
                        f"@{fn.name}/%{block.name}: unnamed value {instr.format()}"
                    )
                if instr.name in names:
                    raise VerificationError(
                        f"@{fn.name}: duplicate value name %{instr.name}"
                    )
                names.add(instr.name)
            defined.add(id(instr))

    # Every operand must be a constant, global, argument of this function, or
    # an instruction defined somewhere in this function.
    for block in fn.blocks:
        for instr in block.instructions:
            for op in instr.operands:
                _check_operand(fn, block, instr, op, defined)
            if isinstance(instr, Phi):
                _check_phi(fn, block, instr)

    _check_use_lists(fn)
    _check_dominance(fn)


def _check_block_shape(fn: Function, block: BasicBlock) -> None:
    term_positions = [
        i for i, instr in enumerate(block.instructions) if instr.is_terminator
    ]
    if not term_positions:
        raise VerificationError(f"@{fn.name}/%{block.name}: missing terminator")
    if term_positions != [len(block.instructions) - 1]:
        raise VerificationError(
            f"@{fn.name}/%{block.name}: terminator not last or multiple terminators"
        )
    seen_non_phi = False
    for instr in block.instructions:
        if isinstance(instr, Phi):
            if seen_non_phi:
                raise VerificationError(
                    f"@{fn.name}/%{block.name}: phi after non-phi instruction"
                )
        else:
            seen_non_phi = True
    for succ in block.successors:
        if succ not in fn.blocks:
            raise VerificationError(
                f"@{fn.name}/%{block.name}: branch to unknown block %{succ.name}"
            )


def _check_operand(
    fn: Function, block: BasicBlock, instr: Instruction, op: Value, defined: Set[int]
) -> None:
    if isinstance(op, (Constant, UndefValue, GlobalVariable)):
        return
    if isinstance(op, Argument):
        if op.function is not fn:
            raise VerificationError(
                f"@{fn.name}/%{block.name}: {instr.format()} uses argument of another function"
            )
        return
    if isinstance(op, Instruction):
        if id(op) not in defined:
            raise VerificationError(
                f"@{fn.name}/%{block.name}: {instr.format()} uses value "
                f"%{op.name} not defined in this function"
            )
        return
    raise VerificationError(
        f"@{fn.name}/%{block.name}: {instr.format()} has unexpected operand {op!r}"
    )


def _check_phi(fn: Function, block: BasicBlock, phi: Phi) -> None:
    preds = block.predecessors
    phi_blocks = list(phi.incoming_blocks)
    if len(phi_blocks) != len(preds) or set(map(id, phi_blocks)) != set(map(id, preds)):
        pred_names = sorted(p.name for p in preds)
        phi_names = sorted(p.name for p in phi_blocks)
        raise VerificationError(
            f"@{fn.name}/%{block.name}: phi %{phi.name} incomings {phi_names} "
            f"do not match predecessors {pred_names}"
        )


def _check_use_lists(fn: Function) -> None:
    for block in fn.blocks:
        for instr in block.instructions:
            for idx, op in enumerate(instr.operands):
                if (instr, idx) not in op.uses:
                    raise VerificationError(
                        f"@{fn.name}: use list of {op.short()} is missing "
                        f"({instr.format()}, {idx})"
                    )


def _check_dominance(fn: Function) -> None:
    """Each use must be dominated by its definition (phi uses checked at the
    end of the incoming block)."""
    from ..analysis.dominators import DominatorTree

    dt = DominatorTree.compute(fn)
    # Map instruction -> (block, index) for intra-block ordering.
    position = {}
    for block in fn.blocks:
        for idx, instr in enumerate(block.instructions):
            position[id(instr)] = (block, idx)

    for block in fn.blocks:
        if not dt.is_reachable(block):
            continue
        for idx, instr in enumerate(block.instructions):
            for op_idx, op in enumerate(instr.operands):
                if not isinstance(op, Instruction):
                    continue
                def_block, def_idx = position[id(op)]
                if isinstance(instr, Phi):
                    incoming = instr.incoming_blocks[op_idx]
                    if not dt.is_reachable(incoming):
                        continue
                    if not dt.dominates(def_block, incoming):
                        raise VerificationError(
                            f"@{fn.name}: phi %{instr.name} incoming %{op.name} from "
                            f"%{incoming.name} is not dominated by its definition"
                        )
                    continue
                if def_block is block:
                    if def_idx >= idx:
                        raise VerificationError(
                            f"@{fn.name}/%{block.name}: %{op.name} used before defined "
                            f"by {instr.format()}"
                        )
                elif not dt.dominates(def_block, block):
                    raise VerificationError(
                        f"@{fn.name}: use of %{op.name} in %{block.name} not dominated "
                        f"by its definition in %{def_block.name}"
                    )
