"""IRBuilder: ergonomic construction of IR, one instruction at a time.

The builder keeps an insertion point (a basic block; instructions are appended
at its end, before the terminator if one exists) and exposes one method per
instruction kind.  The frontend code generator and the protection transforms
both build IR through this class.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    GetElementPtr,
    GuardEq,
    GuardRange,
    GuardValues,
    ICmp,
    Instruction,
    IntrinsicCall,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from .types import F64, I1, I32, I64, FloatType, IntType, IRType
from .values import Constant, Value


class IRBuilder:
    """Appends instructions at a movable insertion point."""

    def __init__(self, block: Optional[BasicBlock] = None) -> None:
        self.block = block

    def set_block(self, block: BasicBlock) -> None:
        self.block = block

    @property
    def function(self) -> Function:
        if self.block is None or self.block.parent is None:
            raise ValueError("builder has no insertion block")
        return self.block.parent

    def _emit(self, instr: Instruction) -> Instruction:
        if self.block is None:
            raise ValueError("builder has no insertion block")
        term = self.block.terminator
        if term is not None:
            if instr.is_terminator:
                raise ValueError(
                    f"block %{self.block.name} already has a terminator"
                )
            self.block.insert_before(term, instr)
        else:
            self.block.append(instr)
        return instr

    # -- constants ------------------------------------------------------------

    @staticmethod
    def const(value, type_: IRType = I32) -> Constant:
        return Constant(type_, value)

    # -- arithmetic -----------------------------------------------------------

    def binop(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self._emit(BinaryOp(opcode, lhs, rhs, name))  # type: ignore[return-value]

    def add(self, a: Value, b: Value, name: str = "") -> BinaryOp:
        return self.binop("add", a, b, name)

    def sub(self, a: Value, b: Value, name: str = "") -> BinaryOp:
        return self.binop("sub", a, b, name)

    def mul(self, a: Value, b: Value, name: str = "") -> BinaryOp:
        return self.binop("mul", a, b, name)

    def sdiv(self, a: Value, b: Value, name: str = "") -> BinaryOp:
        return self.binop("sdiv", a, b, name)

    def srem(self, a: Value, b: Value, name: str = "") -> BinaryOp:
        return self.binop("srem", a, b, name)

    def and_(self, a: Value, b: Value, name: str = "") -> BinaryOp:
        return self.binop("and", a, b, name)

    def or_(self, a: Value, b: Value, name: str = "") -> BinaryOp:
        return self.binop("or", a, b, name)

    def xor(self, a: Value, b: Value, name: str = "") -> BinaryOp:
        return self.binop("xor", a, b, name)

    def shl(self, a: Value, b: Value, name: str = "") -> BinaryOp:
        return self.binop("shl", a, b, name)

    def lshr(self, a: Value, b: Value, name: str = "") -> BinaryOp:
        return self.binop("lshr", a, b, name)

    def ashr(self, a: Value, b: Value, name: str = "") -> BinaryOp:
        return self.binop("ashr", a, b, name)

    def fadd(self, a: Value, b: Value, name: str = "") -> BinaryOp:
        return self.binop("fadd", a, b, name)

    def fsub(self, a: Value, b: Value, name: str = "") -> BinaryOp:
        return self.binop("fsub", a, b, name)

    def fmul(self, a: Value, b: Value, name: str = "") -> BinaryOp:
        return self.binop("fmul", a, b, name)

    def fdiv(self, a: Value, b: Value, name: str = "") -> BinaryOp:
        return self.binop("fdiv", a, b, name)

    # -- comparisons / select ---------------------------------------------------

    def icmp(self, pred: str, a: Value, b: Value, name: str = "") -> ICmp:
        return self._emit(ICmp(pred, a, b, name))  # type: ignore[return-value]

    def fcmp(self, pred: str, a: Value, b: Value, name: str = "") -> FCmp:
        return self._emit(FCmp(pred, a, b, name))  # type: ignore[return-value]

    def select(self, cond: Value, t: Value, f: Value, name: str = "") -> Select:
        return self._emit(Select(cond, t, f, name))  # type: ignore[return-value]

    # -- casts --------------------------------------------------------------------

    def cast(self, opcode: str, value: Value, to_type: IRType, name: str = "") -> Cast:
        return self._emit(Cast(opcode, value, to_type, name))  # type: ignore[return-value]

    def int_cast(self, value: Value, to_type: IntType, signed: bool = True, name: str = "") -> Value:
        """Integer resize with the appropriate trunc/sext/zext (no-op if same)."""
        assert isinstance(value.type, IntType)
        if value.type is to_type:
            return value
        if value.type.bits > to_type.bits:
            return self.cast("trunc", value, to_type, name)
        return self.cast("sext" if signed else "zext", value, to_type, name)

    def sitofp(self, value: Value, to_type: FloatType = F64, name: str = "") -> Cast:
        return self.cast("sitofp", value, to_type, name)

    def fptosi(self, value: Value, to_type: IntType = I32, name: str = "") -> Cast:
        return self.cast("fptosi", value, to_type, name)

    # -- memory ---------------------------------------------------------------------

    def alloca(self, elem_type: IRType, count: int = 1, name: str = "") -> Alloca:
        return self._emit(Alloca(elem_type, count, name))  # type: ignore[return-value]

    def load(self, value_type: IRType, pointer: Value, name: str = "") -> Load:
        return self._emit(Load(value_type, pointer, name))  # type: ignore[return-value]

    def store(self, value: Value, pointer: Value) -> Store:
        return self._emit(Store(value, pointer))  # type: ignore[return-value]

    def gep(self, base: Value, index: Value, elem_type: IRType, name: str = "") -> GetElementPtr:
        return self._emit(GetElementPtr(base, index, elem_type, name))  # type: ignore[return-value]

    # -- control flow -------------------------------------------------------------------

    def br(self, target: BasicBlock) -> Br:
        return self._emit(Br(target))  # type: ignore[return-value]

    def condbr(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> CondBr:
        return self._emit(CondBr(cond, if_true, if_false))  # type: ignore[return-value]

    def ret(self, value: Optional[Value] = None) -> Ret:
        return self._emit(Ret(value))  # type: ignore[return-value]

    def phi(self, type_: IRType, name: str = "") -> Phi:
        """Insert a phi at the *top* of the current block."""
        if self.block is None:
            raise ValueError("builder has no insertion block")
        instr = Phi(type_, name)
        self.block.insert(self.block.first_non_phi_index(), instr)
        return instr

    # -- calls -----------------------------------------------------------------------------

    def call(self, callee: Function, args: Sequence[Value], name: str = "") -> Call:
        return self._emit(Call(callee, args, name))  # type: ignore[return-value]

    def intrinsic(self, intrinsic: str, args: Sequence[Value], name: str = "") -> IntrinsicCall:
        return self._emit(IntrinsicCall(intrinsic, args, name))  # type: ignore[return-value]

    # -- guards ------------------------------------------------------------------------------

    def guard_eq(self, original: Value, shadow: Value, guard_id: int = -1) -> GuardEq:
        return self._emit(GuardEq(original, shadow, guard_id))  # type: ignore[return-value]

    def guard_values(self, value: Value, expected: Sequence[Constant], guard_id: int = -1) -> GuardValues:
        return self._emit(GuardValues(value, expected, guard_id))  # type: ignore[return-value]

    def guard_range(self, value: Value, lo: Constant, hi: Constant, guard_id: int = -1) -> GuardRange:
        return self._emit(GuardRange(value, lo, hi, guard_id))  # type: ignore[return-value]
