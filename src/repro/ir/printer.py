"""Textual dump of IR modules and functions (for debugging and golden tests)."""

from __future__ import annotations

from .function import Function
from .module import Module


def function_to_str(fn: Function) -> str:
    """Render a function in a stable, LLVM-flavoured text format."""
    args = ", ".join(f"{a.type} %{a.name}" for a in fn.args)
    lines = [f"define {fn.return_type} @{fn.name}({args}) {{"]
    for block in fn.blocks:
        lines.append(f"{block.name}:")
        for instr in block.instructions:
            marker = "  ;dup" if instr.is_shadow else ""
            lines.append(f"  {instr.format()}{marker}")
    lines.append("}")
    return "\n".join(lines)


def module_to_str(module: Module) -> str:
    """Render a whole module: globals first, then functions."""
    lines = [f"; module {module.name}"]
    for gv in module.globals.values():
        flags = []
        if gv.is_input:
            flags.append("input")
        if gv.is_output:
            flags.append("output")
        suffix = f"  ; {' '.join(flags)}" if flags else ""
        init = ""
        if gv.initializer is not None:
            body = ", ".join(repr(v) for v in gv.initializer)
            init = f" {{{body}}}"
        lines.append(f"@{gv.name} = global {gv.elem_type} x {gv.count}{init}{suffix}")
    for fn in module.functions.values():
        lines.append("")
        lines.append(function_to_str(fn))
    return "\n".join(lines) + "\n"
