"""Legacy setuptools entry point.

Kept so the package installs in environments without the ``wheel`` package
(where pip's PEP-660 editable build is unavailable): ``python setup.py develop``
or ``pip install -e . --no-build-isolation`` both work. All metadata lives in
pyproject.toml.
"""
from setuptools import setup

setup()
